"""The snapshot store: all captures, indexed three ways.

Indices match the access patterns of the two public APIs:

- by exact URL (Availability API, CDX exact queries);
- by directory prefix (CDX prefix queries — §4.2 sibling-redirect
  validation and §5.2 directory-level coverage);
- by hostname (CDX host queries — §5.2 hostname-level coverage).

Snapshots for a URL are kept sorted by capture time, so closest-to-
timestamp selection (IABot's snapshot choice) and first/last lookups
are cheap.
"""

from __future__ import annotations

from bisect import bisect_left, insort

from ..clock import SimTime
from ..urls.parse import parse_url
from ..urls.psl import default_psl
from .snapshot import Snapshot


class SnapshotStore:
    """In-memory archive of :class:`~repro.archive.snapshot.Snapshot`."""

    def __init__(self) -> None:
        self._by_url: dict[str, list[Snapshot]] = {}
        self._by_directory: dict[str, set[str]] = {}
        self._by_host: dict[str, set[str]] = {}
        self._by_domain: dict[str, set[str]] = {}
        self._count = 0

    # -- writes ------------------------------------------------------------------

    def add(self, snapshot: Snapshot) -> None:
        """Insert one capture, maintaining all indices."""
        per_url = self._by_url.get(snapshot.url)
        if per_url is None:
            per_url = []
            self._by_url[snapshot.url] = per_url
            parsed = parse_url(snapshot.url)
            self._by_directory.setdefault(parsed.directory, set()).add(snapshot.url)
            self._by_host.setdefault(parsed.host_lower, set()).add(snapshot.url)
            domain = default_psl().registrable_domain(parsed.host_lower)
            self._by_domain.setdefault(domain, set()).add(snapshot.url)
        insort(per_url, snapshot, key=lambda s: s.captured_at.days)
        self._count += 1

    # -- per-URL reads ------------------------------------------------------------

    def snapshots(
        self, url: str, include_failed: bool = False
    ) -> tuple[Snapshot, ...]:
        """All captures of ``url`` in time order."""
        rows = self._by_url.get(url, [])
        if include_failed:
            return tuple(rows)
        return tuple(row for row in rows if not row.failed)

    def has_any(self, url: str) -> bool:
        """Whether the archive holds at least one (non-failed) capture."""
        return any(not row.failed for row in self._by_url.get(url, ()))

    def first_snapshot(self, url: str) -> Snapshot | None:
        """The earliest capture of ``url``, if any."""
        rows = self.snapshots(url)
        return rows[0] if rows else None

    def snapshots_before(self, url: str, cutoff: SimTime) -> tuple[Snapshot, ...]:
        """Captures strictly before ``cutoff``, in time order."""
        rows = self.snapshots(url)
        index = bisect_left([row.captured_at.days for row in rows], cutoff.days)
        return rows[:index]

    def snapshots_after(self, url: str, cutoff: SimTime) -> tuple[Snapshot, ...]:
        """Captures at or after ``cutoff``, in time order."""
        rows = self.snapshots(url)
        index = bisect_left([row.captured_at.days for row in rows], cutoff.days)
        return rows[index:]

    def closest_to(
        self,
        url: str,
        target: SimTime,
        predicate=None,
    ) -> Snapshot | None:
        """The capture of ``url`` nearest ``target``, optionally filtered.

        This is the Wayback Availability API's selection rule and the
        one IABot uses to pick "that archived copy for the link which
        was captured closest to when the link was added" (§2.1).
        """
        rows = self.snapshots(url)
        if predicate is not None:
            rows = tuple(row for row in rows if predicate(row))
        if not rows:
            return None
        return min(rows, key=lambda row: abs(row.captured_at.days - target.days))

    # -- spatial reads ----------------------------------------------------------------

    def urls_in_directory(self, directory: str) -> tuple[str, ...]:
        """All archived URLs sharing ``directory`` (prefix until last '/')."""
        return tuple(sorted(self._by_directory.get(directory, ())))

    def urls_on_host(self, hostname: str) -> tuple[str, ...]:
        """All archived URLs under ``hostname``."""
        return tuple(sorted(self._by_host.get(hostname.lower(), ())))

    def urls_in_domain(self, domain: str) -> tuple[str, ...]:
        """All archived URLs whose hostname registers under ``domain``."""
        return tuple(sorted(self._by_domain.get(domain.lower(), ())))

    def all_urls(self) -> tuple[str, ...]:
        """Every URL with at least one capture (sorted)."""
        return tuple(sorted(self._by_url))

    # -- stats -----------------------------------------------------------------------------

    def __len__(self) -> int:
        """Total number of captures stored."""
        return self._count

    def url_count(self) -> int:
        """Number of distinct URLs captured."""
        return len(self._by_url)
