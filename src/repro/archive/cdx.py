"""The Wayback CDX server API.

The CDX API enumerates captures matching a URL pattern — exact URL,
same directory, string prefix, or whole hostname — with optional
status filters and time bounds. The paper drives it for the §4.2
sibling-redirect validation ("other URLs under the same directory …
around that time") and the §5.2 spatial coverage analysis ("once to
discover successfully archived URLs which are in the same directory
... and once ... under the same hostname").
"""

from __future__ import annotations

import dataclasses
import enum
import math
from dataclasses import dataclass

from ..clock import SimTime
from ..urls.parse import parse_url
from ..urls.psl import default_psl
from .snapshot import Snapshot
from .store import SnapshotStore


class MatchType(enum.Enum):
    """How the query URL is matched against archived URLs."""

    EXACT = "exact"
    DIRECTORY = "directory"  # same prefix until the last '/'
    PREFIX = "prefix"        # string prefix (includes subdirectories)
    HOST = "host"            # same hostname
    DOMAIN = "domain"        # same registrable domain (PSL)


@dataclass(frozen=True, slots=True)
class CdxQuery:
    """One CDX request.

    Attributes:
        url: the query URL (its directory/host are derived as needed).
        match_type: matching scope.
        initial_status: keep only captures with this initial status
            (``200`` reproduces the paper's "successfully archived").
        from_time / to_time: inclusive lower / exclusive upper capture
            time bounds.
        limit: maximum number of rows returned (0 = unlimited).
        exclude_self: for DIRECTORY/PREFIX/HOST scopes, drop captures
            of the query URL itself (the paper's sibling queries).
    """

    url: str
    match_type: MatchType = MatchType.EXACT
    initial_status: int | None = None
    from_time: SimTime | None = None
    to_time: SimTime | None = None
    limit: int = 0
    exclude_self: bool = False


class AsOfCdx:
    """A CDX endpoint bounded at an instant (captures at or before it).

    The live pipeline re-probes records at per-record instants while
    the snapshot store keeps growing; an unbounded query issued when
    re-checking a cached outcome would see captures the original probe
    could not, making "incremental ≡ from-scratch" ill-defined. This
    view clamps every query's ``to_time`` to just past ``at``
    (``to_time`` is exclusive, so ``nextafter`` keeps captures exactly
    at ``at``), which freezes each record's archive horizon at its
    probe time.

    It wraps anything with the CDX call surface — the raw
    :class:`CdxApi` or a memoizing/fault-injecting backend stack — and
    clamps *before* delegating, so caches and fault decisions key on
    the clamped query: two runs probing the same record at the same
    instant issue byte-identical requests whatever else they ran.
    Deliberately **opt-in**: the classic batch study issues unclamped
    queries, whose reprs the committed fault-plan goldens key on.
    """

    def __init__(self, inner, at: SimTime) -> None:
        self._inner = inner
        self.at = at
        self._bound = SimTime(math.nextafter(at.days, math.inf))

    def _clamp(self, request: CdxQuery) -> CdxQuery:
        if request.to_time is None or self._bound < request.to_time:
            return dataclasses.replace(request, to_time=self._bound)
        return request

    def query(self, request: CdxQuery) -> tuple[Snapshot, ...]:
        return self._inner.query(self._clamp(request))

    def archived_urls(self, request: CdxQuery) -> tuple[str, ...]:
        return self._inner.archived_urls(self._clamp(request))


class CdxApi:
    """CDX queries over a snapshot store."""

    def __init__(self, store: SnapshotStore) -> None:
        self._store = store
        self._queries = 0

    @property
    def query_count(self) -> int:
        """Number of queries served (for efficiency accounting)."""
        return self._queries

    def query(self, request: CdxQuery) -> tuple[Snapshot, ...]:
        """All captures matching ``request``, ordered by URL then time."""
        self._queries += 1
        urls = self._candidate_urls(request)
        rows: list[Snapshot] = []
        for url in urls:
            for snapshot in self._store.snapshots(url):
                if not self._keep(snapshot, request):
                    continue
                rows.append(snapshot)
                if request.limit and len(rows) >= request.limit:
                    return tuple(rows)
        return tuple(rows)

    def archived_urls(self, request: CdxQuery) -> tuple[str, ...]:
        """Distinct URLs with at least one capture matching ``request``.

        This is the collapsed (``collapse=urlkey``) form of a CDX query,
        which §5.2 uses to count archived siblings.
        """
        self._queries += 1
        urls = []
        for url in self._candidate_urls(request):
            if any(
                self._keep(snapshot, request)
                for snapshot in self._store.snapshots(url)
            ):
                urls.append(url)
                if request.limit and len(urls) >= request.limit:
                    break
        return tuple(urls)

    # -- internals ---------------------------------------------------------------

    def _candidate_urls(self, request: CdxQuery) -> tuple[str, ...]:
        if request.match_type is MatchType.EXACT:
            return (request.url,)
        parsed = parse_url(request.url)
        if request.match_type is MatchType.DIRECTORY:
            urls = self._store.urls_in_directory(parsed.directory)
        elif request.match_type is MatchType.DOMAIN:
            domain = default_psl().registrable_domain(parsed.host_lower)
            urls = self._store.urls_in_domain(domain)
        elif request.match_type is MatchType.PREFIX:
            # The real CDX server's matchType=prefix matches the query
            # URL *string* itself — not the query URL's directory,
            # which would make PREFIX indistinguishable from a
            # directory-anchored scope.
            urls = tuple(
                url
                for url in self._store.urls_on_host(parsed.host_lower)
                if url.startswith(request.url)
            )
        else:
            urls = self._store.urls_on_host(parsed.host_lower)
        if request.exclude_self:
            urls = tuple(url for url in urls if url != request.url)
        return urls

    @staticmethod
    def _keep(snapshot: Snapshot, request: CdxQuery) -> bool:
        if (
            request.initial_status is not None
            and snapshot.initial_status != request.initial_status
        ):
            return False
        if request.from_time is not None and snapshot.captured_at < request.from_time:
            return False
        if request.to_time is not None and not snapshot.captured_at < request.to_time:
            return False
        return True
