"""The Wayback Availability API, including its latency tail.

The real API (https://archive.org/help/wayback_api.php) answers "what
is the closest archived copy of this URL (with a 200 status)?" —
exactly the question IABot asks before deciding a link is permanently
dead. The paper's §4.1 finding is that IABot bounds this lookup with a
timeout and treats a late answer as "never archived", so our simulation
gives the API a realistic heavy-tailed response latency: a lookup is a
latency draw plus the result, and callers that pass ``timeout_ms`` get
:class:`~repro.errors.ArchiveTimeout` when the draw exceeds it.

Latency draws are deterministic per (url, attempt number), so a replay
of the same sequence of lookups reproduces the same hits and misses.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass

from ..clock import SimTime
from ..errors import ArchiveTimeout
from .snapshot import Snapshot
from .store import SnapshotStore


@dataclass(frozen=True, slots=True)
class AvailabilityPolicy:
    """Latency model for availability lookups.

    ``latency = base_ms + Exp(mean=tail_scale_ms)`` — an exponential
    tail over a small base cost. With the defaults, roughly 19% of
    lookups exceed 5,000 ms, in line with the paper's observation that
    IABot's bounded lookups miss a sizeable share of archived copies.
    """

    base_ms: float = 50.0
    tail_scale_ms: float = 3000.0
    seed: str = "availability"

    def latency_ms(self, url: str, attempt: int) -> float:
        """Deterministic latency draw for one lookup."""
        digest = hashlib.sha256(
            f"{self.seed}:{url}:{attempt}".encode("utf-8")
        ).digest()
        unit = int.from_bytes(digest[:8], "big") / 2**64
        # Clamp away from 0 to keep log() finite.
        unit = max(unit, 1e-12)
        return self.base_ms - self.tail_scale_ms * math.log(unit)

    def timeout_probability(self, timeout_ms: float) -> float:
        """P(lookup exceeds ``timeout_ms``) under this model."""
        if timeout_ms <= self.base_ms:
            return 1.0
        return math.exp(-(timeout_ms - self.base_ms) / self.tail_scale_ms)


@dataclass(frozen=True, slots=True)
class AvailabilityResult:
    """A successful lookup: the chosen snapshot and the latency paid."""

    snapshot: Snapshot | None
    latency_ms: float


class AvailabilityApi:
    """Closest-good-copy lookups over a snapshot store."""

    def __init__(
        self, store: SnapshotStore, policy: AvailabilityPolicy | None = None
    ) -> None:
        self._store = store
        self.policy = policy if policy is not None else AvailabilityPolicy()
        self._attempts: dict[str, int] = {}
        self._lookups = 0
        self._timeouts = 0

    @property
    def lookup_count(self) -> int:
        """Total lookups served (including ones that timed out)."""
        return self._lookups

    @property
    def timeout_count(self) -> int:
        """Lookups that exceeded the caller's timeout."""
        return self._timeouts

    def lookup(
        self,
        url: str,
        around: SimTime,
        timeout_ms: float | None = None,
        before: SimTime | None = None,
    ) -> AvailabilityResult:
        """The archived copy of ``url`` with initial status 200 closest
        to ``around``.

        Args:
            url: the URL to look up.
            around: preferred capture instant (IABot passes the date
                the link was added to the article).
            timeout_ms: abandon the lookup when the simulated latency
                exceeds this; ``None`` waits forever (what our study
                client does).
            before: if given, only consider captures strictly before
                this instant (used to reconstruct "what IABot could
                have seen at marking time").

        Raises:
            ArchiveTimeout: when the latency draw exceeds ``timeout_ms``.
        """
        self._lookups += 1
        attempt = self._attempts.get(url, 0)
        self._attempts[url] = attempt + 1
        latency = self.policy.latency_ms(url, attempt)
        if timeout_ms is not None and latency > timeout_ms:
            self._timeouts += 1
            raise ArchiveTimeout(url, timeout_ms)

        def good(snapshot: Snapshot) -> bool:
            """The API's usable-copy filter (initial 200, time bound)."""
            if not snapshot.initial_ok:
                return False
            return before is None or snapshot.captured_at < before

        chosen = self._store.closest_to(url, around, predicate=good)
        return AvailabilityResult(snapshot=chosen, latency_ms=latency)
