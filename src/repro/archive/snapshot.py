"""One archived capture of one URL.

A snapshot records what the crawler observed at capture time: the
*initial* status (the response for the URL itself, before any
redirect), the redirect target if the initial response was a 3xx, the
*final* status and URL after the crawler followed redirects, and a
MinHash sketch of the final body. This mirrors the fields the paper
reads from the Wayback Machine: "for every archived copy, we logged
the timestamp at which it was captured and the initial HTTP status
code associated with that copy" (§2.4), plus the redirect targets
needed for §4.2.

Full bodies are not retained (the real Wayback stores them, but our
analyses only ever compare content similarity, for which the sketch
suffices at a tiny fraction of the memory).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..clock import SimTime
from ..net.status import is_redirect, is_success


@dataclass(frozen=True, slots=True)
class Snapshot:
    """An archived copy of ``url`` captured at ``captured_at``.

    Attributes:
        url: the captured URL (exactly as requested).
        captured_at: capture instant.
        initial_status: HTTP status of the first response, or ``None``
            when the capture attempt failed at the transport level
            (DNS failure / connect timeout) — the real Wayback records
            such attempts sparsely; we keep them for fidelity but all
            read APIs skip them by default.
        redirect_location: ``Location`` of the initial response when it
            was a redirect.
        final_status: status after the crawler followed redirects
            (equals ``initial_status`` when there was no redirect).
        final_url: URL of the final response.
        sketch: MinHash sketch of the final response body.
    """

    url: str
    captured_at: SimTime
    initial_status: int | None
    redirect_location: str | None = None
    final_status: int | None = None
    final_url: str | None = None
    sketch: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.initial_status is not None and is_redirect(self.initial_status):
            if not self.redirect_location:
                raise ValueError(
                    f"3xx snapshot of {self.url!r} needs redirect_location"
                )

    @property
    def failed(self) -> bool:
        """True when the capture never got an HTTP response."""
        return self.initial_status is None

    @property
    def initial_ok(self) -> bool:
        """Initial status 200 — IABot's bar for a usable copy."""
        return self.initial_status == 200

    @property
    def initial_redirected(self) -> bool:
        """Initial status was a 3xx."""
        return self.initial_status is not None and is_redirect(self.initial_status)

    @property
    def looks_erroneous_by_status(self) -> bool:
        """Erroneous judging by status codes alone (no content check).

        4xx/5xx initially, a redirect whose final hop was not a
        success, or a transport failure.
        """
        if self.initial_status is None:
            return True
        if self.initial_ok:
            return False
        if self.initial_redirected:
            return self.final_status is None or not is_success(self.final_status)
        return True

    def describe(self) -> str:
        """One-line summary, e.g. ``2014-03-02 302 -> http://.../index.htm``."""
        stamp = self.captured_at.isoformat()
        if self.initial_status is None:
            return f"{stamp} <capture failed>"
        if self.initial_redirected:
            return f"{stamp} {self.initial_status} -> {self.redirect_location}"
        return f"{stamp} {self.initial_status}"
