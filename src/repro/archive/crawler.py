"""Crawl processes that populate the archive.

Two processes capture URLs, mirroring how the Internet Archive
actually discovers Wikipedia's external links (§5.1):

- **organic crawling** (:class:`OrganicCrawlPlanner`): every site is
  revisited at a popularity-dependent Poisson rate, so an unpopular
  site's pages may go years between captures — the engine behind the
  long tail of Figure 5;
- **event-triggered archiving** (:class:`TriggeredArchiver`): from 2013
  the Wikipedia Near Real Time service, and from 2018 the Wikipedia
  EventStream, fed newly-posted links to the archive. Coverage was far
  from complete (only ~7% of the paper's links were captured the day
  they were posted), so each era has a coverage probability and a
  short capture delay.

:class:`ArchiveCrawler` executes a capture: it fetches the URL through
the simulated web and records what it saw — including 404s and
redirects, which the real Wayback Machine also stores.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..clock import SimTime, EVENTSTREAM_START, WNRT_START
from ..net.fetch import Fetcher
from ..rng import Stream
from ..textsim.shingles import minhash_sketch
from .snapshot import Snapshot
from .store import SnapshotStore


@dataclass(frozen=True, slots=True)
class CrawlPolicy:
    """Which URLs the archive's crawl frontier accepts.

    Web-scale crawlers deprioritise URLs with many query parameters —
    "the number of feasible values for some of the query parameters is
    practically unbounded" (§5.2) — which is the paper's first
    explanation for never-archived URLs. URLs rejected here are
    captured neither organically nor via the event feeds.
    """

    max_query_params: int = 2
    max_query_length: int = 48

    def crawlable(self, url: str) -> bool:
        """Whether the frontier accepts ``url``."""
        from ..errors import UrlError
        from ..urls.parse import QueryArgs, parse_url

        try:
            parsed = parse_url(url)
        except UrlError:
            return False
        if len(parsed.query) > self.max_query_length:
            return False
        return len(QueryArgs.parse(parsed.query)) <= self.max_query_params


class BodySketcher:
    """MinHash sketching with a core-body cache.

    Bodies in the simulated web are a stable core plus one trailing
    per-request noise token; sketching the body minus its final token
    and caching on that stem makes repeated captures of the same page
    O(1) after the first. The lost token perturbs the true sketch
    negligibly (4 shingles out of hundreds).

    Sketching runs on whichever numeric backend
    :mod:`repro.numerics` selected — the numpy kernels when the
    ``repro[numpy]`` extra is installed, value-identical pure-stdlib
    kernels otherwise — so crawling works in a clean install
    (``tests/test_install_smoke.py`` pins this).
    """

    def __init__(self) -> None:
        self._cache: dict[str, tuple[int, ...]] = {}
        self.misses = 0

    def sketch(self, body: str) -> tuple[int, ...]:
        """MinHash sketch of ``body`` (cached on its stable stem)."""
        stem = body.rsplit(" ", 1)[0] if " " in body else body
        cached = self._cache.get(stem)
        if cached is None:
            self.misses += 1
            cached = minhash_sketch(stem)
            self._cache[stem] = cached
        return cached


#: How long a fetched robots.txt stays cached before re-checking.
ROBOTS_CACHE_DAYS = 365.0


class ArchiveCrawler:
    """Fetch-and-record: the archive's capture executor.

    Honours robots.txt: before capturing a URL, the crawler fetches
    (and caches) the host's ``/robots.txt`` and skips disallowed paths
    — one of the real-world reasons a URL can be "never archived"
    while its site is otherwise covered.
    """

    def __init__(
        self,
        fetcher: Fetcher,
        store: SnapshotStore,
        honor_robots: bool = True,
    ) -> None:
        self._fetcher = fetcher
        self._store = store
        self._sketcher = BodySketcher()
        self._honor_robots = honor_robots
        self._robots_cache: dict[str, tuple[float, "RobotsRules"]] = {}
        self.capture_attempts = 0
        self.capture_failures = 0
        self.robots_denied = 0

    def capture(self, url: str, at: SimTime) -> Snapshot | None:
        """Attempt to archive ``url`` at instant ``at``.

        Returns the stored snapshot, or ``None`` when robots.txt
        forbids the path or the fetch failed at the transport level
        (DNS failure / connect timeout) — such attempts leave no trace
        in the archive, exactly like the real Wayback Machine.
        """
        self.capture_attempts += 1
        if self._honor_robots and not self._robots_allow(url, at):
            self.robots_denied += 1
            return None
        result = self._fetcher.fetch(url, at)
        if not result.chain:
            self.capture_failures += 1
            return None
        initial = result.chain[0]
        final = result.chain[-1]
        snapshot = Snapshot(
            url=url,
            captured_at=at,
            initial_status=initial.status,
            redirect_location=initial.location if initial.is_redirect else None,
            final_status=final.status,
            final_url=final.url,
            sketch=self._sketcher.sketch(final.body),
        )
        self._store.add(snapshot)
        return snapshot

    def robots_allows(self, url: str, at: SimTime) -> bool:
        """Public robots check (used by Save Page Now before queueing)."""
        return self._robots_allow(url, at)

    def _robots_allow(self, url: str, at: SimTime) -> bool:
        """Consult the host's (cached) robots.txt for ``url``."""
        from ..errors import UrlError
        from ..urls.parse import parse_url
        from ..web.robots import RobotsRules, parse_robots

        try:
            parsed = parse_url(url)
        except UrlError:
            return False
        if parsed.path == "/robots.txt":
            return True
        host = parsed.host_lower
        cached = self._robots_cache.get(host)
        if cached is None or at.days - cached[0] > ROBOTS_CACHE_DAYS:
            result = self._fetcher.fetch(
                f"{parsed.scheme}://{parsed.hostname}/robots.txt", at
            )
            if result.final_status == 200:
                rules = parse_robots(result.body)
            else:
                # Unreachable or missing robots: everything allowed
                # (the capture itself will fail if the host is gone).
                rules = RobotsRules()
            self._robots_cache[host] = (at.days, rules)
            cached = self._robots_cache[host]
        return cached[1].allows(parsed.path)


@dataclass(frozen=True, slots=True)
class OrganicCrawlPlanner:
    """Poisson revisit schedules for organically crawled URLs.

    ``rate_per_year`` arrivals per year on average, starting at
    ``available_from`` (when the archive first learned the URL exists)
    and ending at ``horizon``.
    """

    horizon: SimTime

    def plan(
        self,
        available_from: SimTime,
        rate_per_year: float,
        rng: Stream,
    ) -> list[SimTime]:
        """Capture instants for one URL."""
        if rate_per_year <= 0:
            return []
        times: list[SimTime] = []
        mean_gap_days = 365.2425 / rate_per_year
        cursor = available_from.days
        while True:
            cursor += rng.expovariate(1.0 / mean_gap_days)
            if cursor >= self.horizon.days:
                return times
            times.append(SimTime(cursor))


@dataclass(frozen=True, slots=True)
class TriggerEra:
    """One era of link-posted-event archiving."""

    start: SimTime
    end: SimTime
    coverage: float          # probability a posted link gets a capture
    delay_median_days: float  # median capture delay when covered
    delay_sigma: float = 1.0  # log-normal spread of the delay

    def __post_init__(self) -> None:
        if not 0.0 <= self.coverage <= 1.0:
            raise ValueError("coverage must be in [0, 1]")
        if not self.start < self.end:
            raise ValueError("era must have start < end")

    def covers(self, at: SimTime) -> bool:
        """Whether this era is active at instant ``at``."""
        return not at < self.start and at < self.end


def default_trigger_eras(horizon: SimTime) -> tuple[TriggerEra, ...]:
    """The WNRT (2013-2018) and EventStream (2018-) eras.

    Coverage values are calibration constants chosen so that ~7% of
    dataset links end up captured the day they were posted (§5.1),
    given the paper's posting-date distribution.
    """
    return (
        TriggerEra(
            start=WNRT_START,
            end=EVENTSTREAM_START,
            coverage=0.12,
            delay_median_days=1.5,
            delay_sigma=0.8,
        ),
        TriggerEra(
            start=EVENTSTREAM_START,
            end=horizon,
            coverage=0.22,
            delay_median_days=0.4,
            delay_sigma=0.7,
        ),
    )


class TriggeredArchiver:
    """Decides whether (and when) a newly-posted link gets captured."""

    def __init__(self, eras: tuple[TriggerEra, ...], rng: Stream) -> None:
        self._eras = eras
        self._rng = rng

    def capture_time_for(self, posted_at: SimTime) -> SimTime | None:
        """Capture instant for a link posted at ``posted_at``, or None.

        ``None`` means the event feed did not exist yet, or the feed
        missed this link — it will only be archived organically, if at
        all.
        """
        for era in self._eras:
            if era.covers(posted_at):
                if not self._rng.chance(era.coverage):
                    return None
                delay = self._rng.lognormal_days(
                    era.delay_median_days, era.delay_sigma
                )
                return posted_at.plus_days(delay)
        return None
