"""Save Page Now — the archive's on-demand capture endpoint.

The paper's §5.1 implication ("whenever a link is posted, the liveness
of the link is confirmed and an archived copy is captured soon
thereafter") is exactly what the Internet Archive's Save Page Now API
provides. This module models it: an on-demand capture request that
also reports the liveness of the URL at capture time — the building
block for an archive-on-post editing workflow (see
``examples/archive_on_post.py``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..clock import SimTime
from .crawler import ArchiveCrawler, CrawlPolicy
from .snapshot import Snapshot


class SaveOutcome(enum.Enum):
    """What a Save Page Now request reported back."""

    SAVED = "saved"
    """Captured; the URL answered 200 — a usable copy now exists."""

    SAVED_ERROR_PAGE = "saved_error_page"
    """Captured, but the URL was already erroring — the archive stored
    the error, and the requester should be told the link looks dead."""

    BLOCKED = "blocked"
    """robots.txt or the frontier policy forbids capturing this URL."""

    UNREACHABLE = "unreachable"
    """DNS failure or connection timeout; nothing stored."""


@dataclass(frozen=True, slots=True)
class SaveResult:
    """Response of one Save Page Now request."""

    url: str
    outcome: SaveOutcome
    snapshot: Snapshot | None = None

    @property
    def link_looks_alive(self) -> bool:
        """Whether the requester should treat the link as working."""
        return self.outcome is SaveOutcome.SAVED


class SavePageNow:
    """The on-demand capture endpoint."""

    def __init__(
        self,
        crawler: ArchiveCrawler,
        policy: CrawlPolicy | None = None,
    ) -> None:
        self._crawler = crawler
        self._policy = policy if policy is not None else CrawlPolicy()
        self.requests = 0

    def save(self, url: str, at: SimTime) -> SaveResult:
        """Capture ``url`` now and report what happened."""
        self.requests += 1
        if not self._policy.crawlable(url):
            return SaveResult(url=url, outcome=SaveOutcome.BLOCKED)
        if not self._crawler.robots_allows(url, at):
            return SaveResult(url=url, outcome=SaveOutcome.BLOCKED)
        snapshot = self._crawler.capture(url, at)
        if snapshot is None:
            return SaveResult(url=url, outcome=SaveOutcome.UNREACHABLE)
        if snapshot.final_status == 200:
            return SaveResult(
                url=url, outcome=SaveOutcome.SAVED, snapshot=snapshot
            )
        return SaveResult(
            url=url, outcome=SaveOutcome.SAVED_ERROR_PAGE, snapshot=snapshot
        )
