"""A Wayback-Machine-style web archive.

Snapshots of URLs accumulate over time from two crawl processes:
organic crawling (rate depends on site popularity) and capture requests
triggered by Wikipedia's link-added event feeds (WNRT 2013-2018,
EventStream after). Clients read the archive through the same two APIs
the paper's tooling uses:

- the **Availability API** (:mod:`repro.archive.availability`), which
  returns the best snapshot for a URL and models the response-latency
  tail that makes IABot's bounded lookups miss copies (§4.1);
- the **CDX API** (:mod:`repro.archive.cdx`), which supports exact,
  prefix (directory), and host queries with status filters — the
  workhorse of the paper's redirect validation (§4.2) and spatial
  coverage analysis (§5.2).
"""

from .availability import AvailabilityApi, AvailabilityPolicy
from .savepagenow import SaveOutcome, SavePageNow, SaveResult
from .cdx import CdxApi, CdxQuery
from .crawler import (
    ArchiveCrawler,
    CrawlPolicy,
    OrganicCrawlPlanner,
    TriggeredArchiver,
)
from .snapshot import Snapshot
from .store import SnapshotStore

__all__ = [
    "ArchiveCrawler",
    "AvailabilityApi",
    "AvailabilityPolicy",
    "CdxApi",
    "CdxQuery",
    "CrawlPolicy",
    "OrganicCrawlPlanner",
    "SaveOutcome",
    "SavePageNow",
    "SaveResult",
    "Snapshot",
    "SnapshotStore",
    "TriggeredArchiver",
]
