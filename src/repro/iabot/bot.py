"""The InternetArchiveBot scan loop.

Per article, per external-link reference:

1. references already annotated dead are skipped (the efficiency rule
   the paper's §3 implications push back on — configurable);
2. the link is checked on the live web; live links are left alone;
3. for a dead link, the bot looks up an archived copy captured closest
   to the date the link was added (§2.1), under the availability
   timeout;
4. a found copy patches the reference; otherwise the reference is
   annotated ``{{dead link |bot=InternetArchiveBot |fix-attempted=yes}}``
   — the "permanent dead link" marking the paper studies.

All changes to an article land as a single revision authored by
``InternetArchiveBot``, so history mining attributes markings exactly
as it does on the real Wikipedia.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..clock import SimTime
from ..wiki.article import Article
from ..wiki.encyclopedia import Encyclopedia
from ..wiki.templates import (
    IABOT_USERNAME,
    build_archive_url,
    dead_link,
    patched_cite,
    webarchive,
)
from ..wiki.wikitext import LinkRef
from .archive_client import IABotArchiveClient
from .checker import LinkChecker
from .config import IABotConfig


@dataclass
class BotStats:
    """Counters accumulated across sweeps."""

    articles_scanned: int = 0
    articles_edited: int = 0
    links_checked: int = 0
    links_alive: int = 0
    links_dead: int = 0
    patched: int = 0
    marked_permadead: int = 0
    unmarked_revived: int = 0
    skipped_marked: int = 0
    skipped_patched: int = 0

    def merge(self, other: "BotStats") -> None:
        """Accumulate another stats object into this one."""
        for name in self.__dataclass_fields__:
            setattr(self, name, getattr(self, name) + getattr(other, name))


class InternetArchiveBot:
    """The bot: wire a checker and an archive client to an encyclopedia."""

    def __init__(
        self,
        encyclopedia: Encyclopedia,
        checker: LinkChecker,
        archive_client: IABotArchiveClient,
        config: IABotConfig | None = None,
    ) -> None:
        self._enc = encyclopedia
        self._checker = checker
        self._archive = archive_client
        self.config = config if config is not None else IABotConfig()
        self.stats = BotStats()

    # -- public API -----------------------------------------------------------------

    def run_sweep(
        self, at: SimTime, titles: tuple[str, ...] | None = None
    ) -> BotStats:
        """Scan every article (or ``titles``) once at instant ``at``."""
        sweep = BotStats()
        for title in titles if titles is not None else self._enc.titles():
            article_stats = self.scan_article(title, at)
            sweep.merge(article_stats)
        self.stats.merge(sweep)
        return sweep

    def scan_article(self, title: str, at: SimTime) -> BotStats:
        """Scan one article; returns the per-article stats."""
        stats = BotStats(articles_scanned=1)
        article = self._enc.article(title)
        text = article.wikitext
        replacements: list[tuple[tuple[int, int], str]] = []
        for ref in article.link_refs():
            replacement = self._process_ref(article, ref, at, stats)
            if replacement is not None:
                replacements.append((ref.span, replacement))
        if not replacements:
            return stats
        new_text = _splice(text, replacements)
        self._enc.edit_article(
            title,
            at,
            IABOT_USERNAME,
            new_text,
            comment="Rescuing sources and tagging them as dead",
        )
        stats.articles_edited = 1
        return stats

    # -- per-reference logic ----------------------------------------------------------

    def _process_ref(
        self, article: Article, ref: LinkRef, at: SimTime, stats: BotStats
    ) -> str | None:
        """Returns the replacement wikitext for ``ref``, or None."""
        if ref.archive_url is not None:
            stats.skipped_patched += 1
            return None
        if ref.is_marked_dead and not self.config.recheck_marked_links:
            stats.skipped_marked += 1
            return None

        stats.links_checked += 1
        verdict = self._checker.check(ref.url, at)
        if not verdict.dead:
            stats.links_alive += 1
            if ref.is_marked_dead:
                # Recheck mode found a previously-dead link working
                # again (§3's 3%): drop the annotation.
                stats.unmarked_revived += 1
                return self._plain_text(ref)
            return None

        stats.links_dead += 1
        posted = article.first_revision_with_url(ref.url)
        posted_at = posted.timestamp if posted is not None else at
        copy = self._archive.find_copy(ref.url, posted_at)
        if copy is not None:
            stats.patched += 1
            return self._patched_text(ref, copy.url, copy.captured_at, at)
        if ref.is_marked_dead:
            return None  # already annotated; nothing new to record
        stats.marked_permadead += 1
        return self._plain_text(ref) + dead_link(at, IABOT_USERNAME).render()

    # -- wikitext assembly ---------------------------------------------------------------

    @staticmethod
    def _plain_text(ref: LinkRef) -> str:
        """The reference with no annotations."""
        if ref.cite is not None:
            return ref.cite.render()
        if ref.title:
            return f"[{ref.url} {ref.title}]"
        return f"[{ref.url}]"

    def _patched_text(
        self, ref: LinkRef, copy_url: str, captured_at: SimTime, at: SimTime
    ) -> str:
        archive = build_archive_url(copy_url, captured_at)
        if ref.cite is not None:
            return patched_cite(ref.cite, archive, at).render()
        return self._plain_text(ref) + webarchive(archive, at).render()


def _splice(text: str, replacements: list[tuple[tuple[int, int], str]]) -> str:
    """Apply span replacements (spans must not overlap)."""
    pieces: list[str] = []
    cursor = 0
    for (start, end), replacement in sorted(replacements, key=lambda r: r[0][0]):
        if start < cursor:
            raise ValueError("overlapping reference spans")
        pieces.append(text[cursor:start])
        pieces.append(replacement)
        cursor = end
    pieces.append(text[cursor:])
    return "".join(pieces)
