"""WaybackMedic: the thorough re-checker.

Section 4.1: after the authors reported that the Wayback Machine held
200-status copies for many links IABot had marked permanently dead,
the Internet Archive ran WaybackMedic — "an alternate bot … [that]
runs more slowly than IABot … but it is more comprehensive in finding
usable archived copies" — and patched 20,080 links.

Our medic re-examines every permanently-dead reference with *patient*
availability lookups (no timeout) and, optionally, with a §4.2-style
validated-redirect finder injected by the caller, quantifying exactly
how many "permanently dead" links were patchable all along.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..archive.availability import AvailabilityApi
from ..archive.snapshot import Snapshot
from ..clock import SimTime
from ..wiki.encyclopedia import Encyclopedia, PERMADEAD_CATEGORY
from ..wiki.templates import build_archive_url, patched_cite, webarchive
from ..wiki.wikitext import LinkRef

#: Optional hook: given (url, marked_at) return a validated 3xx
#: snapshot usable as a patch, or None. Provided by
#: :mod:`repro.analysis.redirects` when redirect-patching is enabled.
RedirectFinder = Callable[[str, SimTime], Snapshot | None]

MEDIC_USERNAME = "WaybackMedic"


@dataclass
class MedicReport:
    """What one medic run did."""

    articles_examined: int = 0
    links_examined: int = 0
    patched_with_200_copy: int = 0
    patched_with_validated_redirect: int = 0
    still_permadead: int = 0

    @property
    def patched_total(self) -> int:
        """All rescues, both 200-copy and validated-redirect."""
        return self.patched_with_200_copy + self.patched_with_validated_redirect


class WaybackMedic:
    """Patient re-examination of permanently dead references."""

    def __init__(
        self,
        encyclopedia: Encyclopedia,
        availability: AvailabilityApi,
        redirect_finder: RedirectFinder | None = None,
    ) -> None:
        self._enc = encyclopedia
        self._availability = availability
        self._redirect_finder = redirect_finder

    def run(self, at: SimTime) -> MedicReport:
        """Re-examine every article in the permanently-dead category."""
        report = MedicReport()
        for title in self._enc.articles_in_category(PERMADEAD_CATEGORY):
            self._treat_article(title, at, report)
        return report

    def _treat_article(self, title: str, at: SimTime, report: MedicReport) -> None:
        article = self._enc.article(title)
        report.articles_examined += 1
        text = article.wikitext
        replacements: list[tuple[tuple[int, int], str]] = []
        for ref in article.link_refs():
            if not ref.is_permanently_dead:
                continue
            report.links_examined += 1
            replacement = self._treat_ref(article, ref, at, report)
            if replacement is not None:
                replacements.append((ref.span, replacement))
        if not replacements:
            return
        from .bot import _splice  # shared span-splicing helper

        self._enc.edit_article(
            title,
            at,
            MEDIC_USERNAME,
            _splice(text, replacements),
            comment="Rescuing previously unrecoverable sources",
        )

    def _treat_ref(
        self, article, ref: LinkRef, at: SimTime, report: MedicReport
    ) -> str | None:
        posted = article.first_revision_with_url(ref.url)
        posted_at = posted.timestamp if posted is not None else at
        marked = article.first_revision_marking_dead(ref.url)
        marked_at = marked.timestamp if marked is not None else at
        # Patient lookup: no timeout, so the latency tail cannot hide
        # copies from the medic. Only copies that predate the marking
        # qualify — a 200 captured after the link died is usually a
        # parked lander or soft-404, not the cited content.
        result = self._availability.lookup(
            ref.url, around=posted_at, before=marked_at
        )
        if result.snapshot is not None:
            report.patched_with_200_copy += 1
            return self._patch_text(ref, result.snapshot, at)
        if self._redirect_finder is not None:
            snapshot = self._redirect_finder(ref.url, marked_at)
            if snapshot is not None:
                report.patched_with_validated_redirect += 1
                return self._patch_text(ref, snapshot, at)
        report.still_permadead += 1
        return None

    @staticmethod
    def _patch_text(ref: LinkRef, snapshot: Snapshot, at: SimTime) -> str:
        archive = build_archive_url(snapshot.url, snapshot.captured_at)
        if ref.cite is not None:
            return patched_cite(ref.cite, archive, at).render()
        base = f"[{ref.url} {ref.title}]" if ref.title else f"[{ref.url}]"
        return base + webarchive(archive, at).render()
