"""Link deadness determination.

Section 2.1: "IABot determines that a URL is broken if its HTTP GET
request for that URL does not result in a 200 status code response
(after potential redirections)." The checker issues that GET and
renders a verdict; with ``checks_before_dead > 1`` it retries on
consecutive days, which is how real IABot behaves outside the paper's
observation window and what ablation studies compare against.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..clock import SimTime
from ..net.fetch import Fetcher, FetchResult


@dataclass(frozen=True, slots=True)
class CheckVerdict:
    """Outcome of a deadness check."""

    url: str
    dead: bool
    attempts: tuple[FetchResult, ...]

    @property
    def last_result(self) -> FetchResult:
        """The final fetch attempt's result."""
        return self.attempts[-1]


class LinkChecker:
    """GET-based deadness checks over the live web."""

    def __init__(self, fetcher: Fetcher, checks_before_dead: int = 1) -> None:
        if checks_before_dead < 1:
            raise ValueError("checks_before_dead must be >= 1")
        self._fetcher = fetcher
        self._checks_before_dead = checks_before_dead
        self.checks_performed = 0

    def check(self, url: str, at: SimTime) -> CheckVerdict:
        """Declare ``url`` dead only if every attempt fails.

        Attempts are spaced one day apart (real IABot re-checks on
        later passes); the first 200 ends the check early with an
        alive verdict.
        """
        attempts: list[FetchResult] = []
        for attempt in range(self._checks_before_dead):
            self.checks_performed += 1
            result = self._fetcher.fetch(url, at.plus_days(attempt))
            attempts.append(result)
            if result.ok:
                return CheckVerdict(url=url, dead=False, attempts=tuple(attempts))
        return CheckVerdict(url=url, dead=True, attempts=tuple(attempts))
