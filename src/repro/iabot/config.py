"""IABot operating parameters.

Defaults model the behaviour the paper describes; ablation benchmarks
sweep them to quantify how much each policy costs (DESIGN.md ABL-1 and
ABL-3).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class IABotConfig:
    """Knobs for the bot's scan loop.

    Attributes:
        availability_timeout_ms: budget for one Wayback Availability
            API lookup; a slower answer is treated as "this URL was
            never archived" (§4.1). ``None`` disables the timeout.
        recheck_marked_links: whether a sweep re-checks references that
            already carry a dead-link annotation. IABot keeps this off
            to "maximize efficiency" (§3); the paper recommends turning
            it on occasionally, which is ablation ABL-3.
        checks_before_dead: how many consecutive failed fetches are
            needed to declare a link dead. The paper observes IABot
            effectively "determines whether the link is dead by
            attempting to fetch the link only once".
    """

    availability_timeout_ms: float | None = 5000.0
    recheck_marked_links: bool = False
    checks_before_dead: int = 1

    def __post_init__(self) -> None:
        if self.availability_timeout_ms is not None and self.availability_timeout_ms <= 0:
            raise ValueError("availability_timeout_ms must be positive or None")
        if self.checks_before_dead < 1:
            raise ValueError("checks_before_dead must be >= 1")
