"""A behavioural port of InternetArchiveBot (and WaybackMedic).

The paper's central findings are *consequences of IABot's operating
policies* (its single-GET deadness check, its bounded availability
lookups, its refusal to use archived copies that were captured through
a redirect, and its never-recheck-marked-links efficiency rule), so
those policies are implemented explicitly and configurably here:

- :class:`~repro.iabot.checker.LinkChecker` — deadness determination;
- :class:`~repro.iabot.archive_client.IABotArchiveClient` — bounded
  availability lookups with the initial-status-200 copy policy;
- :class:`~repro.iabot.bot.InternetArchiveBot` — the scan/patch/mark
  loop that edits articles;
- :class:`~repro.iabot.medic.WaybackMedic` — the slower, thorough
  re-checker that the Internet Archive ran after the paper's findings.
"""

from .archive_client import IABotArchiveClient
from .bot import BotStats, InternetArchiveBot
from .checker import CheckVerdict, LinkChecker
from .config import IABotConfig
from .medic import MedicReport, WaybackMedic

__all__ = [
    "BotStats",
    "CheckVerdict",
    "IABotArchiveClient",
    "IABotConfig",
    "InternetArchiveBot",
    "LinkChecker",
    "MedicReport",
    "WaybackMedic",
]
