"""IABot's view of the Wayback Machine.

Two policies the paper pins its §4 findings on live here:

1. **Bounded lookups** — the availability query runs under a timeout;
   no answer in time means the bot proceeds as if no archived copies
   exist ("To operate efficiently at scale, the bot assumes that a
   link was never archived if its attempt to lookup archived copies
   for that link does not complete in a timely manner").
2. **No-redirect copies only** — only snapshots whose *initial* status
   was 200 qualify ("it conservatively links to a page's archived copy
   only if no redirections were encountered when that copy was
   crawled"). The availability API itself implements the 200 filter,
   matching the real API's behaviour.

The retry knob quantifies how much of §4.1 is *recoverable*: with a
:class:`~repro.retry.RetryPolicy`, timed-out or transiently erroring
lookups are repeated (each repeat re-draws the API's latency), trading
virtual wait for coverage — the sweep ``benchmarks/
bench_ablation_timeout.py`` measures. The default (no policy) is the
bot the paper studied: one bounded attempt, give up, move on.
"""

from __future__ import annotations

from ..archive.availability import AvailabilityApi
from ..archive.snapshot import Snapshot
from ..backends.core import Op, RetryLayer
from ..clock import SimTime
from ..errors import ArchiveError, ArchiveTimeout
from ..obs.trace import Tracer
from ..retry import RetryCounters, RetryPolicy, is_transient


def _lookup_retryable(exc: BaseException) -> bool:
    """Timeouts and transient archive errors are worth repeating."""
    return isinstance(exc, ArchiveTimeout) or is_transient(exc)


class IABotArchiveClient:
    """Bounded closest-copy lookups, optionally retried.

    A ``tracer`` records one ``kind="availability"`` span per lookup,
    carrying the URL, how it resolved (found / none / timeout /
    error), and the API's simulated latency as virtual milliseconds —
    the third backend leg of the study's span hierarchy, next to
    ``backend.fetch`` and ``backend.cdx``.
    """

    def __init__(
        self,
        api: AvailabilityApi,
        timeout_ms: float | None = 5000.0,
        retry_policy: RetryPolicy | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        self._api = api
        self._timeout_ms = timeout_ms
        self._retry_policy = retry_policy
        self._tracer = tracer
        self.lookups = 0
        self.timeouts = 0
        self.errors = 0
        self.retry_counters = RetryCounters()
        self._lookup = RetryLayer(
            Op(
                "availability.lookup",
                lambda req: self._api.lookup(
                    req[0], around=req[1], timeout_ms=self._timeout_ms
                ),
            ),
            policy=retry_policy,
            key_fn=lambda req: f"availability:{req[0]}",
            retryable=_lookup_retryable,
            counters=self.retry_counters,
        )

    def find_copy(self, url: str, posted_at: SimTime) -> Snapshot | None:
        """The usable archived copy closest to ``posted_at``, if any
        lookup attempt completes in time.

        Returns ``None`` when no qualifying copy exists, when every
        allowed attempt times out, and when the API errors transiently
        past the retry budget — all indistinguishable to IABot, which
        is precisely the paper's point.
        """
        if self._tracer is None:
            return self._find_copy(url, posted_at)
        with self._tracer.span(
            "availability.lookup", kind="availability",
            sim=posted_at, url=url,
        ) as span:
            backoff_before = self.retry_counters.backoff_ms
            snapshot = self._find_copy(url, posted_at, span)
            span.add_virtual_ms(
                self.retry_counters.backoff_ms - backoff_before
            )
            return snapshot

    def _find_copy(
        self, url: str, posted_at: SimTime, span=None
    ) -> Snapshot | None:
        self.lookups += 1
        try:
            result = self._lookup.call((url, posted_at))
        except ArchiveTimeout:
            self.timeouts += 1
            if span is not None:
                span.set(resolved="timeout")
            return None
        except ArchiveError as exc:
            if not is_transient(exc):
                raise
            # A 5xx/429 the budget could not outlast: the bot logs it
            # and proceeds exactly as if the link were never archived.
            self.errors += 1
            if span is not None:
                span.set(resolved="error")
            return None
        if span is not None:
            span.set(
                resolved="found" if result.snapshot is not None else "none"
            )
            span.add_virtual_ms(result.latency_ms)
        return result.snapshot
