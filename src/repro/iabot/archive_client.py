"""IABot's view of the Wayback Machine.

Two policies the paper pins its §4 findings on live here:

1. **Bounded lookups** — the availability query runs under a timeout;
   no answer in time means the bot proceeds as if no archived copies
   exist ("To operate efficiently at scale, the bot assumes that a
   link was never archived if its attempt to lookup archived copies
   for that link does not complete in a timely manner").
2. **No-redirect copies only** — only snapshots whose *initial* status
   was 200 qualify ("it conservatively links to a page's archived copy
   only if no redirections were encountered when that copy was
   crawled"). The availability API itself implements the 200 filter,
   matching the real API's behaviour.
"""

from __future__ import annotations

from ..archive.availability import AvailabilityApi
from ..archive.snapshot import Snapshot
from ..clock import SimTime
from ..errors import ArchiveTimeout


class IABotArchiveClient:
    """Bounded closest-copy lookups."""

    def __init__(
        self, api: AvailabilityApi, timeout_ms: float | None = 5000.0
    ) -> None:
        self._api = api
        self._timeout_ms = timeout_ms
        self.lookups = 0
        self.timeouts = 0

    def find_copy(self, url: str, posted_at: SimTime) -> Snapshot | None:
        """The usable archived copy closest to ``posted_at``, if the
        lookup completes in time.

        Returns ``None`` both when no qualifying copy exists and when
        the lookup times out — the two cases are indistinguishable to
        IABot, which is precisely the paper's point.
        """
        self.lookups += 1
        try:
            result = self._api.lookup(
                url, around=posted_at, timeout_ms=self._timeout_ms
            )
        except ArchiveTimeout:
            self.timeouts += 1
            return None
        return result.snapshot
