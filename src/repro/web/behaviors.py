"""Site-level server behaviours.

Two orthogonal knobs shape what a broken URL looks like from outside:

- :class:`MissingPagePolicy` — what the server does for a path it has
  no page for. Real sites differ here, and the differences are exactly
  what separates honest 404s from the soft-404s and erroneous
  redirections the paper has to detect (§3, §4.2).
- :class:`SiteState` — whole-site conditions layered on top: parked by
  a squatter, geo-blocked at the measurement vantage point, flaky
  connectivity, scheduled outages.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..clock import SimTime


class MissingPagePolicy(enum.Enum):
    """What a site serves for a URL it has no content for."""

    HARD_404 = "hard_404"
    """Honest 404 status with the site's error page."""

    SOFT_404 = "soft_404"
    """200 status, but the body is the site's error page. The classic
    soft-404 that status-code-only checkers mistake for alive."""

    REDIRECT_HOME = "redirect_home"
    """302 to the site homepage — the paper's canonical *erroneous*
    redirection ("the old URL for a news article might redirect to the
    news site's homepage")."""

    REDIRECT_LOGIN = "redirect_login"
    """302 to the site's login page. The §3 detector special-cases
    this: identical redirect targets don't imply brokenness when the
    target is a login wall."""

    REDIRECT_OFFSITE = "redirect_offsite"
    """302 to an unrelated site (cf. baku2017.com -> goalku.com). The
    target URL is site configuration."""


class GeoPolicy(enum.Enum):
    """Whether the measurement vantage point can reach the site."""

    OPEN = "open"
    BLOCKED_403 = "blocked_403"   # explicit geo-block response
    BLOCKED_TIMEOUT = "blocked_timeout"  # silently dropped connections


@dataclass(frozen=True, slots=True)
class OutageWindow:
    """A [start, end) interval during which the site returns 503."""

    start: SimTime
    end: SimTime

    def __post_init__(self) -> None:
        if not self.start < self.end:
            raise ValueError("outage window must have start < end")

    def covers(self, at: SimTime) -> bool:
        """Whether the outage window contains instant ``at``."""
        return not at < self.start and at < self.end


@dataclass(frozen=True, slots=True)
class SiteState:
    """Whole-site conditions, checked before any page lookup.

    Attributes:
        parked_from: if set, from this instant every path returns 200
            with parked-domain content (a squatter re-registered the
            name).
        geo: reachability from the measurement vantage point.
        geo_from: when the geo policy takes effect (immediately if
            ``None`` and the policy is not OPEN).
        timeout_probability: per-request chance of a connection
            timeout, modelling chronically flaky hosting.
        outages: 503 windows.
    """

    parked_from: SimTime | None = None
    geo: GeoPolicy = GeoPolicy.OPEN
    geo_from: SimTime | None = None
    timeout_probability: float = 0.0
    outages: tuple[OutageWindow, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not 0.0 <= self.timeout_probability <= 1.0:
            raise ValueError("timeout_probability must be in [0, 1]")

    def parked_at(self, at: SimTime) -> bool:
        """Whether the squatter's lander is up at instant ``at``."""
        return self.parked_from is not None and not at < self.parked_from

    def geo_active_at(self, at: SimTime) -> bool:
        """Whether the geo-block affects the vantage at ``at``."""
        if self.geo is GeoPolicy.OPEN:
            return False
        if self.geo_from is None:
            return True
        return not at < self.geo_from

    def outage_at(self, at: SimTime) -> bool:
        """Whether any outage window covers instant ``at``."""
        return any(window.covers(at) for window in self.outages)
