"""robots.txt — the web's crawl-permission protocol.

Web archives honour robots exclusions, which is one real-world reason
a URL can be "never archived" while its site is otherwise well
covered. Sites carry a :class:`RobotsRules`; the live web serves it at
``/robots.txt``; the archive's crawler fetches and caches it before
capturing (see :meth:`repro.archive.crawler.ArchiveCrawler.capture`).

Implemented subset of the de-facto standard: a single ``User-agent: *``
group with ``Disallow:`` path prefixes and ``Allow:`` overrides;
longest-match wins, as in RFC 9309.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, slots=True)
class RobotsRules:
    """Parsed robots policy for one site (single ``*`` group)."""

    disallow: tuple[str, ...] = ()
    allow: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        for prefix in (*self.disallow, *self.allow):
            if not prefix.startswith("/"):
                raise ValueError(f"robots prefixes must start with '/': {prefix!r}")

    @property
    def restricts_anything(self) -> bool:
        """Whether any path is disallowed."""
        return bool(self.disallow)

    def allows(self, path: str) -> bool:
        """Whether a crawler may fetch ``path`` (longest match wins)."""
        best_len = -1
        best_allowed = True
        for prefix in self.disallow:
            if path.startswith(prefix) and len(prefix) > best_len:
                best_len = len(prefix)
                best_allowed = False
        for prefix in self.allow:
            if path.startswith(prefix) and len(prefix) >= best_len:
                best_len = len(prefix)
                best_allowed = True
        return best_allowed

    def render(self) -> str:
        """The robots.txt body a server would serve."""
        lines = ["User-agent: *"]
        for prefix in self.disallow:
            lines.append(f"Disallow: {prefix}")
        for prefix in self.allow:
            lines.append(f"Allow: {prefix}")
        if not self.disallow and not self.allow:
            lines.append("Disallow:")
        return "\n".join(lines) + "\n"


def parse_robots(body: str) -> RobotsRules:
    """Parse a robots.txt body (single-group subset).

    Unknown directives and comments are ignored; groups for specific
    user agents are ignored too (archives crawl as ``*``). Malformed
    lines are skipped rather than fatal, like real crawlers do.
    """
    disallow: list[str] = []
    allow: list[str] = []
    in_star_group = False
    seen_any_group = False
    for raw_line in body.splitlines():
        line = raw_line.split("#", 1)[0].strip()
        if not line or ":" not in line:
            continue
        directive, _, value = line.partition(":")
        directive = directive.strip().lower()
        value = value.strip()
        if directive == "user-agent":
            in_star_group = value == "*"
            seen_any_group = True
        elif directive == "disallow" and (in_star_group or not seen_any_group):
            if value.startswith("/"):
                disallow.append(value)
        elif directive == "allow" and (in_star_group or not seen_any_group):
            if value.startswith("/"):
                allow.append(value)
    return RobotsRules(disallow=tuple(disallow), allow=tuple(allow))
