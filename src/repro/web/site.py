"""A website: directory tree of pages plus server behaviour.

The site answers GETs at a given simulated instant. Whole-site state
(parked, geo-blocked, outage, flakiness) is checked first, then the
page lifecycle, then the missing-page policy.

Timeout draws are hash-based on (site seed, URL, day) rather than
consuming a shared RNG, so a given probe is reproducible regardless of
how many other requests the simulation has served — and, as on the
real web, retrying the same flaky URL on a different day can succeed.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from ..clock import SimTime
from ..errors import ConnectionTimeout
from ..net.http import HttpRequest, HttpResponse
from ..textsim.content import ContentGenerator
from .behaviors import GeoPolicy, MissingPagePolicy, SiteState
from .page import Page, PageStatus
from .robots import RobotsRules

LOGIN_PATH = "/login"
ROBOTS_PATH = "/robots.txt"


def _canonical_path_query(path_query: str) -> str:
    """Order-insensitive form of a path+query.

    Web servers resolve ``?a=1&b=2`` and ``?b=2&a=1`` to the same
    resource; pages are therefore indexed under a canonical (sorted)
    query as well as their exact string. This is what makes the §5.2
    reordered-parameter recovery meaningful.
    """
    from ..urls.parse import QueryArgs

    if "?" not in path_query:
        return path_query
    path, query = path_query.split("?", 1)
    pairs = QueryArgs.parse(query).canonical()
    return path + "?" + "&".join(f"{k}={v}" for k, v in pairs)


def _hash_unit(seed: str) -> float:
    """A uniform [0, 1) draw derived purely from ``seed``."""
    digest = hashlib.sha256(seed.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


@dataclass
class Site:
    """One simulated website.

    Attributes:
        hostname: the site's canonical hostname.
        seed: deterministic seed for content and flakiness draws.
        scheme: canonical scheme for self-referential redirect targets.
        ranking: Alexa-style global rank (1 = most popular).
        created_at: when the site came online.
        dns_dies_at: when its DNS registration lapses (None = never);
            enforced by the DNS table, recorded here for generators.
        missing_policy: behaviour for unknown/dead paths at site birth.
        policy_changes: later missing-policy phases, as (from, policy)
            pairs in time order — sites redesign, move to new CMSes,
            and change how dead URLs answer, which is how a link can be
            an honest 404 when IABot checks it and a soft-404 by the
            time the study probes it.
        offsite_redirect_target: absolute URL used by REDIRECT_OFFSITE.
        state: whole-site conditions.
    """

    hostname: str
    seed: str
    scheme: str = "http"
    ranking: int = 500_000
    created_at: SimTime = field(default_factory=lambda: SimTime(0.0))
    dns_dies_at: SimTime | None = None
    missing_policy: MissingPagePolicy = MissingPagePolicy.HARD_404
    policy_changes: tuple[tuple[SimTime, MissingPagePolicy], ...] = ()
    offsite_redirect_target: str | None = None
    robots: RobotsRules = field(default_factory=RobotsRules)
    state: SiteState = field(default_factory=SiteState)
    _pages: dict[str, Page] = field(default_factory=dict)
    _canonical_pages: dict[str, Page] = field(default_factory=dict)

    def __post_init__(self) -> None:
        policies = [self.missing_policy] + [p for _, p in self.policy_changes]
        if (
            MissingPagePolicy.REDIRECT_OFFSITE in policies
            and not self.offsite_redirect_target
        ):
            raise ValueError("REDIRECT_OFFSITE requires offsite_redirect_target")
        for earlier, later in zip(self.policy_changes, self.policy_changes[1:]):
            if not earlier[0] < later[0]:
                raise ValueError("policy_changes must be in time order")
        self._content = ContentGenerator(self.seed)

    def missing_policy_at(self, at: SimTime) -> MissingPagePolicy:
        """The missing-page policy in force at instant ``at``."""
        policy = self.missing_policy
        for change_at, changed in self.policy_changes:
            if at < change_at:
                break
            policy = changed
        return policy

    # -- page management ---------------------------------------------------------

    def add_page(self, page: Page) -> None:
        """Register a page; duplicate paths are a generator bug."""
        if page.path_query in self._pages:
            raise ValueError(
                f"duplicate page {page.path_query!r} on {self.hostname}"
            )
        self._pages[page.path_query] = page
        self._canonical_pages[_canonical_path_query(page.path_query)] = page

    def page(self, path_query: str) -> Page | None:
        """The page at ``path_query``, if one was ever defined."""
        return self._pages.get(path_query)

    def pages(self) -> tuple[Page, ...]:
        """All defined pages, in insertion order."""
        return tuple(self._pages.values())

    @property
    def root_url(self) -> str:
        """The site homepage URL."""
        return f"{self.scheme}://{self.hostname}/"

    @property
    def login_url(self) -> str:
        """The site's login page URL."""
        return f"{self.scheme}://{self.hostname}{LOGIN_PATH}"

    def url_for(self, path_query: str) -> str:
        """Absolute URL for a path on this site."""
        return f"{self.scheme}://{self.hostname}{path_query}"

    # -- request handling -----------------------------------------------------------

    def respond(self, request: HttpRequest, at: SimTime, nonce: int) -> HttpResponse:
        """Answer a GET at instant ``at``.

        Raises :class:`~repro.errors.ConnectionTimeout` for flaky or
        silently geo-blocked conditions; returns an
        :class:`~repro.net.http.HttpResponse` otherwise.
        """
        url = str(request.url)
        path_query = request.url.path + (
            f"?{request.url.query}" if request.url.query else ""
        )

        if self.state.geo_active_at(at):
            if self.state.geo is GeoPolicy.BLOCKED_TIMEOUT:
                raise ConnectionTimeout(self.hostname)
            return HttpResponse(url=url, status=403, body="access denied")

        if self.state.parked_at(at):
            return HttpResponse(
                url=url, status=200, body=self._content.parked_page(nonce).body
            )

        if self.state.outage_at(at):
            return HttpResponse(url=url, status=503, body="service unavailable")

        if self.state.timeout_probability > 0.0:
            draw = _hash_unit(f"{self.seed}:timeout:{url}:{int(at.days)}")
            if draw < self.state.timeout_probability:
                raise ConnectionTimeout(self.hostname)

        if request.url.path == "/" and not request.url.query:
            return HttpResponse(
                url=url, status=200, body=self._content.homepage(nonce).body
            )
        if request.url.path == ROBOTS_PATH:
            return HttpResponse(url=url, status=200, body=self.robots.render())
        if request.url.path == LOGIN_PATH:
            return HttpResponse(
                url=url, status=200, body=self._content.login_page(nonce).body
            )

        page = self._pages.get(path_query)
        if page is None and request.url.query:
            # Servers resolve reordered query parameters identically.
            page = self._canonical_pages.get(_canonical_path_query(path_query))
        if page is not None:
            status = page.status_at(at)
            if status is PageStatus.SERVES:
                # Content keyed by the page's canonical path, so every
                # parameter ordering serves identical bytes.
                return HttpResponse(
                    url=url,
                    status=200,
                    body=self._content.article(page.path_query, nonce).body,
                )
            if status is PageStatus.REDIRECTS:
                assert page.moved_to is not None
                return HttpResponse(url=url, status=301, location=page.moved_to)
        return self._missing(url, nonce, at)

    def _missing(self, url: str, nonce: int, at: SimTime) -> HttpResponse:
        policy = self.missing_policy_at(at)
        if policy is MissingPagePolicy.HARD_404:
            return HttpResponse(
                url=url, status=404, body=self._content.error_page(nonce).body
            )
        if policy is MissingPagePolicy.SOFT_404:
            return HttpResponse(
                url=url, status=200, body=self._content.error_page(nonce).body
            )
        if policy is MissingPagePolicy.REDIRECT_HOME:
            return HttpResponse(url=url, status=302, location=self.root_url)
        if policy is MissingPagePolicy.REDIRECT_LOGIN:
            return HttpResponse(url=url, status=302, location=self.login_url)
        assert policy is MissingPagePolicy.REDIRECT_OFFSITE
        assert self.offsite_redirect_target is not None
        return HttpResponse(
            url=url, status=302, location=self.offsite_redirect_target
        )
