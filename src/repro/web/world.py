"""The live-web registry: every site, plus DNS, behind one fetch API.

:class:`LiveWeb` implements the :class:`~repro.net.fetch.OriginServer`
protocol, owns the :class:`~repro.net.dns.DnsTable`, and hands out
:class:`~repro.net.fetch.Fetcher` instances. All simulation components
— the study's probes, IABot's checks, the archive's crawlers — observe
the web exclusively through fetches, never by peeking at ``Site``
internals, which keeps the measurement honest.
"""

from __future__ import annotations

import hashlib

from ..clock import SimTime
from ..errors import NetworkSimError
from ..net.dns import DnsRecord, DnsTable
from ..net.fetch import Fetcher, FetchResult
from ..net.http import HttpRequest, HttpResponse
from .site import Site


def _request_nonce(address: str, request: HttpRequest, at: SimTime) -> int:
    """A deterministic nonce for one (address, url, day) request."""
    digest = hashlib.sha256(
        f"{address}|{request.url}|{int(at.days)}".encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:8], "big")


class LiveWeb:
    """Registry of sites addressable by DNS.

    A site's address in the DNS table is ``site:<hostname>`` (or
    ``parked:<hostname>`` for squatter re-registrations), mapping to a
    :class:`~repro.web.site.Site` instance here.
    """

    def __init__(self) -> None:
        self.dns = DnsTable()
        self._sites: dict[str, Site] = {}

    # -- registration -----------------------------------------------------------

    def add_site(self, site: Site, extra_hostnames: tuple[str, ...] = ()) -> None:
        """Register a site and its DNS interval(s).

        ``extra_hostnames`` lets several hostnames (e.g. with and
        without ``www.``) resolve to the same site.
        """
        address = f"site:{site.hostname}"
        if address in self._sites:
            raise NetworkSimError(f"site {site.hostname!r} already registered")
        self._sites[address] = site
        for hostname in (site.hostname, *extra_hostnames):
            self.dns.register(
                DnsRecord(
                    hostname=hostname,
                    address=address,
                    registered_at=site.created_at,
                    expires_at=site.dns_dies_at,
                )
            )

    def add_parked_successor(self, original: Site, parked: Site) -> None:
        """Register a squatter's site on a lapsed hostname.

        The parked site's DNS interval must start at or after the
        original's expiry (the DNS table enforces non-overlap).
        """
        if original.dns_dies_at is None:
            raise NetworkSimError(
                f"{original.hostname!r} never expires; cannot be re-registered"
            )
        address = f"parked:{parked.hostname}"
        if address in self._sites:
            raise NetworkSimError(
                f"parked site {parked.hostname!r} already registered"
            )
        self._sites[address] = parked
        self.dns.register(
            DnsRecord(
                hostname=parked.hostname,
                address=address,
                registered_at=parked.created_at,
                expires_at=parked.dns_dies_at,
            )
        )

    # -- lookup ----------------------------------------------------------------------

    def sites(self) -> tuple[Site, ...]:
        """All registered sites (including parked successors)."""
        return tuple(self._sites.values())

    def site_by_hostname(self, hostname: str) -> Site | None:
        """The original (non-parked) site for a hostname, if any."""
        return self._sites.get(f"site:{hostname.lower()}")

    # -- OriginServer protocol ----------------------------------------------------------

    def handle(self, address: str, request: HttpRequest, at: SimTime) -> HttpResponse:
        """Serve one GET; called by the fetcher after DNS resolution.

        The per-response dynamic-noise nonce is derived from the
        request itself rather than drawn from a shared counter, so a
        fetch is a pure function of ``(url, at)`` — the property the
        executor's fetch memo and sharded workers both rely on. Fetches
        of *different* URLs (or on different days) still get distinct
        noise tokens, which is all the soft-404 machinery needs.
        """
        site = self._sites.get(address)
        if site is None:
            raise NetworkSimError(f"DNS points at unknown address {address!r}")
        return site.respond(request, at, _request_nonce(address, request, at))

    # -- convenience -----------------------------------------------------------------------

    def fetcher(self, max_redirects: int = 10) -> Fetcher:
        """A redirect-following GET client over this web."""
        return Fetcher(self.dns, self, max_redirects=max_redirects)

    def fetch(self, url: str, at: SimTime) -> FetchResult:
        """One-off fetch without keeping a fetcher around."""
        return self.fetcher().fetch(url, at)
