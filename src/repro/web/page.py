"""Page lifecycle model.

A page is identified by its path-and-query relative to its site. Its
observable behaviour depends on simulated time:

- before ``created_at`` (or always, for ``NEVER_EXISTED``): the site's
  missing-page policy applies;
- between ``created_at`` and ``died_at``: the page serves 200 with its
  article content;
- after ``died_at``: a ``DELETED`` page falls back to the missing-page
  policy; a ``MOVED`` page does too *until* ``redirect_added_at``,
  after which the server issues a 301 to the page's new URL.

The MOVED-with-late-redirect case is the mechanism behind the paper's
§3 finding that 3% of "permanently dead" links work again: IABot
checked during the window where the old URL errored, but by March 2022
the site had added the redirect.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..clock import SimTime


class PageFate(enum.Enum):
    """How a page's life ends (or fails to start)."""

    ALIVE = "alive"                  # still serving at the end of time
    DELETED = "deleted"              # removed; old URL errors forever
    MOVED = "moved"                  # relocated; redirect may appear later
    NEVER_EXISTED = "never_existed"  # the URL was a typo from day one


class PageStatus(enum.Enum):
    """What the server should do for this page at a given instant."""

    SERVES = "serves"          # 200 with article content
    MISSING = "missing"        # apply the site's missing-page policy
    REDIRECTS = "redirects"    # 301 to ``moved_to``


@dataclass(frozen=True, slots=True)
class Page:
    """One page's immutable lifecycle description.

    Attributes:
        path_query: path plus optional ``?query``, e.g.
            ``/news/2011/story.html`` or ``/view.php?id=42``.
        created_at: when the page first went live (meaningless for
            ``NEVER_EXISTED``).
        fate: how the lifecycle ends.
        died_at: when the page stopped serving (required for DELETED
            and MOVED).
        moved_to: absolute URL of the new location (MOVED only).
        redirect_added_at: when the site wired up the old-to-new
            redirect; ``None`` means it never did.
        redirect_removed_at: when a later restructuring dropped that
            redirect again (afterwards the old URL errors like any
            missing page). This is how a URL can have valid archived
            3xx copies (§4.2) yet be dead at both IABot's check and
            the study probe.
        revived_at: for DELETED pages, when the site restored the page
            at its original URL (the other way a "permanently dead"
            link comes back to life, §3); ``None`` means never.
    """

    path_query: str
    created_at: SimTime
    fate: PageFate = PageFate.ALIVE
    died_at: SimTime | None = None
    moved_to: str | None = None
    redirect_added_at: SimTime | None = None
    redirect_removed_at: SimTime | None = None
    revived_at: SimTime | None = None

    def __post_init__(self) -> None:
        if not self.path_query.startswith("/"):
            raise ValueError(f"path_query must start with '/': {self.path_query!r}")
        if self.fate in (PageFate.DELETED, PageFate.MOVED) and self.died_at is None:
            raise ValueError(f"{self.fate} requires died_at")
        if self.fate is PageFate.MOVED and not self.moved_to:
            raise ValueError("MOVED requires moved_to")
        if (
            self.redirect_added_at is not None
            and self.died_at is not None
            and self.redirect_added_at < self.died_at
        ):
            raise ValueError("redirect_added_at must not precede died_at")
        if self.revived_at is not None:
            if self.fate is not PageFate.DELETED:
                raise ValueError("revived_at only applies to DELETED pages")
            if self.died_at is not None and self.revived_at < self.died_at:
                raise ValueError("revived_at must not precede died_at")
        if self.redirect_removed_at is not None:
            if self.redirect_added_at is None:
                raise ValueError("redirect_removed_at needs redirect_added_at")
            if self.redirect_removed_at < self.redirect_added_at:
                raise ValueError("redirect cannot be removed before it is added")

    def status_at(self, at: SimTime) -> PageStatus:
        """The page's behaviour at instant ``at``."""
        if self.fate is PageFate.NEVER_EXISTED:
            return PageStatus.MISSING
        if at < self.created_at:
            return PageStatus.MISSING
        if self.fate is PageFate.ALIVE:
            return PageStatus.SERVES
        assert self.died_at is not None
        if at < self.died_at:
            return PageStatus.SERVES
        if (
            self.fate is PageFate.MOVED
            and self.redirect_added_at is not None
            and not at < self.redirect_added_at
            and (self.redirect_removed_at is None or at < self.redirect_removed_at)
        ):
            return PageStatus.REDIRECTS
        if (
            self.fate is PageFate.DELETED
            and self.revived_at is not None
            and not at < self.revived_at
        ):
            return PageStatus.SERVES
        return PageStatus.MISSING

    def alive_at(self, at: SimTime) -> bool:
        """Whether a GET at ``at`` would serve the original content."""
        return self.status_at(at) is PageStatus.SERVES

    def working_interval(self) -> tuple[SimTime, SimTime | None] | None:
        """[start, end) during which the page served 200, or None.

        ``end`` of ``None`` means it never stopped serving.
        """
        if self.fate is PageFate.NEVER_EXISTED:
            return None
        return (self.created_at, self.died_at)
