"""The simulated live web.

Sites own directory trees of pages; pages have lifecycles (created,
moved, deleted, never-existed); sites have fates of their own
(abandoned DNS, parked by a squatter, geo-blocked, flaky). The
:class:`~repro.web.world.LiveWeb` registry serves HTTP requests at any
simulated instant, so the same URL can be alive in 2009, a 404 in 2016,
and a 301 to its new home in 2022 — exactly the temporal structure the
paper's findings hinge on.
"""

from .behaviors import MissingPagePolicy, SiteState
from .page import Page, PageFate
from .site import Site
from .world import LiveWeb

__all__ = [
    "LiveWeb",
    "MissingPagePolicy",
    "Page",
    "PageFate",
    "Site",
    "SiteState",
]
