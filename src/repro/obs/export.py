"""Metrics exposition: Prometheus text, JSON snapshots, and diffs.

A :class:`~repro.obs.metrics.MetricsRegistry` is an in-process object;
this module is how its contents leave the process in formats the rest
of the observability world speaks:

- :func:`prometheus_text` — the Prometheus/OpenMetrics text format
  (``# TYPE`` headers, ``_total`` counter suffix, cumulative
  ``_bucket{le="…"}`` histogram series with OpenMetrics-style
  exemplar annotations). Per-replica families published by
  :meth:`~repro.obs.metrics.MetricsRegistry.merge_prefixed` render as
  their own sanitized families (``service_replica_s0r1_…``) next to
  the fleet rollup.
- :func:`render_json` — a canonical, byte-stable JSON snapshot
  (sorted keys, compact separators) of the same data.
- :func:`diff_snapshots` / :func:`render_diff` — exact deltas between
  two snapshots: what a new index version, a chaos arm, or a config
  change did to every counter, gauge, and histogram. Counters and
  histogram buckets subtract; gauges report (before, after).

Everything is deterministic: the same registry state renders to the
same bytes, which is what lets tests pin exposition output and lets a
snapshot diff between two seeded runs be meaningful at all.
"""

from __future__ import annotations

import json
import re

from .metrics import MetricsRegistry

__all__ = [
    "diff_snapshots",
    "prometheus_text",
    "render_diff",
    "render_json",
    "sanitize_metric_name",
]

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def sanitize_metric_name(name: str) -> str:
    """Map a registry name onto the Prometheus grammar.

    Dots (the registry's namespace separator) and any other illegal
    characters become underscores; a leading digit gets a guard
    underscore. The map is stable, so equal registry names always
    collide with themselves and never with a distinct sanitized name
    in practice (registry names are dot-and-word only).
    """
    sanitized = _NAME_RE.sub("_", name)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def _format_value(value: float) -> str:
    """Prometheus sample value: integers render bare, floats as repr."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _format_bound(bound: float) -> str:
    return _format_value(float(bound))


def _exemplar_annotation(exemplar: dict) -> str:
    """OpenMetrics exemplar suffix for one bucket sample line."""
    labels = f'key="{exemplar["key"]}"'
    if "at_ms" in exemplar:
        labels += f',at_ms="{_format_value(float(exemplar["at_ms"]))}"'
    return f" # {{{labels}}} {_format_value(float(exemplar['value']))}"


def prometheus_text(
    source: MetricsRegistry | dict, exemplars: bool = True
) -> str:
    """Render a registry (or a snapshot dict) as Prometheus text.

    Families are sorted by sanitized name; counters get the
    conventional ``_total`` suffix; histograms render cumulative
    ``le`` buckets plus ``_sum``/``_count``. With ``exemplars`` (the
    default), each bucket that retained exemplars carries its
    rank-first exemplar as an OpenMetrics annotation — the link from
    a latency bucket back to a concrete request id.
    """
    snapshot = source.snapshot() if isinstance(source, MetricsRegistry) else source
    lines: list[str] = []

    for name, value in sorted(
        snapshot.get("counters", {}).items(),
        key=lambda item: sanitize_metric_name(item[0]),
    ):
        family = sanitize_metric_name(name) + "_total"
        lines.append(f"# TYPE {family} counter")
        lines.append(f"{family} {_format_value(value)}")

    for name, value in sorted(
        snapshot.get("gauges", {}).items(),
        key=lambda item: sanitize_metric_name(item[0]),
    ):
        family = sanitize_metric_name(name)
        lines.append(f"# TYPE {family} gauge")
        lines.append(f"{family} {_format_value(value)}")

    for name, data in sorted(
        snapshot.get("histograms", {}).items(),
        key=lambda item: sanitize_metric_name(item[0]),
    ):
        family = sanitize_metric_name(name)
        lines.append(f"# TYPE {family} histogram")
        bounds = list(data["bounds"])
        counts = list(data["counts"])
        kept = data.get("exemplars", {}) if exemplars else {}
        cumulative = 0
        for index, count in enumerate(counts):
            cumulative += count
            le = (
                _format_bound(bounds[index])
                if index < len(bounds)
                else "+Inf"
            )
            line = f'{family}_bucket{{le="{le}"}} {cumulative}'
            bucket_exemplars = kept.get(str(index), ())
            if bucket_exemplars:
                line += _exemplar_annotation(bucket_exemplars[0])
            lines.append(line)
        lines.append(f"{family}_sum {_format_value(data['sum'])}")
        lines.append(f"{family}_count {data['count']}")

    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def render_json(source: MetricsRegistry | dict) -> str:
    """Canonical JSON snapshot: sorted keys, compact, newline-final.

    Byte-stable for equal registry state — two seeded runs diff
    empty, and a file of this is what :func:`diff_snapshots` eats.
    """
    snapshot = source.snapshot() if isinstance(source, MetricsRegistry) else source
    return (
        json.dumps(snapshot, sort_keys=True, separators=(",", ":")) + "\n"
    )


def diff_snapshots(before: dict, after: dict) -> dict:
    """Exact instrument-level deltas between two snapshots.

    Returns only what moved:

    - ``counters``: name → after − before (new counters diff from 0);
    - ``gauges``: name → ``[before, after]`` where the value changed
      (absent-before renders as ``None``);
    - ``histograms``: name → per-bucket count deltas plus count/sum
      deltas, or ``{"bounds_changed": [...]}`` when the bucket layout
      itself changed between versions (bounds are identity — a
      numeric diff across different bounds would be a lie).
    """
    diff: dict = {"counters": {}, "gauges": {}, "histograms": {}}

    before_counters = before.get("counters", {})
    after_counters = after.get("counters", {})
    for name in sorted(set(before_counters) | set(after_counters)):
        delta = after_counters.get(name, 0.0) - before_counters.get(name, 0.0)
        if delta:
            diff["counters"][name] = delta

    before_gauges = before.get("gauges", {})
    after_gauges = after.get("gauges", {})
    for name in sorted(set(before_gauges) | set(after_gauges)):
        old = before_gauges.get(name)
        new = after_gauges.get(name)
        if old != new:
            diff["gauges"][name] = [old, new]

    before_hists = before.get("histograms", {})
    after_hists = after.get("histograms", {})
    for name in sorted(set(before_hists) | set(after_hists)):
        old = before_hists.get(name)
        new = after_hists.get(name)
        if old is None or new is None:
            present = new if old is None else old
            empty = {
                "bounds": present["bounds"],
                "counts": [0] * len(present["counts"]),
                "count": 0,
                "sum": 0.0,
            }
            old = old or empty
            new = new or empty
        if list(old["bounds"]) != list(new["bounds"]):
            diff["histograms"][name] = {
                "bounds_changed": [list(old["bounds"]), list(new["bounds"])]
            }
            continue
        bucket_deltas = [
            int(b) - int(a) for a, b in zip(old["counts"], new["counts"])
        ]
        count_delta = new["count"] - old["count"]
        sum_delta = new["sum"] - old["sum"]
        if count_delta or sum_delta or any(bucket_deltas):
            diff["histograms"][name] = {
                "counts": bucket_deltas,
                "count": count_delta,
                "sum": sum_delta,
            }

    return diff


def render_diff(diff: dict) -> str:
    """Human-readable rendering of :func:`diff_snapshots` output."""
    lines: list[str] = []
    counters = diff.get("counters", {})
    if counters:
        lines.append("counters:")
        for name, delta in counters.items():
            lines.append(f"  {name:<44} {delta:+g}")
    gauges = diff.get("gauges", {})
    if gauges:
        lines.append("gauges:")
        for name, (old, new) in gauges.items():
            lines.append(f"  {name:<44} {old} -> {new}")
    histograms = diff.get("histograms", {})
    if histograms:
        lines.append("histograms:")
        for name, data in histograms.items():
            if "bounds_changed" in data:
                lines.append(f"  {name:<44} (bucket bounds changed)")
            else:
                lines.append(
                    f"  {name:<44} count {data['count']:+d}, "
                    f"sum {data['sum']:+g}"
                )
    if not lines:
        return "(no differences)"
    return "\n".join(lines)
