"""Per-record provenance: why did this URL land in its bucket, at what cost?

Link-rot studies hinge on per-URL outcome attribution — every sampled
link's Figure-4 bucket should be auditable back to the backend traffic
that produced it. :class:`RecordProvenance` is that audit record: the
stage attaches one to every
:class:`~repro.exec.worker.RecordOutcome`, carrying the record's trace
span id (when tracing is on), its wall cost, and the *deltas* of
fetch/CDX/retry activity its stage incurred.

Deltas are measured with :func:`backend_snapshot` before/after the
stage, read duck-typed off whatever backend stack is in play (raw
:class:`~repro.net.fetch.Fetcher`, caching wrappers, fault injectors)
— backends that do not expose a counter simply contribute zero.

Caveat: cache-hit/miss splits are execution-shape-dependent (a shard's
private memo misses where a serial run's shared memo hits), so
per-record ``backend_*`` counts may differ between serial and parallel
runs of the same study. The *issued* counts and the bucket are
shape-independent.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class BackendSnapshot:
    """Point-in-time reading of a (fetcher, cdx) pair's counters."""

    fetches: int = 0
    backend_fetches: int = 0
    cdx_queries: int = 0
    backend_cdx_queries: int = 0
    retries: int = 0
    backoff_ms: float = 0.0


def _retry_reading(client) -> tuple[int, float]:
    counters = getattr(client, "retry_counters", None)
    if counters is None:
        return 0, 0.0
    return counters.retries, counters.backoff_ms


def backend_snapshot(fetcher, cdx) -> BackendSnapshot:
    """Read the current counters off a fetch backend and a CDX backend.

    Works for raw backends (``fetch_count`` / ``query_count``) and the
    caching wrappers (whose ``misses`` refine "reached the backend");
    anything without a counter reads as zero.
    """
    fetches = int(getattr(fetcher, "fetch_count", 0))
    fetch_misses = getattr(fetcher, "misses", None)
    cdx_queries = int(getattr(cdx, "query_count", 0))
    cdx_misses = getattr(cdx, "misses", None)
    f_retries, f_backoff = _retry_reading(fetcher)
    c_retries, c_backoff = _retry_reading(cdx)
    return BackendSnapshot(
        fetches=fetches,
        backend_fetches=int(
            fetch_misses if fetch_misses is not None else fetches
        ),
        cdx_queries=cdx_queries,
        backend_cdx_queries=int(
            cdx_misses if cdx_misses is not None else cdx_queries
        ),
        retries=f_retries + c_retries,
        backoff_ms=f_backoff + c_backoff,
    )


@dataclass(frozen=True, slots=True)
class RecordProvenance:
    """The audit trail of one record's trip through the sharded stage.

    Attributes:
        url: the record's URL.
        bucket: the Figure-4 outcome bucket the probe landed in.
        span_id: the record's trace span id (``None`` when untraced).
        wall_seconds: wall time the record's stage took.
        fetches / backend_fetches: live-web fetches issued / past the
            memo during this record's stage.
        cdx_queries / backend_cdx_queries: likewise for CDX queries.
        retries: transient-failure retries spent on this record.
        backoff_ms: virtual backoff booked on this record.
    """

    url: str
    bucket: str
    span_id: str | None = None
    wall_seconds: float = 0.0
    fetches: int = 0
    backend_fetches: int = 0
    cdx_queries: int = 0
    backend_cdx_queries: int = 0
    retries: int = 0
    backoff_ms: float = 0.0

    @classmethod
    def from_deltas(
        cls,
        url: str,
        bucket: str,
        before: BackendSnapshot,
        after: BackendSnapshot,
        span_id: str | None = None,
        wall_seconds: float = 0.0,
    ) -> "RecordProvenance":
        """Build provenance from a before/after counter pair."""
        return cls(
            url=url,
            bucket=bucket,
            span_id=span_id,
            wall_seconds=wall_seconds,
            fetches=after.fetches - before.fetches,
            backend_fetches=after.backend_fetches - before.backend_fetches,
            cdx_queries=after.cdx_queries - before.cdx_queries,
            backend_cdx_queries=(
                after.backend_cdx_queries - before.backend_cdx_queries
            ),
            retries=after.retries - before.retries,
            backoff_ms=after.backoff_ms - before.backoff_ms,
        )


__all__ = ["BackendSnapshot", "RecordProvenance", "backend_snapshot"]
