"""Span-based structured tracing for the study pipeline.

A :class:`Tracer` records a tree of :class:`Span`\\ s — study → phase →
shard → record → backend call — and serializes them to an append-only
JSONL event log (one finished span per line). Spans carry both clocks
the simulation cares about:

- **wall clock**: an epoch timestamp at span start plus a
  ``perf_counter``-measured duration;
- **virtual clock**: the :class:`~repro.clock.SimTime` instant the
  operation ran at (``sim_days``) and any *virtual* milliseconds it
  accounted (``virtual_ms`` — backoff delays, availability latency
  draws — time a real client would have spent that the simulation
  only books).

Tracing is strictly opt-in: every hook in the pipeline takes
``tracer=None`` and skips all span work when it is absent, so the
untraced hot path stays untouched. Worker processes buffer spans in
their own tracer (ids namespaced by a per-shard prefix) and ship them
back inside the shard result; the parent re-parents them under its own
span tree with :meth:`Tracer.adopt` — the same buffer-then-fold motion
the metrics and retry counters use.

Span ids and wall timestamps are explicitly *not* part of any
equivalence contract: a serial and a parallel run of the same seeded
study produce the same aggregate metrics and byte-identical reports,
but their span trees differ in ids, interleaving, and wall durations.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Iterator

if TYPE_CHECKING:
    from ..clock import SimTime


@dataclass
class Span:
    """One traced operation: identity, position in the tree, two clocks.

    Attributes:
        span_id: tracer-unique id (string; worker tracers prefix theirs
            so adoption into the parent tree never collides).
        parent_id: enclosing span's id, or ``None`` for a root.
        name: human-readable operation name (``"probe+census"``,
            ``"record"``, ...).
        kind: machine-facing category (``"study"``, ``"phase"``,
            ``"shard"``, ``"record"``, ``"net.fetch"``,
            ``"backend.fetch"``, ``"backend.cdx"``, ``"availability"``).
        wall_start: ``time.time()`` at span entry (informational only).
        duration_s: wall duration measured with ``perf_counter``.
        sim_days: virtual instant the operation ran at, if one applies.
        virtual_ms: virtual milliseconds booked inside the span.
        attrs: free-form JSON-serializable attributes.
    """

    span_id: str
    parent_id: str | None
    name: str
    kind: str
    wall_start: float
    duration_s: float = 0.0
    sim_days: float | None = None
    virtual_ms: float = 0.0
    attrs: dict = field(default_factory=dict)

    def set(self, **attrs) -> None:
        """Attach or overwrite attributes on the live span."""
        self.attrs.update(attrs)

    def add_virtual_ms(self, ms: float) -> None:
        """Book virtual milliseconds (backoff, simulated latency)."""
        self.virtual_ms += ms

    def to_event(self) -> dict:
        """The JSONL event for this span."""
        event = {
            "span": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "kind": self.kind,
            "wall_start": self.wall_start,
            "dur_s": self.duration_s,
        }
        if self.sim_days is not None:
            event["sim_days"] = self.sim_days
        if self.virtual_ms:
            event["virtual_ms"] = self.virtual_ms
        if self.attrs:
            event["attrs"] = self.attrs
        return event

    @classmethod
    def from_event(cls, event: dict) -> "Span":
        """Rebuild a span from one parsed JSONL event."""
        return cls(
            span_id=str(event["span"]),
            parent_id=event.get("parent"),
            name=event.get("name", ""),
            kind=event.get("kind", "span"),
            wall_start=float(event.get("wall_start", 0.0)),
            duration_s=float(event.get("dur_s", 0.0)),
            sim_days=event.get("sim_days"),
            virtual_ms=float(event.get("virtual_ms", 0.0)),
            attrs=dict(event.get("attrs", {})),
        )


class Tracer:
    """Collects spans in completion order; writes them as JSONL.

    Args:
        prefix: prepended to every span id this tracer issues. Worker
            shards use ``"w{start}."`` so their ids stay unique when
            the parent adopts them.
    """

    def __init__(self, prefix: str = "") -> None:
        self._prefix = prefix
        self._issued = 0
        self._stack: list[Span] = []
        #: Finished spans, in completion order (children before parents).
        self._spans: list[Span] = []
        #: Deferred span emissions from :meth:`defer_span` — compact
        #: tuples materialized into :class:`Span` objects only when
        #: the spans are read. ``_deferred_ids`` keeps the issued id
        #: of every already-materialized deferred span so buffered
        #: parent references (absolute defer indices) stay resolvable
        #: across drains.
        self._deferred: list[tuple] = []
        self._deferred_ids: list[str] = []
        #: Callables that backfill deferred spans on first read (the
        #: serving tier registers its observation-log expansion here).
        self._pending_sources: list = []

    def add_pending_source(self, source) -> None:
        """Register a callable that emits deferred spans when the
        trace is first read (mirrors
        :meth:`MetricsRegistry.add_pending_source`)."""
        self._pending_sources.append(source)

    @property
    def spans(self) -> list[Span]:
        """Finished spans, children before parents.

        Reading this runs any registered pending sources, then
        materializes any spans buffered by :meth:`defer_span` (they
        land after the already-finished eager spans; list order is
        not part of any contract — see the module docstring).
        """
        if self._pending_sources:
            sources, self._pending_sources = self._pending_sources, []
            for source in sources:
                source()
        if self._deferred:
            self._drain()
        return self._spans

    def _new_id(self) -> str:
        self._issued += 1
        return f"{self._prefix}{self._issued}"

    def defer_span(
        self,
        name: str,
        kind: str,
        parent: "int | None" = None,
        virtual_ms: float = 0.0,
        **attrs,
    ) -> int:
        """Buffer a pre-measured span; materialize it on first read.

        The serving tier emits tens of thousands of virtual-clock
        spans per replay, and constructing :class:`Span` objects
        inline would dominate the serving loop. This is the ring-
        buffer alternative: one tuple append now, object construction
        when the trace is consumed. Returns the span's *defer index*;
        pass it as ``parent`` to a later call to parent one deferred
        span under another (``None`` parents under the innermost
        currently-open eager span). Wall duration is recorded as 0 —
        deferred spans carry virtual time, which is the only clock
        the serving tier's spans mean anything on.
        """
        index = len(self._deferred_ids) + len(self._deferred)
        self._deferred.append(
            (parent if parent is not None else self.current_id,
             name, kind, virtual_ms, attrs)
        )
        return index

    def _drain(self) -> None:
        now = time.time()
        pending, self._deferred = self._deferred, []
        ids = self._deferred_ids
        for parent, name, kind, virtual_ms, attrs in pending:
            span = Span(
                span_id=self._new_id(),
                parent_id=ids[parent] if isinstance(parent, int) else parent,
                name=name,
                kind=kind,
                wall_start=now,
                duration_s=0.0,
                virtual_ms=virtual_ms,
                attrs=attrs,
            )
            ids.append(span.span_id)
            self._spans.append(span)

    @property
    def current_id(self) -> str | None:
        """Id of the innermost open span, or None outside any span."""
        return self._stack[-1].span_id if self._stack else None

    @contextmanager
    def span(
        self,
        name: str,
        kind: str = "span",
        sim: "SimTime | None" = None,
        **attrs,
    ) -> Iterator[Span]:
        """Open a child span of whatever span is currently innermost."""
        span = Span(
            span_id=self._new_id(),
            parent_id=self.current_id,
            name=name,
            kind=kind,
            wall_start=time.time(),
            sim_days=sim.days if sim is not None else None,
            attrs=dict(attrs),
        )
        self._stack.append(span)
        start = time.perf_counter()
        try:
            yield span
        finally:
            span.duration_s = time.perf_counter() - start
            self._stack.pop()
            # Append without draining the deferred buffer: a serving
            # loop closing its root span must not pay for span
            # materialization inside the measured region.
            self._spans.append(span)

    def record_span(
        self,
        name: str,
        kind: str,
        duration_s: float,
        sim: "SimTime | None" = None,
        **attrs,
    ) -> Span:
        """Record an already-measured span (no timing of its own).

        Used when a caller has timed the operation itself (e.g.
        :meth:`StudyStats.phase <repro.exec.stats.StudyStats.phase>`)
        and the trace must carry *exactly* that figure.
        """
        span = Span(
            span_id=self._new_id(),
            parent_id=self.current_id,
            name=name,
            kind=kind,
            wall_start=time.time() - duration_s,
            duration_s=duration_s,
            sim_days=sim.days if sim is not None else None,
            attrs=dict(attrs),
        )
        if self._deferred:
            self._drain()
        self._spans.append(span)
        return span

    def adopt(
        self, spans: Iterable[Span], parent_id: str | None = None
    ) -> None:
        """Graft spans buffered by another tracer into this tree.

        Root spans (``parent_id is None``) are re-parented under
        ``parent_id`` when given, else under the currently open span.
        Non-root spans keep their internal parentage. The donor tracer
        must have used a distinct id prefix.
        """
        graft_parent = parent_id if parent_id is not None else self.current_id
        if self._deferred:
            self._drain()
        for span in spans:
            if span.parent_id is None:
                span.parent_id = graft_parent
            self._spans.append(span)

    def write_jsonl(self, path) -> int:
        """Append every collected span to ``path``; returns span count."""
        with open(path, "a", encoding="utf-8") as handle:
            for span in self.spans:
                handle.write(json.dumps(span.to_event(), sort_keys=True))
                handle.write("\n")
        return len(self.spans)


def read_jsonl(path) -> list[Span]:
    """Load every span event from a JSONL trace file."""
    spans: list[Span] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                spans.append(Span.from_event(json.loads(line)))
    return spans


__all__ = ["Span", "Tracer", "read_jsonl"]
