"""Observability for the study pipeline: tracing, metrics, provenance.

Three layers, all opt-in and all fold-exact across worker processes:

- :mod:`repro.obs.trace` — a span-based :class:`Tracer` recording the
  hierarchy study → phase → shard → record → backend call on both the
  wall clock and the simulation's virtual clock, serialized to an
  append-only JSONL event log;
- :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of counters,
  gauges, and fixed-bound histograms that
  :class:`~repro.exec.stats.StudyStats` is a thin view over; worker
  shards buffer their own registry and the executor folds them
  exactly on merge;
- :mod:`repro.obs.provenance` — a :class:`RecordProvenance` attached
  to every record outcome: span id, Figure-4 bucket, and the
  fetch/CDX/retry deltas that record cost.

``scripts/trace_report.py`` (over :mod:`repro.obs.traceview`) answers
the audit questions from the JSONL alone: top-N most expensive URLs,
failure attribution by bucket, per-phase latency histograms.
"""

from .metrics import (
    DEFAULT_LATENCY_BOUNDS_S,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .provenance import BackendSnapshot, RecordProvenance, backend_snapshot
from .trace import Span, Tracer, read_jsonl
from .traceview import (
    bucket_attribution,
    kind_counts,
    phase_latency_histograms,
    phase_totals,
    top_records,
)

__all__ = [
    "BackendSnapshot",
    "Counter",
    "DEFAULT_LATENCY_BOUNDS_S",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RecordProvenance",
    "Span",
    "Tracer",
    "backend_snapshot",
    "bucket_attribution",
    "kind_counts",
    "phase_latency_histograms",
    "phase_totals",
    "read_jsonl",
    "top_records",
]
