"""Observability for the study pipeline: tracing, metrics, provenance.

Three layers, all opt-in and all fold-exact across worker processes:

- :mod:`repro.obs.trace` — a span-based :class:`Tracer` recording the
  hierarchy study → phase → shard → record → backend call on both the
  wall clock and the simulation's virtual clock, serialized to an
  append-only JSONL event log;
- :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of counters,
  gauges, and fixed-bound histograms that
  :class:`~repro.exec.stats.StudyStats` is a thin view over; worker
  shards buffer their own registry and the executor folds them
  exactly on merge;
- :mod:`repro.obs.provenance` — a :class:`RecordProvenance` attached
  to every record outcome: span id, Figure-4 bucket, and the
  fetch/CDX/retry deltas that record cost.

The service tier adds three more, still deterministic end to end:

- :mod:`repro.obs.slo` — declarative :class:`SloSpec` objectives
  (availability / latency / shed rate) graded on the virtual clock
  with exact error-budget accounting, Google-SRE multi-window
  burn-rate alerts, and chaos budget-burn attribution over the
  service audit log;
- :class:`~repro.obs.metrics.Histogram` exemplars — a bounded,
  hash-ranked reservoir per bucket linking latency buckets back to
  concrete request/replica ids, plus
  :func:`~repro.obs.metrics.histogram_quantile` estimation;
- :mod:`repro.obs.export` — Prometheus-text and canonical-JSON
  exposition of any registry, with exact snapshot diffing.

``scripts/trace_report.py`` (over :mod:`repro.obs.traceview`) answers
the audit questions from the JSONL alone: top-N most expensive URLs,
failure attribution by bucket, per-phase latency histograms, and the
cluster's shard/replica/redispatch geometry. ``scripts/slo_report.py``
joins the audit log, trace, and metrics snapshot into SLO verdicts.
"""

from .export import (
    diff_snapshots,
    prometheus_text,
    render_diff,
    render_json,
    sanitize_metric_name,
)
from .metrics import (
    DEFAULT_EXEMPLAR_CAPACITY,
    DEFAULT_LATENCY_BOUNDS_MS,
    DEFAULT_LATENCY_BOUNDS_S,
    Counter,
    Exemplar,
    Gauge,
    Histogram,
    MetricsRegistry,
    histogram_quantile,
)
from .provenance import BackendSnapshot, RecordProvenance, backend_snapshot
from .slo import (
    DEFAULT_BURN_WINDOWS,
    DEFAULT_SERVICE_SLOS,
    SLO_KINDS,
    BurnAlert,
    BurnWindow,
    SloEvent,
    SloOutcome,
    SloReport,
    SloSpec,
    burn_attribution,
    evaluate,
    events_from_audit,
    events_from_reconfigs,
    events_from_responses,
    render_attribution,
)
from .trace import Span, Tracer, read_jsonl
from .traceview import (
    bucket_attribution,
    kind_counts,
    phase_latency_histograms,
    phase_totals,
    redispatch_attribution,
    replica_attribution,
    top_records,
)

__all__ = [
    "BackendSnapshot",
    "BurnAlert",
    "BurnWindow",
    "Counter",
    "DEFAULT_BURN_WINDOWS",
    "DEFAULT_EXEMPLAR_CAPACITY",
    "DEFAULT_LATENCY_BOUNDS_MS",
    "DEFAULT_LATENCY_BOUNDS_S",
    "DEFAULT_SERVICE_SLOS",
    "Exemplar",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RecordProvenance",
    "SLO_KINDS",
    "SloEvent",
    "SloOutcome",
    "SloReport",
    "SloSpec",
    "Span",
    "Tracer",
    "backend_snapshot",
    "bucket_attribution",
    "burn_attribution",
    "diff_snapshots",
    "evaluate",
    "events_from_audit",
    "events_from_reconfigs",
    "events_from_responses",
    "histogram_quantile",
    "kind_counts",
    "phase_latency_histograms",
    "phase_totals",
    "prometheus_text",
    "read_jsonl",
    "redispatch_attribution",
    "render_attribution",
    "render_diff",
    "render_json",
    "replica_attribution",
    "sanitize_metric_name",
    "top_records",
]
