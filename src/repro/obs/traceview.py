"""Read-side views over a JSONL trace: the questions a trace answers.

``scripts/trace_report.py`` is a thin CLI over these functions, and
the tests call them directly. Everything here consumes plain
:class:`~repro.obs.trace.Span` lists (usually from
:func:`~repro.obs.trace.read_jsonl`) and reduces them to the three
audit questions the observability layer exists for:

- :func:`phase_totals` — where did the run's wall time go, phase by
  phase (reconstructs :attr:`StudyStats.phase_seconds
  <repro.exec.stats.StudyStats.phase_seconds>` from the log alone);
- :func:`top_records` — the top-N most expensive URLs, with the
  backend traffic each one caused;
- :func:`bucket_attribution` — cost and failure attribution by
  Figure-4 bucket;
- :func:`phase_latency_histograms` — per-phase latency distributions
  of the work items (records, backend calls) each phase ran.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .metrics import DEFAULT_LATENCY_BOUNDS_S, Histogram
from .trace import Span

#: Span kinds that represent individually-timed work items.
WORK_KINDS = ("record", "backend.fetch", "backend.cdx", "net.fetch",
              "availability")


def phase_totals(spans: list[Span]) -> dict[str, float]:
    """Total wall seconds per phase name, from ``kind == "phase"`` spans.

    Repeated phase names are additive, mirroring
    ``StudyStats.phase()``; when phases were traced through the stats
    layer the totals match ``phase_seconds`` exactly.
    """
    totals: dict[str, float] = {}
    for span in spans:
        if span.kind == "phase":
            totals[span.name] = totals.get(span.name, 0.0) + span.duration_s
    return totals


@dataclass
class RecordCost:
    """One record span, flattened for ranking and attribution."""

    url: str
    bucket: str
    wall_seconds: float
    fetches: int = 0
    cdx_queries: int = 0
    retries: int = 0
    span_id: str = ""


def _record_costs(spans: list[Span]) -> list[RecordCost]:
    costs = []
    for span in spans:
        if span.kind != "record":
            continue
        attrs = span.attrs
        costs.append(
            RecordCost(
                url=str(attrs.get("url", "")),
                bucket=str(attrs.get("bucket", "?")),
                wall_seconds=span.duration_s,
                fetches=int(attrs.get("fetches", 0)),
                cdx_queries=int(attrs.get("cdx_queries", 0)),
                retries=int(attrs.get("retries", 0)),
                span_id=span.span_id,
            )
        )
    return costs


def top_records(spans: list[Span], n: int = 10) -> list[RecordCost]:
    """The N most wall-expensive records, most expensive first.

    Ties break on URL so the ranking is stable across equal-cost runs.
    """
    costs = _record_costs(spans)
    costs.sort(key=lambda c: (-c.wall_seconds, c.url))
    return costs[:n]


@dataclass
class BucketCost:
    """Aggregate cost of every record that landed in one bucket."""

    bucket: str
    records: int = 0
    wall_seconds: float = 0.0
    fetches: int = 0
    cdx_queries: int = 0
    retries: int = 0


def bucket_attribution(spans: list[Span]) -> dict[str, BucketCost]:
    """Per-Figure-4-bucket record counts and costs, sorted by count."""
    buckets: dict[str, BucketCost] = {}
    for cost in _record_costs(spans):
        agg = buckets.get(cost.bucket)
        if agg is None:
            agg = buckets[cost.bucket] = BucketCost(bucket=cost.bucket)
        agg.records += 1
        agg.wall_seconds += cost.wall_seconds
        agg.fetches += cost.fetches
        agg.cdx_queries += cost.cdx_queries
        agg.retries += cost.retries
    return dict(
        sorted(buckets.items(), key=lambda kv: (-kv[1].records, kv[0]))
    )


@dataclass
class _PhaseIndex:
    """Maps every span to the phase it (transitively) ran under."""

    by_id: dict[str, Span] = field(default_factory=dict)

    @classmethod
    def build(cls, spans: list[Span]) -> "_PhaseIndex":
        return cls(by_id={span.span_id: span for span in spans})

    def phase_of(self, span: Span) -> str | None:
        seen = 0
        current: Span | None = span
        while current is not None and seen < 64:
            if current.kind == "phase":
                return current.name
            parent = current.parent_id
            current = self.by_id.get(parent) if parent else None
            seen += 1
        return None


def phase_latency_histograms(
    spans: list[Span],
    kinds: tuple[str, ...] = WORK_KINDS,
    bounds: tuple[float, ...] = DEFAULT_LATENCY_BOUNDS_S,
) -> dict[str, Histogram]:
    """Per-phase latency histograms of the work items under each phase.

    Work items (``kinds``) are attributed to their nearest enclosing
    phase span; items outside any phase land under ``"(no phase)"``.
    """
    index = _PhaseIndex.build(spans)
    histograms: dict[str, Histogram] = {}
    for span in spans:
        if span.kind not in kinds:
            continue
        phase = index.phase_of(span) or "(no phase)"
        histogram = histograms.get(phase)
        if histogram is None:
            histogram = histograms[phase] = Histogram(phase, bounds)
        histogram.observe(span.duration_s)
    return histograms


def kind_counts(spans: list[Span]) -> dict[str, int]:
    """How many spans of each kind the trace holds, sorted by kind."""
    counts: dict[str, int] = {}
    for span in spans:
        counts[span.kind] = counts.get(span.kind, 0) + 1
    return dict(sorted(counts.items()))


# -- cluster views ----------------------------------------------------------------


@dataclass
class ReplicaCost:
    """One replica's serving traffic, read back from request spans."""

    replica: str
    shard: str = ""
    requests: int = 0
    carriers: int = 0
    riders: int = 0
    sheds: int = 0
    virtual_ms: float = 0.0


def replica_attribution(spans: list[Span]) -> dict[str, ReplicaCost]:
    """Per-replica request counts and virtual latency, from
    ``service.request`` spans.

    Carrier spans carry both ``shard`` and ``replica`` attrs; rider
    (coalesced) spans carry only ``replica``, so each replica's shard
    is learned from its carriers. Front-door sheds have neither and
    aggregate under the pseudo-replica ``"(front door)"``. Returns an
    empty dict for single-node traces (no replica-tagged spans), which
    is how callers detect there is no cluster section to render.
    """
    replicas: dict[str, ReplicaCost] = {}
    tagged = False

    def row(replica: str) -> ReplicaCost:
        cost = replicas.get(replica)
        if cost is None:
            cost = replicas[replica] = ReplicaCost(replica=replica)
        return cost

    for span in spans:
        if span.kind != "service.request":
            continue
        attrs = span.attrs
        replica = str(attrs.get("replica", ""))
        if replica:
            tagged = True
            cost = row(replica)
            shard = str(attrs.get("shard", ""))
            if shard:
                cost.shard = shard
            cost.requests += 1
            if attrs.get("coalesced"):
                cost.riders += 1
            else:
                cost.carriers += 1
            cost.virtual_ms += span.virtual_ms
        elif attrs.get("shed"):
            cost = row("(front door)")
            cost.requests += 1
            cost.sheds += 1
    if not tagged:
        return {}
    return dict(sorted(replicas.items()))


def redispatch_attribution(
    spans: list[Span],
) -> dict[tuple[str, str], int]:
    """Forced re-dispatch counts per (replica, fault channel), from
    ``service.redispatch`` spans — the trace-side mirror of the audit
    log's blame trail."""
    counts: dict[tuple[str, str], int] = {}
    for span in spans:
        if span.kind != "service.redispatch":
            continue
        key = (
            str(span.attrs.get("replica", "?")),
            str(span.attrs.get("channel", "?")),
        )
        counts[key] = counts.get(key, 0) + 1
    return dict(sorted(counts.items()))


__all__ = [
    "BucketCost",
    "RecordCost",
    "ReplicaCost",
    "WORK_KINDS",
    "bucket_attribution",
    "kind_counts",
    "phase_latency_histograms",
    "phase_totals",
    "redispatch_attribution",
    "replica_attribution",
    "top_records",
]
