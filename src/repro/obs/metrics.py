"""A small, exact, fold-friendly metrics registry.

The study pipeline runs the same logical work whether it executes
serially or sharded across worker processes, and its accounting must
say so: every counter in this module folds by plain addition, every
histogram by bucket-wise addition, so a parent process can merge the
registries its workers buffered and end up with *exactly* the numbers
a serial run would have produced (for shape-independent metrics) or
exactly the sum of what every process did (for shape-dependent ones).

Three instrument types:

- :class:`Counter` — a monotonically increasing float total;
- :class:`Gauge` — a last-written value (worker counts, shard wall
  extrema — things that are *states*, not totals);
- :class:`Histogram` — fixed, deterministic bucket bounds chosen at
  registration time, so two processes observing into histograms of the
  same name always produce mergeable bucket vectors.

Nothing here is thread-safe by design: each process owns its registry
and folding happens at well-defined merge points (the executor's
shard-result loop), mirroring how the retry-counter deltas already
flow.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_left
from dataclasses import dataclass, field
from math import ceil

#: Default histogram bounds for wall-clock latencies, in seconds.
#: Roughly logarithmic from 0.5 ms to 30 s — wide enough for a single
#: record stage at the bottom and a full study phase at the top.
DEFAULT_LATENCY_BOUNDS_S: tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)

#: Default histogram bounds for *virtual* service latencies, in
#: milliseconds. Dense through the single-digit-ms range one index
#: lookup lives in (base cost ~4 ms × a [0.5, 1.5) key multiplier plus
#: a ≤2 ms batch wait), so service-tier p50 and p99 resolve to
#: different buckets instead of all landing in one coarse
#: seconds-scale bin; logarithmic above that out to the overload and
#: chaos tails.
DEFAULT_LATENCY_BOUNDS_MS: tuple[float, ...] = (
    0.25, 0.5, 1.0, 2.0, 3.0, 4.0, 5.0, 6.5, 8.0, 10.0, 15.0, 25.0,
    50.0, 100.0, 250.0, 500.0, 1_000.0, 2_500.0, 10_000.0,
)

#: How many exemplars each histogram bucket retains by default.
DEFAULT_EXEMPLAR_CAPACITY = 2

_RANK_DENOM = float(2**64)


@dataclass(frozen=True, slots=True)
class Exemplar:
    """One concrete observation a histogram bucket can point back to.

    Exemplars link a latency bucket to the request / trace / replica
    that produced one of its observations (``key`` is a free-form
    identity string like ``"rid=1024|replica=s0r1"``). Retention is a
    **deterministic, hash-keyed reservoir**: each bucket keeps the
    ``exemplar_capacity`` exemplars whose ``rank`` — a pure hash of
    ``key`` — is smallest. No wall clock, no RNG, no arrival-order
    dependence: the same observation set produces the same exemplar
    set in any order, and merging histograms is a union-then-trim that
    commutes exactly (the same property the bucket counts have).
    """

    value: float
    key: str
    at_ms: float | None = None
    #: The reservoir priority: a pure uniform hash of ``key``,
    #: computed once at construction (it is consulted on every
    #: reservoir comparison, so recomputing the digest per access
    #: would dominate the retention cost).
    rank: float = field(init=False, compare=False, repr=False, default=0.0)

    def __post_init__(self) -> None:
        digest = hashlib.sha256(self.key.encode("utf-8")).digest()
        object.__setattr__(
            self, "rank", int.from_bytes(digest[:8], "big") / _RANK_DENOM
        )

    def to_dict(self) -> dict:
        """JSON-ready rendering (snapshot / exposition formats)."""
        event: dict = {"value": self.value, "key": self.key}
        if self.at_ms is not None:
            event["at_ms"] = self.at_ms
        return event


def _sort_key(exemplar: Exemplar) -> tuple:
    return (exemplar.rank, exemplar.key, exemplar.value)


def histogram_quantile(
    bounds: tuple[float, ...] | list[float],
    counts: list[int] | tuple[int, ...],
    q: float,
) -> float:
    """Estimate the ``q``-quantile from fixed-bound bucket counts.

    The Prometheus ``histogram_quantile`` estimator, exactly: find the
    bucket holding the ceil-ranked observation and interpolate
    linearly inside it (the first bucket's lower edge is 0 — latency
    histograms have no negative mass). Observations in the overflow
    bucket clamp to the last bound: the histogram cannot resolve
    beyond it. Works on live :class:`Histogram` state and on plain
    snapshot data alike, which is how the SLO reporter estimates
    percentiles from an exported metrics file.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q!r}")
    total = sum(counts)
    if total == 0:
        return 0.0
    rank = max(1, ceil(q * total))
    cumulative = 0
    for index, count in enumerate(counts):
        previous = cumulative
        cumulative += count
        if cumulative >= rank:
            if index >= len(bounds):
                return float(bounds[-1])
            lower = float(bounds[index - 1]) if index > 0 else 0.0
            upper = float(bounds[index])
            return lower + (upper - lower) * (rank - previous) / count
    return float(bounds[-1])


@dataclass
class Counter:
    """A named, add-only total. Folds across processes by summation."""

    name: str
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (may be fractional, e.g. seconds)."""
        self.value += amount

    @property
    def int_value(self) -> int:
        """The value as an int, for counters that only ever count."""
        return int(self.value)


@dataclass
class Gauge:
    """A named last-written value. Merging keeps the incoming value."""

    name: str
    value: float = 0.0

    def set(self, value: float) -> None:
        """Overwrite the gauge."""
        self.value = float(value)


@dataclass
class Histogram:
    """Fixed-bound histogram; bucket ``i`` counts values ``<= bounds[i]``.

    The final bucket (index ``len(bounds)``) is the overflow bucket.
    Bounds are part of the histogram's identity: merging histograms
    with different bounds is a registration error, not a runtime
    guess, which is what keeps cross-process folds exact.
    """

    name: str
    bounds: tuple[float, ...] = DEFAULT_LATENCY_BOUNDS_S
    counts: list[int] = field(default_factory=list)
    count: int = 0
    sum: float = 0.0
    #: Backing store for :attr:`exemplars` — read through the
    #: property, which folds in buffered offers first.
    _exemplars: dict[int, list[Exemplar]] = field(
        default_factory=dict, repr=False, compare=False
    )
    exemplar_capacity: int = DEFAULT_EXEMPLAR_CAPACITY
    #: Deferred exemplar offers: (value, key, at_ms) tuples buffered
    #: by :meth:`observe` and folded into the reservoirs lazily by
    #: :meth:`flush_exemplars`. Tagging an observation on the serving
    #: hot path then costs one tuple append; the hash ranking and
    #: reservoir trim run when the exemplars are *read* (snapshot,
    #: merge, exposition), off the measured path.
    _pending_exemplars: list[tuple] = field(
        default_factory=list, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if not self.counts:
            self.counts = [0] * (len(self.bounds) + 1)

    @property
    def exemplars(self) -> dict[int, list[Exemplar]]:
        """Per-bucket exemplar reservoirs (bucket index -> kept
        exemplars, sorted by rank). Reading folds in any buffered
        offers, so callers always see the converged reservoir."""
        if self._pending_exemplars:
            self.flush_exemplars()
        return self._exemplars

    def observe(
        self,
        value: float,
        exemplar: str | None = None,
        at_ms: float | None = None,
    ) -> None:
        """Record one observation, optionally tagged with an exemplar.

        ``exemplar`` is the identity string the bucket should point
        back to (request id, trace id, replica); ``at_ms`` is the
        virtual instant, when one applies. Retention is the
        deterministic hash reservoir documented on :class:`Exemplar`;
        the offer is buffered and folded in lazily, so reading
        exemplar state goes through :meth:`flush_exemplars` (which
        every consumer — snapshot, merge, exposition — calls).
        """
        bucket = bisect_left(self.bounds, value)
        self.counts[bucket] += 1
        self.count += 1
        self.sum += value
        if exemplar is not None:
            self._pending_exemplars.append((value, exemplar, at_ms))

    def offer_exemplar(
        self, value: float, key: str, at_ms: float | None = None
    ) -> None:
        """Offer an exemplar for an observation already counted.

        The serving tier counts observations inline but attributes
        them (request id, replica) in a deferred pass; this is that
        pass's entry point — it buffers the offer exactly like
        :meth:`observe` with ``exemplar=`` does, without touching the
        bucket counts again.
        """
        self._pending_exemplars.append((value, key, at_ms))

    def flush_exemplars(self) -> None:
        """Fold every buffered exemplar offer into the reservoirs.

        The reservoir is order-independent (smallest hash ranks win),
        so deferral never changes the retained set — only when the
        ranking work happens.
        """
        if not self._pending_exemplars:
            return
        pending, self._pending_exemplars = self._pending_exemplars, []
        bounds = self.bounds
        for value, key, at_ms in pending:
            self._offer_exemplar(
                bisect_left(bounds, value),
                Exemplar(value=value, key=key, at_ms=at_ms),
            )

    def _offer_exemplar(self, bucket: int, candidate: Exemplar) -> None:
        reservoir = self._exemplars.get(bucket)
        if reservoir is None:
            reservoir = self._exemplars[bucket] = []
        elif len(reservoir) >= self.exemplar_capacity and _sort_key(
            candidate
        ) >= _sort_key(reservoir[-1]):
            return
        reservoir.append(candidate)
        reservoir.sort(key=_sort_key)
        del reservoir[self.exemplar_capacity:]

    @property
    def mean(self) -> float:
        """Mean observation (0.0 when empty)."""
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (see :func:`histogram_quantile`)."""
        return histogram_quantile(self.bounds, self.counts, q)

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram of the same shape into this one."""
        if other.bounds != self.bounds:
            raise ValueError(
                f"histogram {self.name!r}: cannot merge bounds "
                f"{other.bounds!r} into {self.bounds!r}"
            )
        for index, count in enumerate(other.counts):
            self.counts[index] += count
        self.count += other.count
        self.sum += other.sum
        self.flush_exemplars()
        other.flush_exemplars()
        for bucket, incoming in other.exemplars.items():
            for candidate in incoming:
                self._offer_exemplar(bucket, candidate)


class MetricsRegistry:
    """All of one process's instruments, created on first touch.

    ``counter(name)`` / ``gauge(name)`` / ``histogram(name)`` return
    the live instrument (creating it if needed), so call sites never
    pre-register. :meth:`merge` folds another registry in exactly;
    :meth:`snapshot` renders plain JSON-ready data.
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        #: Deferred-telemetry hooks (see :meth:`add_pending_source`).
        self._pending_sources: list = []

    def add_pending_source(self, source) -> None:
        """Register a callable that backfills deferred telemetry.

        The serving tier buffers its observation log during a replay
        and expands it (exemplar offers, spans, audit records) only
        when telemetry is read. Registering the expansion here makes
        :meth:`snapshot` self-sufficient: the first snapshot runs
        every pending source once, so exposition always sees the
        backfilled exemplars no matter which artifact is read first.
        """
        self._pending_sources.append(source)

    def run_pending_sources(self) -> None:
        """Run and clear every registered deferred-telemetry hook."""
        if self._pending_sources:
            sources, self._pending_sources = self._pending_sources, []
            for source in sources:
                source()

    # -- instrument access -------------------------------------------------------

    def counter(self, name: str) -> Counter:
        """The counter called ``name``, created at zero if new."""
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name``, created at zero if new."""
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(
        self, name: str, bounds: tuple[float, ...] | None = None
    ) -> Histogram:
        """The histogram called ``name``; ``bounds`` only bind on creation."""
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(
                name, bounds if bounds is not None else DEFAULT_LATENCY_BOUNDS_S
            )
        return instrument

    # -- bulk views --------------------------------------------------------------

    def counters(self, prefix: str = "", sort: bool = True) -> dict[str, float]:
        """Counter values whose names start with ``prefix``.

        Sorted by name by default; ``sort=False`` keeps creation order
        (which is how phase timings preserve execution order).
        """
        items = sorted(self._counters.items()) if sort else self._counters.items()
        return {
            name: c.value for name, c in items if name.startswith(prefix)
        }

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry in: counters and histograms add,
        gauges take the incoming value."""
        for name, counter in other._counters.items():
            self.counter(name).inc(counter.value)
        for name, gauge in other._gauges.items():
            self.gauge(name).set(gauge.value)
        for name, histogram in other._histograms.items():
            self.histogram(name, histogram.bounds).merge(histogram)

    def merge_prefixed(self, other: "MetricsRegistry", prefix: str) -> None:
        """Fold another registry in under a name prefix, exactly.

        Same fold semantics as :meth:`merge` — counters and histograms
        add, gauges take the incoming value — but every incoming
        instrument lands at ``prefix + name``. This is how the cluster
        tier publishes per-replica metric families
        (``service.replica.<rid>.…``) next to the fleet-wide rollup it
        gets from a plain :meth:`merge` of the same registries: the
        rollup totals are then, by construction, the exact sums of the
        per-replica families.
        """
        for name, counter in other._counters.items():
            self.counter(prefix + name).inc(counter.value)
        for name, gauge in other._gauges.items():
            self.gauge(prefix + name).set(gauge.value)
        for name, histogram in other._histograms.items():
            self.histogram(prefix + name, histogram.bounds).merge(histogram)

    def snapshot(self) -> dict:
        """Plain-data rendering of every instrument (JSON-ready)."""
        self.run_pending_sources()
        return {
            "counters": {
                name: c.value for name, c in sorted(self._counters.items())
            },
            "gauges": {
                name: g.value for name, g in sorted(self._gauges.items())
            },
            "histograms": {
                name: _histogram_snapshot(h)
                for name, h in sorted(self._histograms.items())
            },
        }


def _histogram_snapshot(histogram: Histogram) -> dict:
    """One histogram as plain data; exemplars only when present, so
    exemplar-free snapshots are byte-identical to what they were
    before exemplars existed."""
    histogram.flush_exemplars()
    data: dict = {
        "bounds": list(histogram.bounds),
        "counts": list(histogram.counts),
        "count": histogram.count,
        "sum": histogram.sum,
    }
    if histogram.exemplars:
        data["exemplars"] = {
            str(bucket): [exemplar.to_dict() for exemplar in kept]
            for bucket, kept in sorted(histogram.exemplars.items())
        }
    return data


__all__ = [
    "DEFAULT_EXEMPLAR_CAPACITY",
    "DEFAULT_LATENCY_BOUNDS_MS",
    "DEFAULT_LATENCY_BOUNDS_S",
    "Counter",
    "Exemplar",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "histogram_quantile",
]
