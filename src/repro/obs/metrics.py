"""A small, exact, fold-friendly metrics registry.

The study pipeline runs the same logical work whether it executes
serially or sharded across worker processes, and its accounting must
say so: every counter in this module folds by plain addition, every
histogram by bucket-wise addition, so a parent process can merge the
registries its workers buffered and end up with *exactly* the numbers
a serial run would have produced (for shape-independent metrics) or
exactly the sum of what every process did (for shape-dependent ones).

Three instrument types:

- :class:`Counter` — a monotonically increasing float total;
- :class:`Gauge` — a last-written value (worker counts, shard wall
  extrema — things that are *states*, not totals);
- :class:`Histogram` — fixed, deterministic bucket bounds chosen at
  registration time, so two processes observing into histograms of the
  same name always produce mergeable bucket vectors.

Nothing here is thread-safe by design: each process owns its registry
and folding happens at well-defined merge points (the executor's
shard-result loop), mirroring how the retry-counter deltas already
flow.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field

#: Default histogram bounds for wall-clock latencies, in seconds.
#: Roughly logarithmic from 0.5 ms to 30 s — wide enough for a single
#: record stage at the bottom and a full study phase at the top.
DEFAULT_LATENCY_BOUNDS_S: tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)


@dataclass
class Counter:
    """A named, add-only total. Folds across processes by summation."""

    name: str
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (may be fractional, e.g. seconds)."""
        self.value += amount

    @property
    def int_value(self) -> int:
        """The value as an int, for counters that only ever count."""
        return int(self.value)


@dataclass
class Gauge:
    """A named last-written value. Merging keeps the incoming value."""

    name: str
    value: float = 0.0

    def set(self, value: float) -> None:
        """Overwrite the gauge."""
        self.value = float(value)


@dataclass
class Histogram:
    """Fixed-bound histogram; bucket ``i`` counts values ``<= bounds[i]``.

    The final bucket (index ``len(bounds)``) is the overflow bucket.
    Bounds are part of the histogram's identity: merging histograms
    with different bounds is a registration error, not a runtime
    guess, which is what keeps cross-process folds exact.
    """

    name: str
    bounds: tuple[float, ...] = DEFAULT_LATENCY_BOUNDS_S
    counts: list[int] = field(default_factory=list)
    count: int = 0
    sum: float = 0.0

    def __post_init__(self) -> None:
        if not self.counts:
            self.counts = [0] * (len(self.bounds) + 1)

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value

    @property
    def mean(self) -> float:
        """Mean observation (0.0 when empty)."""
        return self.sum / self.count if self.count else 0.0

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram of the same shape into this one."""
        if other.bounds != self.bounds:
            raise ValueError(
                f"histogram {self.name!r}: cannot merge bounds "
                f"{other.bounds!r} into {self.bounds!r}"
            )
        for index, count in enumerate(other.counts):
            self.counts[index] += count
        self.count += other.count
        self.sum += other.sum


class MetricsRegistry:
    """All of one process's instruments, created on first touch.

    ``counter(name)`` / ``gauge(name)`` / ``histogram(name)`` return
    the live instrument (creating it if needed), so call sites never
    pre-register. :meth:`merge` folds another registry in exactly;
    :meth:`snapshot` renders plain JSON-ready data.
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- instrument access -------------------------------------------------------

    def counter(self, name: str) -> Counter:
        """The counter called ``name``, created at zero if new."""
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name``, created at zero if new."""
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(
        self, name: str, bounds: tuple[float, ...] | None = None
    ) -> Histogram:
        """The histogram called ``name``; ``bounds`` only bind on creation."""
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(
                name, bounds if bounds is not None else DEFAULT_LATENCY_BOUNDS_S
            )
        return instrument

    # -- bulk views --------------------------------------------------------------

    def counters(self, prefix: str = "", sort: bool = True) -> dict[str, float]:
        """Counter values whose names start with ``prefix``.

        Sorted by name by default; ``sort=False`` keeps creation order
        (which is how phase timings preserve execution order).
        """
        items = sorted(self._counters.items()) if sort else self._counters.items()
        return {
            name: c.value for name, c in items if name.startswith(prefix)
        }

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry in: counters and histograms add,
        gauges take the incoming value."""
        for name, counter in other._counters.items():
            self.counter(name).inc(counter.value)
        for name, gauge in other._gauges.items():
            self.gauge(name).set(gauge.value)
        for name, histogram in other._histograms.items():
            self.histogram(name, histogram.bounds).merge(histogram)

    def merge_prefixed(self, other: "MetricsRegistry", prefix: str) -> None:
        """Fold another registry in under a name prefix, exactly.

        Same fold semantics as :meth:`merge` — counters and histograms
        add, gauges take the incoming value — but every incoming
        instrument lands at ``prefix + name``. This is how the cluster
        tier publishes per-replica metric families
        (``service.replica.<rid>.…``) next to the fleet-wide rollup it
        gets from a plain :meth:`merge` of the same registries: the
        rollup totals are then, by construction, the exact sums of the
        per-replica families.
        """
        for name, counter in other._counters.items():
            self.counter(prefix + name).inc(counter.value)
        for name, gauge in other._gauges.items():
            self.gauge(prefix + name).set(gauge.value)
        for name, histogram in other._histograms.items():
            self.histogram(prefix + name, histogram.bounds).merge(histogram)

    def snapshot(self) -> dict:
        """Plain-data rendering of every instrument (JSON-ready)."""
        return {
            "counters": {
                name: c.value for name, c in sorted(self._counters.items())
            },
            "gauges": {
                name: g.value for name, g in sorted(self._gauges.items())
            },
            "histograms": {
                name: {
                    "bounds": list(h.bounds),
                    "counts": list(h.counts),
                    "count": h.count,
                    "sum": h.sum,
                }
                for name, h in sorted(self._histograms.items())
            },
        }


__all__ = [
    "DEFAULT_LATENCY_BOUNDS_S",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
]
