"""Declarative service-level objectives on the virtual clock.

The cluster tier can degrade in exactly three documented dimensions —
availability (503s after replica loss), latency, and shed rate — and
this module is the layer that turns "degraded" into a yes/no answer a
deployment can act on. An :class:`SloSpec` declares an objective over
one of those dimensions; :func:`evaluate` grades a run's completion
events against it with **exact, deterministic error-budget
accounting**: the same seeded run always produces the same SLI, the
same budget arithmetic, and the same alert intervals, because every
input is a virtual-clock instant and every computation is integer
counting plus fixed float arithmetic (no sampling, no wall clock).

Burn-rate alerts follow the Google-SRE multi-window form: an alert
window pairs a *long* lookback (did we really burn budget?) with a
*short* one (are we still burning it?), and fires only at instants
where **both** sliding windows burn faster than the window's
threshold multiple of the sustainable rate. Sliding windows advance
on event completion instants, so alert intervals are exact functions
of the run, not of an evaluator's polling cadence.

SLI definitions (the denominators matter and are pinned by tests):

- ``availability`` — good = the request was answered (no 5xx; a 503
  is the cluster giving up after replica loss). Denominator: every
  request, including policy sheds.
- ``shed_rate`` — good = the request was not shed at all (no 429, no
  503). Denominator: every request.
- ``latency`` — good = answered within ``threshold_ms``. Denominator:
  answered requests only (a shed request has no service latency; the
  shed-rate SLO owns it), the standard SRE convention.

:func:`burn_attribution` closes the loop with the chaos harness: the
service audit log records, per request, which replica/fault-channel
events forced re-dispatches, so every bad SLI event can be charged to
the fault that caused it — "replica s0r1's crash burned 40% of the
availability budget" becomes a computed table, not a guess.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass

__all__ = [
    "BurnAlert",
    "BurnWindow",
    "DEFAULT_BURN_WINDOWS",
    "DEFAULT_SERVICE_SLOS",
    "SLO_KINDS",
    "SloEvent",
    "SloOutcome",
    "SloReport",
    "SloSpec",
    "MS_PER_DAY",
    "burn_attribution",
    "evaluate",
    "events_from_audit",
    "events_from_generations",
    "events_from_reconfigs",
    "events_from_responses",
    "render_attribution",
]

#: Virtual milliseconds per simulated day (freshness SLOs convert
#: generation lag, measured in days, onto the ms-based latency axis).
MS_PER_DAY: float = 86_400_000.0

#: SLI kinds :func:`evaluate` understands.
SLO_KINDS: tuple[str, ...] = ("availability", "latency", "shed_rate")

#: Statuses that count as "the service shed this request".
_SHED_STATUSES = (429, 503)


@dataclass(frozen=True, slots=True)
class SloEvent:
    """One graded completion: when it finished and how it went."""

    at_ms: float
    status: int
    latency_ms: float

    @property
    def shed(self) -> bool:
        return self.status in _SHED_STATUSES

    @property
    def answered(self) -> bool:
        """Whether a client got an answer (2xx/4xx body, not a shed)."""
        return self.status < 500 and self.status not in _SHED_STATUSES


def events_from_responses(responses) -> tuple[SloEvent, ...]:
    """Grade a serve run's :class:`~repro.service.server.Response` list."""
    return tuple(
        sorted(
            (
                SloEvent(
                    at_ms=response.completion_ms,
                    status=response.status,
                    latency_ms=response.latency_ms,
                )
                for response in responses
            ),
            key=lambda event: (event.at_ms, event.status, event.latency_ms),
        )
    )


def events_from_generations(generations) -> tuple[SloEvent, ...]:
    """Grade index freshness through the latency SLO machinery.

    Each published :class:`~repro.live.publisher.Generation` becomes
    one event completing at its build instant, whose "latency" is the
    generation lag — how long the *previous* generation kept serving
    before this one replaced it (``lag_days``, converted onto the
    virtual-ms axis via :data:`MS_PER_DAY`). An
    ``SloSpec(kind="latency", threshold_ms=budget_days * MS_PER_DAY)``
    then reads directly as "fraction of generations published within
    the freshness budget", with burn windows and alert intervals for
    free — no new SLI kind needed.
    """
    return tuple(
        sorted(
            (
                SloEvent(
                    at_ms=generation.built_at.days * MS_PER_DAY,
                    status=200,
                    latency_ms=generation.lag_days * MS_PER_DAY,
                )
                for generation in generations
            ),
            key=lambda event: (event.at_ms, event.latency_ms),
        )
    )


def events_from_reconfigs(reconfig_events) -> tuple[SloEvent, ...]:
    """Grade reconfiguration lag through the latency SLO machinery.

    Each applied :class:`~repro.service.reconfig.ReconfigEvent`
    becomes one event completing at its cutover instant, whose
    "latency" is the schedule-to-cutover lag — 0 for atomic applies,
    the drain time (bounded by the batcher's ``max_wait_ms``) for
    drained ones. An ``SloSpec(kind="latency",
    threshold_ms=lag_budget_ms)`` then reads directly as "fraction of
    reconfigurations that cut over within budget", the freshness
    companion to :func:`events_from_generations`: one grades how
    often new generations are *built*, this grades how quickly the
    serving tier *adopts* them.
    """
    return tuple(
        sorted(
            (
                SloEvent(
                    at_ms=event.applied_ms,
                    status=200,
                    latency_ms=event.lag_ms,
                )
                for event in reconfig_events
            ),
            key=lambda event: (event.at_ms, event.latency_ms),
        )
    )


def events_from_audit(records: list[dict]) -> tuple[SloEvent, ...]:
    """Grade parsed audit-log events (see :mod:`repro.service.audit`)."""
    return tuple(
        sorted(
            (
                SloEvent(
                    at_ms=float(record["completion_ms"]),
                    status=int(record["status"]),
                    latency_ms=float(record["completion_ms"])
                    - float(record["arrival_ms"]),
                )
                for record in records
            ),
            key=lambda event: (event.at_ms, event.status, event.latency_ms),
        )
    )


@dataclass(frozen=True, slots=True)
class BurnWindow:
    """One multi-window burn-rate alert rule.

    Fires at instants where the error budget burns at ≥ ``threshold``
    times the sustainable rate over *both* the long and the short
    sliding window. The classic SRE pairs are (1h, 5m, 14.4×) and
    (6h, 30m, 6×) on wall clocks; the defaults here are the same
    shapes scaled to the virtual-millisecond runs the simulation
    serves.
    """

    long_ms: float
    short_ms: float
    threshold: float
    severity: str = "page"


#: Default alert pairs, scaled to virtual-ms serving runs.
DEFAULT_BURN_WINDOWS: tuple[BurnWindow, ...] = (
    BurnWindow(long_ms=5_000.0, short_ms=500.0, threshold=14.4, severity="page"),
    BurnWindow(long_ms=30_000.0, short_ms=3_000.0, threshold=6.0, severity="ticket"),
)


@dataclass(frozen=True)
class SloSpec:
    """One declarative objective over a serving run."""

    name: str
    kind: str
    #: Required good fraction in (0, 1]; the error budget is 1 - this.
    objective: float
    #: Latency SLOs only: the "good" bar in virtual milliseconds.
    threshold_ms: float = 0.0
    windows: tuple[BurnWindow, ...] = DEFAULT_BURN_WINDOWS

    def __post_init__(self) -> None:
        if self.kind not in SLO_KINDS:
            raise ValueError(
                f"unknown SLO kind {self.kind!r}; known: {SLO_KINDS}"
            )
        if not 0.0 < self.objective <= 1.0:
            raise ValueError("objective must be in (0, 1]")
        if self.kind == "latency" and self.threshold_ms <= 0.0:
            raise ValueError("latency SLOs need a positive threshold_ms")

    def eligible(self, event: SloEvent) -> bool:
        """Whether this event is in the SLI denominator."""
        if self.kind == "latency":
            return event.answered
        return True

    def good(self, event: SloEvent) -> bool:
        """Whether an eligible event met the objective."""
        if self.kind == "availability":
            return event.status < 500
        if self.kind == "shed_rate":
            return not event.shed
        return event.latency_ms <= self.threshold_ms


#: The service tier's stock objectives (used by the CLIs when none
#: are given). Deliberately modest: the chaos grid is supposed to be
#: able to violate them.
DEFAULT_SERVICE_SLOS: tuple[SloSpec, ...] = (
    SloSpec(name="availability", kind="availability", objective=0.999),
    SloSpec(
        name="latency-p99", kind="latency", objective=0.99, threshold_ms=250.0
    ),
    SloSpec(name="shed-rate", kind="shed_rate", objective=0.95),
)


@dataclass(frozen=True, slots=True)
class BurnAlert:
    """One fired multi-window alert: the interval both windows burned."""

    window: BurnWindow
    start_ms: float
    end_ms: float
    peak_burn: float

    def to_dict(self) -> dict:
        return {
            "severity": self.window.severity,
            "long_ms": self.window.long_ms,
            "short_ms": self.window.short_ms,
            "threshold": self.window.threshold,
            "start_ms": round(self.start_ms, 6),
            "end_ms": round(self.end_ms, 6),
            "peak_burn": round(self.peak_burn, 4),
        }


@dataclass(frozen=True)
class SloOutcome:
    """One spec graded against one run: exact budget arithmetic."""

    spec: SloSpec
    eligible: int
    good: int
    alerts: tuple[BurnAlert, ...] = ()

    @property
    def bad(self) -> int:
        return self.eligible - self.good

    @property
    def sli(self) -> float:
        """Achieved good fraction (1.0 on an empty denominator)."""
        return self.good / self.eligible if self.eligible else 1.0

    @property
    def budget_total(self) -> float:
        """Allowed bad events: (1 - objective) × eligible, exactly."""
        return (1.0 - self.spec.objective) * self.eligible

    @property
    def budget_consumed_fraction(self) -> float:
        """Bad events over allowed bad events (∞-safe: 0 budget with
        0 bad is 0.0; 0 budget with any bad reports the bad count)."""
        if self.budget_total > 0.0:
            return self.bad / self.budget_total
        return 0.0 if self.bad == 0 else float(self.bad)

    @property
    def met(self) -> bool:
        return self.sli >= self.spec.objective

    @property
    def verdict(self) -> str:
        return "met" if self.met else "violated"

    def to_dict(self) -> dict:
        return {
            "name": self.spec.name,
            "kind": self.spec.kind,
            "objective": self.spec.objective,
            "threshold_ms": self.spec.threshold_ms,
            "eligible": self.eligible,
            "good": self.good,
            "bad": self.bad,
            "sli": round(self.sli, 6),
            "budget_total": round(self.budget_total, 6),
            "budget_consumed_fraction": round(
                self.budget_consumed_fraction, 6
            ),
            "alerts": [alert.to_dict() for alert in self.alerts],
            "verdict": self.verdict,
        }


@dataclass(frozen=True)
class SloReport:
    """Every spec's outcome for one run."""

    outcomes: tuple[SloOutcome, ...]

    @property
    def met(self) -> bool:
        return all(outcome.met for outcome in self.outcomes)

    def outcome(self, name: str) -> SloOutcome:
        for outcome in self.outcomes:
            if outcome.spec.name == name:
                return outcome
        raise KeyError(name)

    def to_dict(self) -> dict:
        return {
            "met": self.met,
            "slos": [outcome.to_dict() for outcome in self.outcomes],
        }

    def render(self) -> str:
        """Fixed-width verdict table (the CLIs print this)."""
        lines = [
            f"  {'slo':<14} {'objective':>9} {'sli':>9} {'bad':>6} "
            f"{'budget':>8} {'burned':>8} {'alerts':>6}  verdict"
        ]
        for outcome in self.outcomes:
            lines.append(
                f"  {outcome.spec.name:<14} "
                f"{outcome.spec.objective:>9.4f} {outcome.sli:>9.4f} "
                f"{outcome.bad:>6} {outcome.budget_total:>8.2f} "
                f"{outcome.budget_consumed_fraction:>7.0%} "
                f"{len(outcome.alerts):>6}  {outcome.verdict}"
            )
        return "\n".join(lines)


def _window_alerts(
    spec: SloSpec, times: list[float], bad_prefix: list[int]
) -> tuple[BurnAlert, ...]:
    """Fire every multi-window alert over one spec's eligible events.

    ``times`` are eligible completion instants in order;
    ``bad_prefix[i]`` counts bad events among the first ``i``. Burn
    rate of window ``W`` at instant ``t`` = bad fraction of the
    events in ``(t - W, t]`` over the budget fraction. Consecutive
    firing instants coalesce into one alert interval.
    """
    budget_fraction = 1.0 - spec.objective
    if budget_fraction <= 0.0 or not times:
        return ()
    alerts: list[BurnAlert] = []
    for window in spec.windows:

        def burn(index: int, span_ms: float) -> float:
            left = bisect_left(times, times[index] - span_ms, 0, index + 1)
            in_window = index + 1 - left
            bad = bad_prefix[index + 1] - bad_prefix[left]
            return (bad / in_window) / budget_fraction if in_window else 0.0

        start: float | None = None
        last: float = 0.0
        peak: float = 0.0
        for index in range(len(times)):
            long_burn = burn(index, window.long_ms)
            firing = long_burn >= window.threshold and (
                burn(index, window.short_ms) >= window.threshold
            )
            if firing:
                if start is None:
                    start = times[index]
                    peak = 0.0
                last = times[index]
                peak = max(peak, long_burn)
            elif start is not None:
                alerts.append(BurnAlert(window, start, last, peak))
                start = None
        if start is not None:
            alerts.append(BurnAlert(window, start, last, peak))
    alerts.sort(key=lambda a: (a.start_ms, a.window.long_ms))
    return tuple(alerts)


def evaluate(
    events, specs: tuple[SloSpec, ...] = DEFAULT_SERVICE_SLOS
) -> SloReport:
    """Grade one run's events against every spec. Pure and exact."""
    ordered = sorted(events, key=lambda e: (e.at_ms, e.status, e.latency_ms))
    outcomes = []
    for spec in specs:
        times: list[float] = []
        bad_prefix: list[int] = [0]
        good = 0
        for event in ordered:
            if not spec.eligible(event):
                continue
            is_good = spec.good(event)
            good += is_good
            times.append(event.at_ms)
            bad_prefix.append(bad_prefix[-1] + (not is_good))
        outcomes.append(
            SloOutcome(
                spec=spec,
                eligible=len(times),
                good=good,
                alerts=_window_alerts(spec, times, bad_prefix),
            )
        )
    return SloReport(outcomes=tuple(outcomes))


# -- chaos attribution -----------------------------------------------------------


def _blamed(record: dict) -> tuple[tuple[str, str], ...]:
    """The (replica, channel) pairs the audit log charged a request to."""
    pairs = []
    for entry in record.get("redispatches", ()):
        replica, _, channel = str(entry).partition(":")
        pairs.append((replica, channel or "?"))
    # A request can be re-dispatched off the same replica repeatedly
    # (drain then lost-in-flight); charge each fault once per request.
    return tuple(dict.fromkeys(pairs))


def burn_attribution(
    records: list[dict],
    specs: tuple[SloSpec, ...] = DEFAULT_SERVICE_SLOS,
) -> dict[tuple[str, str], dict[str, float]]:
    """Charge every bad SLI event to the fault that caused it.

    Reads parsed audit events (dicts from
    :func:`repro.service.audit.read_jsonl`). For each spec, a bad
    event is attributed to every ``replica:channel`` fault that
    re-dispatched the request (the blame trail the cluster records);
    a bad event with no recorded fault is charged to the replica that
    actually served it under the pseudo-channel ``"served"`` (which
    is where permanently-slow-replica latency burn shows up — the
    slow replica *is* the serving replica). Unattributable events
    (sheds at the front door) land under ``("-", "admission")``.

    Returns ``{(replica, channel): {"requests": n, "<spec>_bad": n,
    "<spec>_budget_fraction": f, ...}}`` with exact counts.
    """
    events_by_record = events_from_audit(records) if records else ()
    report = evaluate(events_by_record, specs)
    budget = {
        outcome.spec.name: outcome.budget_total for outcome in report.outcomes
    }
    table: dict[tuple[str, str], dict[str, float]] = {}

    def charge(key: tuple[str, str], spec_name: str) -> None:
        row = table.get(key)
        if row is None:
            row = table[key] = {"requests": 0.0}
            for spec in specs:
                row[f"{spec.name}_bad"] = 0.0
        row[f"{spec_name}_bad"] += 1.0

    def note_request(key: tuple[str, str]) -> None:
        row = table.get(key)
        if row is None:
            row = table[key] = {"requests": 0.0}
            for spec in specs:
                row[f"{spec.name}_bad"] = 0.0
        row["requests"] += 1.0

    for record in records:
        event = SloEvent(
            at_ms=float(record["completion_ms"]),
            status=int(record["status"]),
            latency_ms=float(record["completion_ms"])
            - float(record["arrival_ms"]),
        )
        blamed = _blamed(record)
        replica = str(record.get("replica", "")) or "-"
        fallback = (
            (replica, "served")
            if replica != "-"
            else ("-", str(record.get("reason", "")) or "admission")
        )
        for key in blamed or (fallback,):
            note_request(key)
        for spec in specs:
            if not spec.eligible(event) or spec.good(event):
                continue
            for key in blamed or (fallback,):
                charge(key, spec.name)

    for row in table.values():
        for spec in specs:
            allowed = budget.get(spec.name, 0.0)
            bad = row[f"{spec.name}_bad"]
            row[f"{spec.name}_budget_fraction"] = (
                bad / allowed if allowed > 0.0 else (0.0 if not bad else bad)
            )
    return dict(sorted(table.items()))


def render_attribution(
    table: dict[tuple[str, str], dict[str, float]],
    specs: tuple[SloSpec, ...] = DEFAULT_SERVICE_SLOS,
) -> str:
    """Fixed-width chaos budget-burn table (the CLIs print this)."""
    if not table:
        return "  (no audited requests)"
    header = f"  {'replica':<8} {'channel':<10} {'requests':>8}"
    for spec in specs:
        header += f" {spec.name + ' burn':>18}"
    lines = [header]
    for (replica, channel), row in table.items():
        line = f"  {replica:<8} {channel:<10} {int(row['requests']):>8}"
        for spec in specs:
            bad = int(row[f"{spec.name}_bad"])
            frac = row[f"{spec.name}_budget_fraction"]
            line += f" {f'{bad} ({frac:.0%})':>18}"
        lines.append(line)
    return "\n".join(lines)
