"""The immutable, versioned snapshot a completed study serves from.

A batch study produces everything request-time serving needs — every
record's Figure-4 bucket, its archived-copy verdicts, the §4.2
redirect-validation result, the §5.2 typo correction — but leaves it
scattered across a :class:`~repro.analysis.study.StudyReport`'s
parallel lists. :class:`LinkStatusIndex` freezes all of it into one
content-hash-versioned snapshot with O(1) per-URL lookup, per-domain
and per-bucket sweeps, and aggregate endpoints (bucket counts, ECDF
quantiles) that agree **byte-for-byte** with the batch report, because
they are computed by the same code paths over the same values.

Immutability is the serving contract: the server, the cache, and any
number of thread-pool workers read the index concurrently without a
lock, and a response is reproducible for as long as the version string
it was served under is. Entries are frozen dataclasses, collections
are tuples, and the lookup tables are :class:`types.MappingProxyType`
views — mutation raises instead of corrupting.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from types import MappingProxyType

from ..net.status import FIGURE4_ORDER
from ..reporting.cdf import Ecdf, ecdf

__all__ = ["LinkStatusEntry", "LinkStatusIndex"]


@dataclass(frozen=True, slots=True)
class LinkStatusEntry:
    """Everything the service can say about one studied URL.

    All fields come from the study's public measurement — probe,
    census, validation, soft-404 screening — plus the record's
    provenance cost deltas; nothing reads generator ground truth.
    """

    url: str
    hostname: str
    domain: str
    bucket: str
    final_status: int | None
    redirected: bool
    genuinely_alive: bool
    has_pre_marking_200: bool
    has_pre_marking_3xx: bool
    has_any_copy: bool
    has_valid_redirect_copy: bool
    first_post_marking_erroneous: bool | None
    typo_correction: str | None
    posting_year: float
    site_ranking: int | None
    #: Provenance cost deltas (shape-dependent at the cache-hit level;
    #: informational, never part of the version hash).
    fetches: int = 0
    cdx_queries: int = 0
    retries: int = 0

    @property
    def advice(self) -> str:
        """The paper's §6 repair recommendation for this link."""
        if self.bucket == "200" and self.genuinely_alive:
            return "alive: re-check and consider unmarking"
        if self.has_pre_marking_200:
            return "patch with the pre-marking 200 archive copy"
        if self.has_valid_redirect_copy:
            return "patch with the validated redirect archive copy"
        if self.typo_correction is not None:
            return f"likely typo of archived URL {self.typo_correction}"
        if not self.has_any_copy:
            return "never archived: no automated repair available"
        return "keep the archived copy currently in place"

    def to_body(self) -> dict:
        """The JSON-ready response body for a per-URL query."""
        return {
            "url": self.url,
            "bucket": self.bucket,
            "final_status": self.final_status,
            "redirected": self.redirected,
            "genuinely_alive": self.genuinely_alive,
            "has_pre_marking_200": self.has_pre_marking_200,
            "has_valid_redirect_copy": self.has_valid_redirect_copy,
            "typo_correction": self.typo_correction,
            "advice": self.advice,
        }


def _measurement_key(entry: LinkStatusEntry) -> dict:
    """The version-hashed projection of one entry.

    Provenance cost fields are excluded: they vary with execution
    shape (serial vs sharded cache-hit splits), and two indexes built
    from the same *measurement* must carry the same version.
    """
    return {
        "url": entry.url,
        "bucket": entry.bucket,
        "final_status": entry.final_status,
        "redirected": entry.redirected,
        "genuinely_alive": entry.genuinely_alive,
        "pre200": entry.has_pre_marking_200,
        "pre3xx": entry.has_pre_marking_3xx,
        "any_copy": entry.has_any_copy,
        "valid_redirect": entry.has_valid_redirect_copy,
        "post_erroneous": entry.first_post_marking_erroneous,
        "typo": entry.typo_correction,
        "posting_year": entry.posting_year,
        "ranking": entry.site_ranking,
    }


class LinkStatusIndex:
    """An immutable queryable snapshot of one study's results.

    Build with :meth:`build`; query with :meth:`lookup`,
    :meth:`by_domain`, :meth:`by_bucket`, :meth:`bucket_counts`, and
    :meth:`quantile`. The :attr:`version` string is a content hash of
    the measurement, so two builds over the same world/seed agree and
    any measurement change is visible at the API surface.
    """

    def __init__(self, entries: tuple[LinkStatusEntry, ...],
                 gap_days: tuple[float, ...] = ()) -> None:
        self._entries = entries
        self._gap_days = tuple(gap_days)
        by_url: dict[str, LinkStatusEntry] = {}
        by_domain: dict[str, tuple[LinkStatusEntry, ...]] = {}
        by_bucket: dict[str, tuple[LinkStatusEntry, ...]] = {}
        for entry in entries:
            by_url.setdefault(entry.url, entry)
            by_domain[entry.domain] = by_domain.get(entry.domain, ()) + (entry,)
            by_bucket[entry.bucket] = by_bucket.get(entry.bucket, ()) + (entry,)
        self._by_url = MappingProxyType(by_url)
        self._by_domain = MappingProxyType(by_domain)
        self._by_bucket = MappingProxyType(by_bucket)

        # Figure-4 counts, in presentation order — same construction
        # as analysis.live_status.outcome_counts over the batch probes.
        counts = {outcome.value: 0 for outcome in FIGURE4_ORDER}
        for entry in entries:
            counts[entry.bucket] = counts.get(entry.bucket, 0) + 1
        self._counts = MappingProxyType(counts)

        # Aggregate ECDFs, built by the same reporting.cdf.ecdf() the
        # batch figures use, over the same value lists — which is what
        # makes quantile answers byte-identical to the report's.
        self._ecdfs = MappingProxyType({
            "posting_year": ecdf([e.posting_year for e in entries]),
            "urls_per_domain": ecdf(
                [len(group) for group in by_domain.values()]
            ),
            "site_ranking": ecdf(
                [e.site_ranking for e in entries if e.site_ranking is not None]
            ),
            "gap_days": ecdf(list(gap_days)),
        })

        digest = hashlib.sha256()
        payload = {
            "entries": [_measurement_key(entry) for entry in entries],
            "counts": dict(counts),
            "gap_days": list(gap_days),
        }
        digest.update(
            json.dumps(payload, sort_keys=True, separators=(",", ":"))
            .encode("utf-8")
        )
        self._version = f"lsi-{digest.hexdigest()[:16]}"

    # -- construction ------------------------------------------------------------

    @classmethod
    def build(cls, report) -> "LinkStatusIndex":
        """Snapshot a :class:`~repro.analysis.study.StudyReport`.

        Requires the report's ``outcomes`` (attached by every
        ``Study.run``); the soft-404 verdicts and typo findings are
        joined in by URL.
        """
        if report.outcomes is None:
            raise ValueError(
                "report carries no per-record outcomes; "
                "build the index from a report produced by Study.run()"
            )
        alive = {
            v.url for v in report.soft404_verdicts if v.genuinely_alive
        }
        typo_by_url = {
            finding.record.url: finding.corrected_url
            for finding in report.typos.findings
        }
        entries = []
        for outcome in report.outcomes:
            record = outcome.record
            probe = outcome.probe
            census = outcome.census
            provenance = outcome.provenance
            entries.append(
                LinkStatusEntry(
                    url=record.url,
                    hostname=record.hostname,
                    domain=record.domain,
                    bucket=probe.outcome.value,
                    final_status=probe.result.final_status,
                    redirected=probe.redirected,
                    genuinely_alive=record.url in alive,
                    has_pre_marking_200=census.has_pre_marking_200,
                    has_pre_marking_3xx=census.has_pre_marking_3xx,
                    has_any_copy=census.has_any_copy,
                    has_valid_redirect_copy=outcome.has_valid_redirect_copy,
                    first_post_marking_erroneous=(
                        outcome.first_post_marking_erroneous
                    ),
                    typo_correction=typo_by_url.get(record.url),
                    posting_year=record.posted_at.fractional_year(),
                    site_ranking=record.site_ranking,
                    fetches=provenance.fetches if provenance else 0,
                    cdx_queries=provenance.cdx_queries if provenance else 0,
                    retries=provenance.retries if provenance else 0,
                )
            )
        return cls(
            entries=tuple(entries),
            gap_days=tuple(report.temporal.gaps_days),
        )

    # -- identity ----------------------------------------------------------------

    @property
    def version(self) -> str:
        """Content hash of the measurement this index snapshots."""
        return self._version

    @property
    def entries(self) -> tuple[LinkStatusEntry, ...]:
        """Every entry, in record order."""
        return self._entries

    @property
    def gap_days(self) -> tuple[float, ...]:
        """The §5.3 marking→removal gaps this snapshot aggregates.

        Part of the version hash (via the ``gap_days`` ECDF inputs),
        so anything that rebuilds a byte-identical index — a
        :class:`~repro.service.reconfig.GenerationDelta` — must carry
        it.
        """
        return self._gap_days

    def __len__(self) -> int:
        return len(self._entries)

    # -- point queries -----------------------------------------------------------

    def lookup(self, url: str) -> LinkStatusEntry | None:
        """The entry for ``url``, or None when the URL was not studied."""
        return self._by_url.get(url)

    def by_domain(self, domain: str) -> tuple[LinkStatusEntry, ...]:
        """Every studied link under one registrable domain."""
        return self._by_domain.get(domain, ())

    def by_bucket(self, bucket: str) -> tuple[LinkStatusEntry, ...]:
        """Every studied link that landed in one Figure-4 bucket."""
        return self._by_bucket.get(bucket, ())

    # -- aggregate endpoints -----------------------------------------------------

    def bucket_counts(self) -> dict[str, int]:
        """Figure 4's bar heights, byte-identical to the batch report."""
        return dict(self._counts)

    def metrics(self) -> tuple[str, ...]:
        """Names :meth:`quantile` and :meth:`distribution` accept."""
        return tuple(sorted(self._ecdfs))

    def distribution(self, metric: str) -> Ecdf:
        """The full ECDF behind one aggregate metric."""
        try:
            return self._ecdfs[metric]
        except KeyError:
            raise KeyError(
                f"unknown metric {metric!r}; known: {self.metrics()}"
            ) from None

    def quantile(self, metric: str, q: float) -> float:
        """``Ecdf.quantile`` over the same values the batch report uses."""
        return self.distribution(metric).quantile(q)

    def __repr__(self) -> str:
        return (
            f"LinkStatusIndex({len(self._entries)} entries, "
            f"version={self._version})"
        )
