"""repro.service — a deterministic link-status query service.

The batch pipeline (:mod:`repro.analysis.study`) answers "what is the
state of every studied link" once, offline. This package turns that
answer into a *serving* system — the shape a production link-repair
bot or dashboard would consume — without giving up the repo's core
property: every response, latency, and overload decision is an exact,
replayable function of ``(study report, config, workload seed)``.

The stack, front to back:

- :class:`~repro.service.workload.WorkloadConfig` /
  :func:`~repro.service.workload.generate_workload` — seeded
  Zipf-over-URLs traffic with Poisson arrivals;
- :class:`~repro.service.admission.AdmissionController` — token-bucket
  rate limiting with a bounded FIFO queue and deterministic shedding;
- :class:`~repro.service.batcher.MicroBatcher` — micro-batching with
  duplicate-query coalescing;
- :class:`~repro.service.cache.ResultCache` — LRU + virtual-TTL result
  cache;
- :class:`~repro.service.index.LinkStatusIndex` — the immutable,
  content-hash-versioned snapshot built from a completed study;
- :class:`~repro.service.server.LinkStatusService` — the event loop
  tying them together, in serial or thread-pool mode, traced via
  :mod:`repro.obs` and chaos-testable via
  :class:`~repro.service.faults.ServiceFaultPlan`.
"""

from .admission import AdmissionController, TokenBucket
from .batcher import Batch, BatchItem, MicroBatcher
from .cache import ResultCache
from .faults import ServiceFaultPlan, ServiceFaults
from .index import LinkStatusEntry, LinkStatusIndex
from .server import LinkStatusService, Response, ServerConfig, ServiceResult
from .workload import Request, WorkloadConfig, generate_workload

__all__ = [
    "AdmissionController",
    "Batch",
    "BatchItem",
    "LinkStatusEntry",
    "LinkStatusIndex",
    "LinkStatusService",
    "MicroBatcher",
    "Request",
    "Response",
    "ResultCache",
    "ServerConfig",
    "ServiceFaultPlan",
    "ServiceFaults",
    "ServiceResult",
    "TokenBucket",
    "WorkloadConfig",
    "generate_workload",
]
