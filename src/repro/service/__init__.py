"""repro.service — a deterministic link-status query service.

The batch pipeline (:mod:`repro.analysis.study`) answers "what is the
state of every studied link" once, offline. This package turns that
answer into a *serving* system — the shape a production link-repair
bot or dashboard would consume — without giving up the repo's core
property: every response, latency, and overload decision is an exact,
replayable function of ``(study report, config, workload seed)``.

The stack, front to back:

- :class:`~repro.service.workload.WorkloadConfig` /
  :func:`~repro.service.workload.generate_workload` — seeded
  Zipf-over-URLs traffic with Poisson / flash-crowd / diurnal
  arrivals and optional multi-tenant labeling;
- :class:`~repro.service.admission.AdmissionController` — token-bucket
  rate limiting with a bounded FIFO queue and deterministic shedding;
- :class:`~repro.service.batcher.MicroBatcher` — micro-batching with
  duplicate-query coalescing;
- :class:`~repro.service.cache.ResultCache` — LRU + virtual-TTL result
  cache;
- :class:`~repro.service.index.LinkStatusIndex` — the immutable,
  content-hash-versioned snapshot built from a completed study;
- :class:`~repro.service.server.LinkStatusService` — the event loop
  tying them together, in serial or thread-pool mode, traced via
  :mod:`repro.obs` and chaos-testable via
  :class:`~repro.service.faults.ServiceFaultPlan`;
- :class:`~repro.service.cluster.ClusterService` — the replicated,
  sharded tier: the index rendezvous-partitioned by registrable
  domain into N shards × R replicas behind a deterministic router
  (:mod:`repro.service.router`), byte-identical to the single node
  when faults are off and degrading only in latency and shed rate
  under replica-level chaos.
"""

from .admission import AdmissionController, TokenBucket
from .audit import AuditLog, AuditRecord
from .audit import read_jsonl as read_audit_jsonl
from .batcher import Batch, BatchItem, MicroBatcher
from .cache import ResultCache
from .cluster import ClusterConfig, ClusterResult, ClusterService, ShardIndex
from .faults import ReplicaFaultEvent, ServiceFaultPlan, ServiceFaults
from .index import LinkStatusEntry, LinkStatusIndex
from .reconfig import (
    DeltaApply,
    GenerationDelta,
    GenerationSwap,
    RebalancePlan,
    ReconfigError,
    ReconfigEvent,
    Reconfiguration,
    apply_delta,
    normalize_schedule,
    plan_rebalance,
    snapshot_wire_bytes,
)
from .router import (
    POLICIES,
    ReplicaPicker,
    TenantQuotas,
    rendezvous_owner,
    rendezvous_score,
    routing_key,
)
from .server import (
    LinkStatusService,
    Response,
    ServerConfig,
    ServiceResult,
    key_latency_ms,
)
from .workload import PATTERNS, Request, WorkloadConfig, generate_workload

__all__ = [
    "AdmissionController",
    "AuditLog",
    "AuditRecord",
    "Batch",
    "BatchItem",
    "ClusterConfig",
    "ClusterResult",
    "ClusterService",
    "DeltaApply",
    "GenerationDelta",
    "GenerationSwap",
    "LinkStatusEntry",
    "LinkStatusIndex",
    "LinkStatusService",
    "MicroBatcher",
    "PATTERNS",
    "POLICIES",
    "RebalancePlan",
    "ReconfigError",
    "ReconfigEvent",
    "Reconfiguration",
    "ReplicaFaultEvent",
    "ReplicaPicker",
    "Request",
    "Response",
    "ResultCache",
    "ServerConfig",
    "ServiceFaultPlan",
    "ServiceFaults",
    "ServiceResult",
    "ShardIndex",
    "TenantQuotas",
    "TokenBucket",
    "WorkloadConfig",
    "apply_delta",
    "generate_workload",
    "key_latency_ms",
    "normalize_schedule",
    "plan_rebalance",
    "read_audit_jsonl",
    "rendezvous_owner",
    "rendezvous_score",
    "routing_key",
    "snapshot_wire_bytes",
]
