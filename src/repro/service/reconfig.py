"""The reconfiguration plane: every index/topology change, one shape.

Before this module, the serving tiers knew exactly one way to change
state: a whole-snapshot generation swap that waited for no one, and
shards that could never move. This module refactors *all* index and
topology change into a single copy-on-write
:class:`Reconfiguration` abstraction with three instances:

- :class:`GenerationSwap` — install a full
  :class:`~repro.service.index.LinkStatusIndex` generation;
- :class:`DeltaApply` — install a generation by applying a
  content-hash-versioned :class:`GenerationDelta` (upserts + removals
  for the dirty URL set) to the currently serving generation,
  producing an index **byte-identical** to the full snapshot
  (:func:`apply_delta` verifies the content hash and refuses to
  diverge);
- :class:`RebalancePlan` — move routing keys (registrable domains)
  between shards mid-replay, same generation, ownership actually
  migrating.

Every instance supports two application disciplines:

- **atomic** (``drain=False``) — the open batch force-flushes at the
  reconfiguration instant under the old binding, then the new binding
  installs; this is the pre-existing swap semantics;
- **drain** (``drain=True``) — each replica finishes its queued batch
  under the old binding at the batch's own flush instant and only
  then rebinds, which is what makes per-replica *rolling* swaps
  possible: replicas cut over one by one as their batches close, and
  no response ever mixes generations because every response is
  labeled with (and derived from) the binding that actually computed
  it. Drains are bounded by the batcher's ``max_wait_ms``.

:func:`normalize_schedule` is the single validation choke point for
``swaps=`` schedules on both serving tiers: it accepts legacy
``(at_ms, index)`` pairs and typed reconfigurations, and rejects
malformed schedules **up front** with :class:`ReconfigError` (a
``ValueError``) instead of failing mid-replay — duplicate ``at_ms``,
non-monotonic target versions (a swap that re-installs the generation
already serving), empty indexes, and broken delta chains.

Applied reconfigurations are recorded as :class:`ReconfigEvent`
entries on the serve result; ``applied_ms - scheduled_ms`` is the
reconfiguration lag the SLO layer grades via
:func:`repro.obs.slo.events_from_reconfigs`.
"""

from __future__ import annotations

import hashlib
import json
from bisect import bisect_left
from dataclasses import dataclass, field

from ..errors import ReproError
from .index import LinkStatusEntry, LinkStatusIndex, _measurement_key
from .router import rendezvous_owner

__all__ = [
    "DeltaApply",
    "GenerationDelta",
    "GenerationSwap",
    "RebalancePlan",
    "ReconfigError",
    "ReconfigEvent",
    "Reconfiguration",
    "apply_delta",
    "normalize_schedule",
    "plan_rebalance",
    "snapshot_wire_bytes",
]

#: Histogram bounds for reconfiguration apply lag (virtual ms): 0 is
#: an atomic apply, anything positive is drain time, bounded by the
#: batcher's ``max_wait_ms``.
RECONFIG_LAG_BOUNDS_MS: tuple[float, ...] = (
    0.0, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0,
)


class ReconfigError(ReproError, ValueError):
    """A malformed or inapplicable reconfiguration.

    Subclasses :class:`ValueError` so callers that guarded the legacy
    ``swaps=`` validation (`"must be strictly increasing"`) keep
    working unchanged.
    """


# -- wire accounting --------------------------------------------------------------


def _entry_wire(entry: LinkStatusEntry) -> dict:
    """What shipping one entry to a replica costs on the wire.

    The measurement projection (exactly the fields the version hash
    covers) plus the routing fields (``hostname``/``domain``) a
    replica needs to rebuild its lookup tables. Provenance cost
    counters stay out: they are informational and never shipped.
    """
    wire = _measurement_key(entry)
    wire["hostname"] = entry.hostname
    wire["domain"] = entry.domain
    return wire


def _canonical_bytes(payload: object) -> bytes:
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


def snapshot_wire_bytes(index: LinkStatusIndex) -> int:
    """Bytes to ship one full generation snapshot to a replica.

    The same codec as :meth:`GenerationDelta.wire_bytes`, so "delta
    bytes vs snapshot bytes" is an apples-to-apples comparison.
    """
    return len(
        _canonical_bytes(
            {
                "version": index.version,
                "entries": [_entry_wire(e) for e in index.entries],
                "gap_days": list(index.gap_days),
            }
        )
    )


def _lis_indexes(values: list[int]) -> set[int]:
    """Indexes of one longest strictly increasing subsequence.

    Survivors on this subsequence keep their base-relative order in
    the target, so :func:`apply_delta`'s in-order fill places them
    correctly without shipping them; everything off it must be pinned.
    """
    tails: list[int] = []  # smallest tail value of an LIS of each length
    tail_index: list[int] = []
    prev = [-1] * len(values)
    for i, value in enumerate(values):
        j = bisect_left(tails, value)
        if j == len(tails):
            tails.append(value)
            tail_index.append(i)
        else:
            tails[j] = value
            tail_index[j] = i
        if j > 0:
            prev[i] = tail_index[j - 1]
    keep: set[int] = set()
    i = tail_index[-1] if tail_index else -1
    while i != -1:
        keep.add(i)
        i = prev[i]
    return keep


# -- generation deltas ------------------------------------------------------------


@dataclass(frozen=True)
class GenerationDelta:
    """The dirty subset between two generations, content-addressed.

    ``upserts`` carry ``(position, entry)`` — the entry's absolute
    position in the target generation's record order — because entry
    order feeds the index content hash: a delta must let a replica
    reconstruct the target's ``entries`` tuple *exactly*, not just
    its membership. Entries absent from ``upserts`` keep their
    relative order from the base generation and fill the remaining
    positions. ``gap_days`` rides along whole (a small aggregate
    tuple that also feeds the hash).

    :meth:`between` verifies self-application at build time: the
    delta it returns is guaranteed to reproduce ``target.version``.
    """

    from_version: str
    to_version: str
    upserts: tuple[tuple[int, LinkStatusEntry], ...]
    removals: tuple[str, ...]
    gap_days: tuple[float, ...]

    @classmethod
    def between(
        cls, base: LinkStatusIndex, target: LinkStatusIndex
    ) -> "GenerationDelta":
        """Diff two generations into the minimal verified delta.

        Upserts are entries whose *measurement* is new or changed
        (provenance-only drift ships nothing — it is not part of the
        version hash or the wire answer), plus unchanged entries
        whose position moved relative to the surviving base order
        (position feeds the hash too, so they must be pinned).
        """
        base_by_url = {entry.url: entry for entry in base.entries}
        target_urls = {entry.url for entry in target.entries}
        removals = tuple(
            entry.url
            for entry in base.entries
            if entry.url not in target_urls
        )
        upserts: list[tuple[int, LinkStatusEntry]] = []
        for position, entry in enumerate(target.entries):
            old = base_by_url.get(entry.url)
            if old is None or _measurement_key(old) != _measurement_key(entry):
                upserts.append((position, entry))
        delta = cls(
            from_version=base.version,
            to_version=target.version,
            upserts=tuple(upserts),
            removals=removals,
            gap_days=tuple(target.gap_days),
        )
        try:
            apply_delta(base, delta)
        except ReconfigError:
            # Surviving entries changed relative order between
            # generations (sample churn reshuffling the record
            # stream). Pin the minimal extra set: survivors on a
            # longest increasing subsequence of target positions
            # still ride along implicitly; only the ones that jumped
            # out of that order need explicit positions.
            upserted = {entry.url for _, entry in delta.upserts}
            position_of = {
                entry.url: position
                for position, entry in enumerate(target.entries)
            }
            chain = [
                (position_of[entry.url], entry)
                for entry in base.entries
                if entry.url in position_of and entry.url not in upserted
            ]
            keep = _lis_indexes([position for position, _ in chain])
            pinned = [
                pair for i, pair in enumerate(chain) if i not in keep
            ]
            delta = cls(
                from_version=base.version,
                to_version=target.version,
                upserts=tuple(sorted(upserts + pinned)),
                removals=removals,
                gap_days=tuple(target.gap_days),
            )
            apply_delta(base, delta)
        return delta

    @property
    def delta_id(self) -> str:
        """Content hash of the delta payload (mirrors ``lsi-`` ids)."""
        digest = hashlib.sha256(_canonical_bytes(self._payload()))
        return f"gd-{digest.hexdigest()[:16]}"

    def _payload(self) -> dict:
        return {
            "from": self.from_version,
            "to": self.to_version,
            "upserts": [
                [position, _entry_wire(entry)]
                for position, entry in self.upserts
            ],
            "removals": list(self.removals),
            "gap_days": list(self.gap_days),
        }

    def wire_bytes(self) -> int:
        """Bytes to ship this delta to a replica (canonical JSON)."""
        return len(_canonical_bytes(self._payload()))

    def summary(self) -> str:
        return (
            f"delta {self.delta_id} {self.from_version} -> "
            f"{self.to_version}: {len(self.upserts)} upserts, "
            f"{len(self.removals)} removals, {self.wire_bytes()} bytes"
        )


def apply_delta(
    base: LinkStatusIndex, delta: GenerationDelta
) -> LinkStatusIndex:
    """Apply ``delta`` to ``base``, producing the target generation.

    The result is **byte-identical** to the full snapshot the delta
    was built from: same entry order, same aggregates, and therefore
    the same content-hash ``version`` — verified here, with a
    :class:`ReconfigError` rather than a silently divergent index on
    any mismatch.
    """
    if base.version != delta.from_version:
        raise ReconfigError(
            f"delta applies to {delta.from_version}, but the serving "
            f"generation is {base.version}"
        )
    removed = set(delta.removals)
    upserted = {entry.url for _, entry in delta.upserts}
    survivors = [
        entry
        for entry in base.entries
        if entry.url not in removed and entry.url not in upserted
    ]
    total = len(survivors) + len(delta.upserts)
    slots: list[LinkStatusEntry | None] = [None] * total
    for position, entry in delta.upserts:
        if not (0 <= position < total) or slots[position] is not None:
            raise ReconfigError(
                f"corrupt delta {delta.delta_id}: upsert position "
                f"{position} out of range or duplicated"
            )
        slots[position] = entry
    fill = iter(survivors)
    entries = tuple(
        slot if slot is not None else next(fill) for slot in slots
    )
    index = LinkStatusIndex(entries=entries, gap_days=delta.gap_days)
    if index.version != delta.to_version:
        raise ReconfigError(
            f"delta application diverged: expected {delta.to_version}, "
            f"built {index.version}"
        )
    return index


# -- the reconfiguration instances ------------------------------------------------


@dataclass(frozen=True)
class Reconfiguration:
    """One scheduled, copy-on-write change to a serving tier.

    Subclasses say *what* changes (generation, delta, shard
    ownership); ``drain`` says *how* it lands (rolling per-replica
    drains vs one atomic force-flush). The serving tiers treat every
    instance identically: resolve the new binding, then either
    force-flush-and-rebind or let each replica's open batch close
    under the old binding first.
    """

    at_ms: float
    drain: bool = False

    @property
    def kind(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class GenerationSwap(Reconfiguration):
    """Install a full index generation (the classic swap)."""

    index: LinkStatusIndex = None  # type: ignore[assignment]

    @property
    def kind(self) -> str:
        return "swap"


@dataclass(frozen=True)
class DeltaApply(Reconfiguration):
    """Install a generation by applying a delta to the serving one."""

    delta: GenerationDelta = None  # type: ignore[assignment]

    @property
    def kind(self) -> str:
        return "delta"


@dataclass(frozen=True)
class RebalancePlan(Reconfiguration):
    """Migrate routing keys between shards, same generation.

    ``moves`` maps routing keys (registrable domains for URL/domain
    queries) to their new owning shard. Applying a plan updates the
    router's ownership table, re-partitions the serving generation's
    shard views, and rebinds the affected shards' replicas through
    the same drain machinery swaps use. The generation does not
    change, so caches stay warm (a cached body is a pure function of
    (generation, key) — it cannot go stale within a generation) and
    responses keep their version labels.

    Defaults to ``drain=True``: migrating ownership under an open
    batch atomically would strand the batch's requests on a replica
    that no longer owns them.
    """

    drain: bool = True
    moves: tuple[tuple[str, str], ...] = ()

    @property
    def kind(self) -> str:
        return "rebalance"


def plan_rebalance(
    keys,
    old_shards: tuple[str, ...],
    new_shards: tuple[str, ...],
    at_ms: float,
    drain: bool = True,
) -> RebalancePlan:
    """The HRW-minimal plan for a shard-set change.

    Rendezvous hashing's minimal-disruption property, operationalized:
    the plan moves exactly the keys whose rendezvous owner differs
    between the two shard sets — when a shard is added, only keys the
    new shard wins move (onto it); when one is removed, only its keys
    move (off it); every other key stays put. Pinned by hypothesis in
    the test suite.
    """
    moves = tuple(
        (key, rendezvous_owner(key, new_shards))
        for key in keys
        if rendezvous_owner(key, old_shards)
        != rendezvous_owner(key, new_shards)
    )
    return RebalancePlan(at_ms=at_ms, drain=drain, moves=moves)


# -- applied-reconfiguration records ----------------------------------------------


@dataclass(frozen=True, slots=True)
class ReconfigEvent:
    """One applied reconfiguration, as the serving tier saw it.

    ``applied_ms`` is when the *last* binding cut over: equal to
    ``scheduled_ms`` for atomic applies, later by up to the batcher's
    ``max_wait_ms`` for drained ones. The difference is the
    reconfiguration lag the SLO layer grades.
    """

    kind: str
    scheduled_ms: float
    applied_ms: float
    from_version: str
    to_version: str
    #: Batches that finished under the old binding after the
    #: reconfiguration instant (0 for atomic applies).
    drained_batches: int = 0
    #: Routing keys migrated (rebalances only).
    moved_keys: int = 0

    @property
    def lag_ms(self) -> float:
        """Schedule-to-cutover lag (the drain time)."""
        return self.applied_ms - self.scheduled_ms

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "scheduled_ms": self.scheduled_ms,
            "applied_ms": self.applied_ms,
            "lag_ms": self.lag_ms,
            "from_version": self.from_version,
            "to_version": self.to_version,
            "drained_batches": self.drained_batches,
            "moved_keys": self.moved_keys,
        }


# -- schedule validation ----------------------------------------------------------


def normalize_schedule(
    swaps,
    initial: LinkStatusIndex,
    *,
    allow_rebalance: bool = False,
    shard_ids: tuple[str, ...] = (),
) -> list[Reconfiguration]:
    """Validate a ``swaps=`` schedule up front; return typed ops.

    Accepts legacy ``(at_ms, index)`` pairs (converted to atomic
    :class:`GenerationSwap` ops) and :class:`Reconfiguration`
    instances, sorted by schedule time. Raises :class:`ReconfigError`
    — *before* the replay starts — for every malformation that used
    to surface as a mid-replay assertion or silent corruption:

    - duplicate ``at_ms`` (two reconfigurations cannot share an
      instant; the tie would be resolved by list order, which callers
      do not control after sorting);
    - an empty index (a generation with no entries can answer
      nothing; installing one is always a schedule bug);
    - non-monotonic versions: a swap or delta whose target is the
      generation already serving at that point in the schedule
      (a no-op "swap" that would still wipe every cache);
    - a delta whose ``from_version`` is not the generation that will
      be serving when it lands (broken delta chain);
    - a rebalance on a tier that has no shards, with no moves, with
      duplicate keys, or targeting an unknown shard id.
    """
    if not swaps:
        return []
    ops: list[Reconfiguration] = []
    for item in swaps:
        if isinstance(item, Reconfiguration):
            ops.append(item)
        else:
            try:
                at_ms, index = item
            except (TypeError, ValueError):
                raise ReconfigError(
                    f"schedule entries must be (at_ms, index) pairs or "
                    f"Reconfiguration instances, got {item!r}"
                ) from None
            ops.append(GenerationSwap(at_ms=float(at_ms), index=index))
    ops.sort(key=lambda op: op.at_ms)
    for earlier, later in zip(ops, ops[1:]):
        if later.at_ms <= earlier.at_ms:
            raise ReconfigError(
                f"swap schedule must be strictly increasing: "
                f"{earlier.kind} and {later.kind} both at "
                f"{later.at_ms}ms"
            )
    current = initial.version
    for op in ops:
        if isinstance(op, GenerationSwap):
            if op.index is None or len(op.index) == 0:
                raise ReconfigError(
                    f"swap at {op.at_ms}ms installs an empty index"
                )
            if op.index.version == current:
                raise ReconfigError(
                    f"swap at {op.at_ms}ms re-installs the serving "
                    f"generation {current} (versions must move)"
                )
            current = op.index.version
        elif isinstance(op, DeltaApply):
            if op.delta is None:
                raise ReconfigError(
                    f"delta apply at {op.at_ms}ms carries no delta"
                )
            if op.delta.from_version != current:
                raise ReconfigError(
                    f"broken delta chain at {op.at_ms}ms: delta "
                    f"applies to {op.delta.from_version}, but "
                    f"{current} will be serving"
                )
            if op.delta.to_version == current:
                raise ReconfigError(
                    f"no-op delta at {op.at_ms}ms: {current} -> "
                    f"{current}"
                )
            current = op.delta.to_version
        elif isinstance(op, RebalancePlan):
            if not allow_rebalance:
                raise ReconfigError(
                    "rebalance scheduled on a tier without shards "
                    "(single-node services have nothing to move)"
                )
            if not op.moves:
                raise ReconfigError(
                    f"rebalance at {op.at_ms}ms moves nothing"
                )
            seen: set[str] = set()
            for key, target in op.moves:
                if key in seen:
                    raise ReconfigError(
                        f"rebalance at {op.at_ms}ms moves key "
                        f"{key!r} twice"
                    )
                seen.add(key)
                if target not in shard_ids:
                    raise ReconfigError(
                        f"rebalance at {op.at_ms}ms targets unknown "
                        f"shard {target!r}; known: {shard_ids}"
                    )
        else:  # pragma: no cover - future instance kinds
            raise ReconfigError(f"unknown reconfiguration {op!r}")
    return ops
