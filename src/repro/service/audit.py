"""The per-request audit trail: every response, attributable.

A :class:`Response` says what a client saw; an :class:`AuditRecord`
says *why* — which shard and replica served it, how many dispatch
attempts it took, which replica faults re-dispatched it on the way,
whether it was the carrier of a fresh index lookup or rode a
batchmate's, and, for rejected requests, exactly which gate turned it
away (admission rate limit, tenant quota, or replica unavailability).

The service and cluster emit one record per response when handed an
:class:`AuditLog` (``audit=None``, the default, emits nothing and
leaves the serving loop byte-identical to an unaudited run). The log
serializes to JSONL sorted by request id with canonical JSON per
line, so the same seeded run always writes the same bytes — the audit
log is part of the determinism contract, not an exception to it.

``scripts/slo_report.py`` joins this log with the span trace and a
metrics snapshot to grade SLOs and attribute chaos damage; the
``redispatches`` blame trail (``"s0r1:crash"``-style entries recorded
at every forced re-dispatch) is what lets it charge burned error
budget to the replica and fault channel that caused it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

__all__ = ["AuditLog", "AuditRecord", "read_jsonl"]


@dataclass(frozen=True, slots=True)
class AuditRecord:
    """One served (or shed) request, fully attributed.

    Attributes:
        request_id: the workload's arrival-ordered id.
        tenant: traffic source (empty for single-tenant runs).
        kind / target: the query itself.
        status: HTTP-style outcome code (200/404/400/429/503).
        outcome: ``"ok"`` (200), ``"error"`` (4xx answer), or
            ``"shed"`` (429/503 — no answer).
        reason: why a shed happened: ``"admission"`` (rate/queue),
            ``"quota"`` (tenant bucket), ``"unavailable"`` (gave up
            after ``max_dispatch_attempts``); empty for answers.
        source: how the answer was produced (``index`` / ``cache`` /
            ``coalesced`` / ``shed`` / ``quota`` — mirrors
            :attr:`Response.source`).
        coalesce: the request's role in its batch group: ``"carrier"``
            (paid the fresh lookup), ``"hit"`` (batch-time cache hit
            carrier), ``"rider"`` (shared a batchmate's result), empty
            for sheds.
        shard / replica: where the answer came from (empty on the
            single-node service and for sheds).
        attempts: dispatch attempts consumed (1 for a first-try
            answer; 0 for front-door sheds that never dispatched).
        redispatches: blame trail of ``"replica:channel"`` fault
            events that forced re-dispatches, in occurrence order.
        arrival_ms / start_ms / completion_ms: the exact virtual
            timeline (identical to the :class:`Response` fields).
        index_version: the snapshot that answered.
    """

    request_id: int
    tenant: str
    kind: str
    target: str
    status: int
    outcome: str
    reason: str
    source: str
    coalesce: str
    shard: str
    replica: str
    attempts: int
    redispatches: tuple[str, ...]
    arrival_ms: float
    start_ms: float
    completion_ms: float
    index_version: str

    @property
    def latency_ms(self) -> float:
        return self.completion_ms - self.arrival_ms

    def to_event(self) -> dict:
        """The JSONL event for this record (lists for tuples)."""
        return {
            "rid": self.request_id,
            "tenant": self.tenant,
            "kind": self.kind,
            "target": self.target,
            "status": self.status,
            "outcome": self.outcome,
            "reason": self.reason,
            "source": self.source,
            "coalesce": self.coalesce,
            "shard": self.shard,
            "replica": self.replica,
            "attempts": self.attempts,
            "redispatches": list(self.redispatches),
            "arrival_ms": self.arrival_ms,
            "start_ms": self.start_ms,
            "completion_ms": self.completion_ms,
            "index_version": self.index_version,
        }


class AuditLog:
    """Collects one serve run's audit records; writes canonical JSONL.

    Emission order inside the serving loop follows completion order,
    which is deterministic — but :meth:`lines` and
    :meth:`write_jsonl` additionally sort by request id so the
    on-disk artifact is trivially diffable against a response list
    and byte-identical across serial/thread serve modes.

    The serving loop records through :meth:`emit`, which buffers one
    compact tuple of already-in-hand references per request;
    :class:`AuditRecord` objects materialize lazily on first read
    (:attr:`records`, :meth:`lines`). That keeps the audited hot path
    to a list append — the record construction cost lands on the
    consumer, off the serving path, exactly like a production
    telemetry ring buffer.
    """

    def __init__(self) -> None:
        self._records: list[AuditRecord] = []
        #: deferred emissions: (request, status, outcome, reason,
        #: source, coalesce, shard, replica, attempts, redispatches,
        #: start_ms, completion_ms, index_version)
        self._pending: list[tuple] = []
        #: Callables that backfill deferred emissions on first read
        #: (the serving tier registers its observation-log expansion).
        self._pending_sources: list = []

    def __len__(self) -> int:
        return len(self.records)

    def add_pending_source(self, source) -> None:
        """Register a callable that emits deferred records when the
        log is first read (mirrors
        :meth:`~repro.obs.metrics.MetricsRegistry.add_pending_source`)."""
        self._pending_sources.append(source)

    @property
    def records(self) -> list[AuditRecord]:
        """Every record emitted so far (materializing any buffered)."""
        if self._pending_sources:
            sources, self._pending_sources = self._pending_sources, []
            for source in sources:
                source()
        if self._pending:
            self._drain()
        return self._records

    def _drain(self) -> None:
        pending, self._pending = self._pending, []
        self._records.extend(
            AuditRecord(
                request_id=request.request_id,
                tenant=request.tenant,
                kind=request.kind,
                target=request.target,
                status=status,
                outcome=outcome,
                reason=reason,
                source=source,
                coalesce=coalesce,
                shard=shard,
                replica=replica,
                attempts=attempts,
                redispatches=redispatches,
                arrival_ms=request.arrival_ms,
                start_ms=start_ms,
                completion_ms=completion_ms,
                index_version=index_version,
            )
            for (
                request, status, outcome, reason, source, coalesce,
                shard, replica, attempts, redispatches,
                start_ms, completion_ms, index_version,
            ) in pending
        )

    def add(self, record: AuditRecord) -> None:
        if self._pending:
            self._drain()
        self._records.append(record)

    def emit(
        self,
        request,
        status: int,
        outcome: str,
        reason: str,
        source: str,
        coalesce: str,
        shard: str,
        replica: str,
        attempts: int,
        redispatches: tuple[str, ...],
        start_ms: float,
        completion_ms: float,
        index_version: str,
    ) -> None:
        """Buffer one emission without constructing the record yet.

        ``request`` supplies id/tenant/kind/target/arrival; requests
        are immutable, so holding the reference is safe. This is the
        serving loop's entry point — a single tuple append.
        """
        self._pending.append((
            request, status, outcome, reason, source, coalesce,
            shard, replica, attempts, redispatches,
            start_ms, completion_ms, index_version,
        ))

    def lines(self) -> list[str]:
        """Canonical JSONL lines, sorted by request id."""
        ordered = sorted(self.records, key=lambda r: r.request_id)
        return [
            json.dumps(
                record.to_event(), sort_keys=True, separators=(",", ":")
            )
            for record in ordered
        ]

    def write_jsonl(self, path) -> int:
        """Write every record to ``path``; returns the record count."""
        with open(path, "w", encoding="utf-8") as handle:
            for line in self.lines():
                handle.write(line)
                handle.write("\n")
        return len(self)


def read_jsonl(path) -> list[dict]:
    """Load every audit event from a JSONL file, as plain dicts."""
    events: list[dict] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events
