"""Seeded synthetic traffic: Zipf-over-URLs, shaped arrival processes.

Serving benchmarks are only comparable if the load is replayable, so
the workload is a pure function of ``(url universe, WorkloadConfig)``:
request popularity follows a truncated Zipf over the studied URLs
(the head reuse a result cache feeds on), arrivals follow a seeded
arrival process at the configured offered load, and a configurable
slice of traffic exercises the aggregate endpoints and unknown-URL
404 path. Two calls with the same inputs return identical request
streams, which is what lets the overload tests pin the exact shed set
and the benchmark sweep offered load as its only moving part.

Three arrival patterns, all on the same seeded draw sequence:

- ``poisson`` — homogeneous Poisson at ``offered_rps`` (the default,
  byte-compatible with every stream generated before patterns
  existed);
- ``flash`` — Poisson whose rate multiplies by ``flash_factor``
  during a window around the middle of the run (a flash crowd: a
  linked-from-the-front-page surge);
- ``diurnal`` — Poisson whose rate swings sinusoidally by
  ``diurnal_amplitude`` over ``diurnal_cycles`` cycles (the day/night
  traffic curve a global service actually sees).

Multi-tenant runs name their tenants in ``tenants``; each request is
then assigned one (seeded, uniform), which is what the cluster tier's
per-tenant admission quotas meter on.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from dataclasses import dataclass

from ..rng import Stream, derive_seed

__all__ = ["PATTERNS", "Request", "WorkloadConfig", "generate_workload"]

#: Aggregate endpoints the mixed workload cycles through.
_AGGREGATE_TARGETS = (
    ("bucket_counts", ""),
    ("quantile", "posting_year:0.5"),
    ("quantile", "urls_per_domain:0.9"),
)

#: Arrival patterns :func:`generate_workload` understands.
PATTERNS: tuple[str, ...] = ("poisson", "flash", "diurnal")


@dataclass(frozen=True, slots=True)
class Request:
    """One query in flight.

    Attributes:
        request_id: arrival-ordered id (ties in arrival time break on
            it, making request order total and deterministic).
        arrival_ms: virtual arrival instant, ms since workload epoch.
        kind: ``"url"``, ``"domain"``, ``"bucket_counts"``, or
            ``"quantile"``.
        target: the URL / domain / ``"metric:q"`` the kind applies to.
        tenant: the traffic source this request bills to (empty for
            single-tenant runs; quotas ignore unnamed tenants).
    """

    request_id: int
    arrival_ms: float
    kind: str
    target: str
    tenant: str = ""

    @property
    def key(self) -> str:
        """Coalescing/cache key: two requests with equal keys share work."""
        return f"{self.kind}:{self.target}"


@dataclass(frozen=True)
class WorkloadConfig:
    """Shape of one synthetic traffic run."""

    n_requests: int = 1000
    offered_rps: float = 500.0
    zipf_alpha: float = 1.1
    seed: int = 0
    #: Share of requests hitting aggregate endpoints instead of URLs.
    aggregate_fraction: float = 0.0
    #: Share of URL requests probing URLs outside the index (404 path).
    unknown_fraction: float = 0.0
    #: Arrival process: ``poisson`` (default), ``flash``, ``diurnal``.
    pattern: str = "poisson"
    #: Flash crowd: rate multiplier inside the surge window, and the
    #: window itself as fractions of the expected run duration.
    flash_factor: float = 5.0
    flash_start_fraction: float = 0.45
    flash_duration_fraction: float = 0.1
    #: Diurnal cycle: relative amplitude of the sinusoidal rate swing
    #: and how many full cycles the expected run duration spans.
    diurnal_amplitude: float = 0.6
    diurnal_cycles: float = 2.0
    #: Tenant names to spread traffic over (empty = single-tenant).
    tenants: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.n_requests < 0:
            raise ValueError("n_requests must be >= 0")
        if self.offered_rps <= 0:
            raise ValueError("offered_rps must be positive")
        if not 0.0 <= self.aggregate_fraction <= 1.0:
            raise ValueError("aggregate_fraction must be in [0, 1]")
        if not 0.0 <= self.unknown_fraction <= 1.0:
            raise ValueError("unknown_fraction must be in [0, 1]")
        if self.pattern not in PATTERNS:
            raise ValueError(
                f"unknown arrival pattern {self.pattern!r}; known: {PATTERNS}"
            )
        if self.flash_factor < 1.0:
            raise ValueError("flash_factor must be >= 1")
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise ValueError("diurnal_amplitude must be in [0, 1)")

    @property
    def expected_duration_ms(self) -> float:
        """The run's nominal span at the base rate (patterns key off it)."""
        return self.n_requests / self.offered_rps * 1000.0

    def rate_at(self, clock_ms: float) -> float:
        """The instantaneous offered rate (rps) at ``clock_ms`` — pure."""
        if self.pattern == "flash":
            start = self.flash_start_fraction * self.expected_duration_ms
            end = start + (
                self.flash_duration_fraction * self.expected_duration_ms
            )
            if start <= clock_ms < end:
                return self.offered_rps * self.flash_factor
            return self.offered_rps
        if self.pattern == "diurnal":
            phase = (
                2.0
                * math.pi
                * self.diurnal_cycles
                * clock_ms
                / self.expected_duration_ms
                if self.expected_duration_ms > 0
                else 0.0
            )
            return self.offered_rps * (
                1.0 + self.diurnal_amplitude * math.sin(phase)
            )
        return self.offered_rps


def _zipf_cdf(n: int, alpha: float) -> list[float]:
    """Cumulative normalized harmonic weights for ranks 1..n.

    Precomputed once so each draw is a ``bisect`` instead of the
    O(n) scan :meth:`repro.rng.Stream.zipf` performs per call.
    """
    acc = 0.0
    cdf: list[float] = []
    for k in range(1, n + 1):
        acc += 1.0 / (k ** alpha)
        cdf.append(acc)
    total = cdf[-1]
    return [value / total for value in cdf]


def generate_workload(
    urls: list[str] | tuple[str, ...], config: WorkloadConfig
) -> tuple[Request, ...]:
    """The seeded request stream for one serving run.

    ``urls`` is the query universe in a stable order (usually
    ``index.entries`` order); rank 1 of the Zipf is ``urls[0]``, so
    the popular head is the front of the studied sample. The draw
    sequence is pattern- and tenant-stable: a default config consumes
    exactly the draws the pre-pattern generator consumed, so every
    previously pinned stream replays unchanged.
    """
    if not urls:
        raise ValueError("workload needs a non-empty URL universe")
    stream = Stream(
        derive_seed(config.seed, "service.workload"), name="service.workload"
    )
    cdf = _zipf_cdf(len(urls), config.zipf_alpha)

    requests: list[Request] = []
    clock_ms = 0.0
    for request_id in range(config.n_requests):
        rate = config.rate_at(clock_ms)
        clock_ms += stream.expovariate(rate / 1000.0)
        if stream.random() < config.aggregate_fraction:
            kind, target = _AGGREGATE_TARGETS[
                request_id % len(_AGGREGATE_TARGETS)
            ]
        elif stream.random() < config.unknown_fraction:
            kind = "url"
            target = f"http://unknown-{stream.randrange(1_000_000)}.invalid/"
        else:
            kind = "url"
            rank = bisect_left(cdf, stream.random())
            target = urls[min(rank, len(urls) - 1)]
        tenant = (
            config.tenants[stream.randrange(len(config.tenants))]
            if config.tenants
            else ""
        )
        requests.append(
            Request(
                request_id=request_id,
                arrival_ms=clock_ms,
                kind=kind,
                target=target,
                tenant=tenant,
            )
        )
    return tuple(requests)
