"""Seeded synthetic traffic: Zipf-over-URLs, Poisson arrivals.

Serving benchmarks are only comparable if the load is replayable, so
the workload is a pure function of ``(url universe, WorkloadConfig)``:
request popularity follows a truncated Zipf over the studied URLs
(the head reuse a result cache feeds on), arrivals follow a seeded
Poisson process at the configured offered load, and a configurable
slice of traffic exercises the aggregate endpoints and unknown-URL
404 path. Two calls with the same inputs return identical request
streams, which is what lets the overload tests pin the exact shed set
and the benchmark sweep offered load as its only moving part.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass

from ..rng import Stream, derive_seed

__all__ = ["Request", "WorkloadConfig", "generate_workload"]

#: Aggregate endpoints the mixed workload cycles through.
_AGGREGATE_TARGETS = (
    ("bucket_counts", ""),
    ("quantile", "posting_year:0.5"),
    ("quantile", "urls_per_domain:0.9"),
)


@dataclass(frozen=True, slots=True)
class Request:
    """One query in flight.

    Attributes:
        request_id: arrival-ordered id (ties in arrival time break on
            it, making request order total and deterministic).
        arrival_ms: virtual arrival instant, ms since workload epoch.
        kind: ``"url"``, ``"domain"``, ``"bucket_counts"``, or
            ``"quantile"``.
        target: the URL / domain / ``"metric:q"`` the kind applies to.
    """

    request_id: int
    arrival_ms: float
    kind: str
    target: str

    @property
    def key(self) -> str:
        """Coalescing/cache key: two requests with equal keys share work."""
        return f"{self.kind}:{self.target}"


@dataclass(frozen=True)
class WorkloadConfig:
    """Shape of one synthetic traffic run."""

    n_requests: int = 1000
    offered_rps: float = 500.0
    zipf_alpha: float = 1.1
    seed: int = 0
    #: Share of requests hitting aggregate endpoints instead of URLs.
    aggregate_fraction: float = 0.0
    #: Share of URL requests probing URLs outside the index (404 path).
    unknown_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.n_requests < 0:
            raise ValueError("n_requests must be >= 0")
        if self.offered_rps <= 0:
            raise ValueError("offered_rps must be positive")
        if not 0.0 <= self.aggregate_fraction <= 1.0:
            raise ValueError("aggregate_fraction must be in [0, 1]")
        if not 0.0 <= self.unknown_fraction <= 1.0:
            raise ValueError("unknown_fraction must be in [0, 1]")


def _zipf_cdf(n: int, alpha: float) -> list[float]:
    """Cumulative normalized harmonic weights for ranks 1..n.

    Precomputed once so each draw is a ``bisect`` instead of the
    O(n) scan :meth:`repro.rng.Stream.zipf` performs per call.
    """
    acc = 0.0
    cdf: list[float] = []
    for k in range(1, n + 1):
        acc += 1.0 / (k ** alpha)
        cdf.append(acc)
    total = cdf[-1]
    return [value / total for value in cdf]


def generate_workload(
    urls: list[str] | tuple[str, ...], config: WorkloadConfig
) -> tuple[Request, ...]:
    """The seeded request stream for one serving run.

    ``urls`` is the query universe in a stable order (usually
    ``index.entries`` order); rank 1 of the Zipf is ``urls[0]``, so
    the popular head is the front of the studied sample.
    """
    if not urls:
        raise ValueError("workload needs a non-empty URL universe")
    stream = Stream(
        derive_seed(config.seed, "service.workload"), name="service.workload"
    )
    cdf = _zipf_cdf(len(urls), config.zipf_alpha)
    mean_gap_ms = 1000.0 / config.offered_rps

    requests: list[Request] = []
    clock_ms = 0.0
    for request_id in range(config.n_requests):
        clock_ms += stream.expovariate(1.0 / mean_gap_ms)
        if stream.random() < config.aggregate_fraction:
            kind, target = _AGGREGATE_TARGETS[
                request_id % len(_AGGREGATE_TARGETS)
            ]
        elif stream.random() < config.unknown_fraction:
            kind = "url"
            target = f"http://unknown-{stream.randrange(1_000_000)}.invalid/"
        else:
            kind = "url"
            rank = bisect_left(cdf, stream.random())
            target = urls[min(rank, len(urls) - 1)]
        requests.append(
            Request(
                request_id=request_id,
                arrival_ms=clock_ms,
                kind=kind,
                target=target,
            )
        )
    return tuple(requests)
