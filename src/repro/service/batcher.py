"""Request coalescing and micro-batching on the virtual clock.

The serving analogue of the exec layer's memo caches: per-URL index
lookups repeat heavily under Zipf traffic, and duplicate *in-flight*
queries — several requests for one URL admitted into the same batch —
should share one computation, not race to repeat it.

:class:`MicroBatcher` accumulates admitted requests into a batch that
flushes when it reaches ``max_batch`` items or when ``max_wait_ms``
has elapsed (virtual time) since the batch opened, whichever comes
first. A flushed :class:`Batch` exposes :meth:`Batch.groups`: its
items grouped by query key in first-arrival order — one group is one
index computation, however many requests ride it.

The batcher never reads a clock of its own; the server pushes time in
via ``ready_ms`` arguments and asks :attr:`deadline_ms` when deciding
what happens next. That inversion is what keeps batch boundaries —
and therefore coalescing counts — exactly reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..obs.metrics import MetricsRegistry

__all__ = ["Batch", "BatchItem", "MicroBatcher"]

#: Histogram bounds for batch sizes (batches are small by design).
BATCH_SIZE_BOUNDS: tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64)


@dataclass(frozen=True, slots=True)
class BatchItem:
    """One admitted request waiting in a batch.

    ``ready_ms`` is the instant its service token accrued — the start
    of its service time for latency accounting.
    """

    request: object
    ready_ms: float


@dataclass(frozen=True, slots=True)
class Batch:
    """A flushed batch: its items and the instant it flushed."""

    items: tuple[BatchItem, ...]
    opened_ms: float
    flush_ms: float

    def __len__(self) -> int:
        return len(self.items)

    def groups(self) -> dict[str, list[BatchItem]]:
        """Items grouped by query key, in first-arrival order.

        Each group is one coalesced computation: the first item is
        the *carrier* (it owns the index-lookup span), the rest share
        its result.
        """
        grouped: dict[str, list[BatchItem]] = {}
        for item in self.items:
            grouped.setdefault(item.request.key, []).append(item)
        return grouped


class MicroBatcher:
    """Accumulates admitted requests; emits flush-ready batches.

    Args:
        max_batch: flush as soon as a batch holds this many items.
        max_wait_ms: flush a partial batch once this much virtual time
            has passed since it opened (the tail-latency bound a real
            micro-batching server promises).
        metrics: registry receiving ``service.batch.*`` counters.
    """

    def __init__(
        self,
        max_batch: int = 8,
        max_wait_ms: float = 5.0,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_wait_ms < 0:
            raise ValueError("max_wait_ms must be >= 0")
        self.max_batch = max_batch
        self.max_wait_ms = max_wait_ms
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._pending: list[BatchItem] = []
        self._opened_ms: float | None = None

    @property
    def pending(self) -> int:
        """Items waiting in the open batch."""
        return len(self._pending)

    @property
    def deadline_ms(self) -> float | None:
        """When the open batch must flush, or None when empty."""
        if self._opened_ms is None:
            return None
        return self._opened_ms + self.max_wait_ms

    def add(self, request, ready_ms: float) -> Batch | None:
        """Admit one request at ``ready_ms``; return a batch if full.

        The returned batch (when the item completed it) flushes at the
        triggering item's ready time — a full batch never waits.
        """
        if self._opened_ms is None:
            self._opened_ms = ready_ms
        self._pending.append(BatchItem(request=request, ready_ms=ready_ms))
        if len(self._pending) >= self.max_batch:
            return self._flush(flush_ms=ready_ms)
        return None

    def flush_due(self, now_ms: float) -> Batch | None:
        """Flush the open batch if its deadline is at or before ``now_ms``."""
        deadline = self.deadline_ms
        if deadline is None or deadline > now_ms:
            return None
        return self._flush(flush_ms=deadline)

    def flush(self) -> Batch | None:
        """Flush whatever is pending at its deadline (end-of-workload)."""
        if self._opened_ms is None:
            return None
        return self._flush(flush_ms=self.deadline_ms)

    def flush_now(self, now_ms: float) -> Batch | None:
        """Flush the open batch at ``now_ms`` regardless of deadline.

        Generation swaps use this: requests admitted before the swap
        instant must complete under the index they were admitted
        against, so the server force-flushes every open batch *at the
        swap instant* — earlier than its deadline — before installing
        the new generation. Callers must not pass a ``now_ms`` before
        the batch opened (time cannot run backwards).
        """
        if self._opened_ms is None:
            return None
        if now_ms < self._opened_ms:
            raise ValueError("flush_now before the batch opened")
        return self._flush(flush_ms=now_ms)

    def drain(self) -> tuple[BatchItem, ...]:
        """Abandon the open batch, returning its items un-executed.

        The cluster tier calls this when a replica crashes or
        partitions: whatever was waiting in its batcher is lost there
        and must be re-dispatched elsewhere. Counts under
        ``service.batch.drained``; deliberately *not* a flush — no
        batch is emitted and no size histogram is observed.
        """
        items = tuple(self._pending)
        self._pending.clear()
        self._opened_ms = None
        if items:
            self.metrics.counter("service.batch.drained").inc(len(items))
        return items

    def _flush(self, flush_ms: float) -> Batch:
        batch = Batch(
            items=tuple(self._pending),
            opened_ms=self._opened_ms,
            flush_ms=flush_ms,
        )
        self._pending.clear()
        self._opened_ms = None
        self.metrics.counter("service.batch.flushes").inc()
        self.metrics.counter("service.batch.items").inc(len(batch))
        self.metrics.histogram(
            "service.batch.size", BATCH_SIZE_BOUNDS
        ).observe(float(len(batch)))
        unique = len({item.request.key for item in batch.items})
        self.metrics.counter("service.batch.coalesced").inc(
            len(batch) - unique
        )
        return batch
