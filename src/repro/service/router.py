"""Deterministic request routing for the sharded service tier.

Three concerns live here, each a pure function of its inputs:

- **Placement** — :func:`rendezvous_owner` implements highest-random-
  weight (HRW / rendezvous) hashing: every ``(key, node)`` pair gets a
  64-bit score from SHA-256 and the key belongs to the highest-scoring
  node. Two properties make it the right partitioner for
  :class:`~repro.service.cluster.ClusterService`: load spreads evenly
  over any node set (each key's scores are i.i.d. uniform), and
  adding or removing a node only remaps the keys that node wins or
  held — no ring segments cascade. Both are pinned by hypothesis
  property tests.
- **Replica selection** — :class:`ReplicaPicker` chooses among a
  shard's *available* replicas under one of three policies:
  ``round_robin`` (per-shard rotation), ``least_outstanding`` (fewest
  dispatched-but-incomplete requests, ties to the lowest replica
  index), and ``power_of_two`` (two seeded-hash candidates, keep the
  less loaded). Every policy is deterministic: rotation counters are
  per-shard state advanced only by dispatch, and the power-of-two
  candidate draw hashes ``(seed, request_id, attempt)`` instead of
  consulting shared RNG state.
- **Tenant quotas** — :class:`TenantQuotas` holds one
  :class:`~repro.service.admission.TokenBucket` per tenant in front of
  the cluster's global admission controller, so one hot tenant
  degrades itself before it degrades the fleet. Requests from tenants
  without a configured quota pass untouched.

Routing keys follow the paper's unit of locality: URL and domain
queries key on the **registrable domain** (the same
:func:`repro.urls.psl.registrable_domain` the dataset records use, so
a URL always routes to the shard holding its entry), aggregate
queries key on their full query key and therefore spread across the
fleet — any shard can answer them from its replicated aggregate
tables.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from ..urls.parse import hostname_of
from ..urls.psl import registrable_domain
from .admission import TokenBucket

__all__ = [
    "POLICIES",
    "ReplicaPicker",
    "TenantQuotas",
    "rendezvous_owner",
    "rendezvous_score",
    "routing_key",
]

#: Replica-selection policies :class:`ReplicaPicker` understands.
POLICIES: tuple[str, ...] = (
    "round_robin",
    "least_outstanding",
    "power_of_two",
)


def rendezvous_score(key: str, node: str) -> int:
    """The 64-bit HRW score of ``key`` on ``node`` (pure)."""
    digest = hashlib.sha256(f"{node}|{key}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def rendezvous_owner(key: str, nodes: tuple[str, ...]) -> str:
    """The node that owns ``key`` under rendezvous hashing.

    The winner is the highest-scoring node; node name breaks the
    (practically impossible) score tie so ownership is total.
    """
    if not nodes:
        raise ValueError("rendezvous_owner needs at least one node")
    return max(nodes, key=lambda node: (rendezvous_score(key, node), node))


def routing_key(kind: str, target: str) -> str:
    """The placement key one request routes by.

    URL queries route by the target's registrable domain — computed
    with the same PSL helper that computed every index entry's
    ``domain`` field, which is what guarantees a studied URL routes to
    the shard that holds its entry. Domain queries route by the domain
    itself. Aggregate queries route by their full query key: they are
    answerable anywhere, so they should spread.
    """
    if kind == "url":
        try:
            return registrable_domain(hostname_of(target))
        except Exception:
            # Unparseable target: any stable key works — the lookup
            # will 404 identically on every shard.
            return target
    if kind == "domain":
        return target
    return f"{kind}:{target}"


class ReplicaPicker:
    """Deterministic replica selection under one named policy.

    ``pick`` receives the candidate replicas (index-ordered, already
    filtered to the available ones) plus each candidate's outstanding
    load, and returns the chosen candidate's position in that list.
    """

    def __init__(self, policy: str, seed: int = 0) -> None:
        if policy not in POLICIES:
            raise ValueError(
                f"unknown router policy {policy!r}; known: {POLICIES}"
            )
        self.policy = policy
        self.seed = seed
        self._rotation: dict[str, int] = {}

    def _two_candidates(
        self, n: int, request_id: int, attempt: int
    ) -> tuple[int, int]:
        """Two seeded-hash candidate positions in ``range(n)`` (pure)."""
        digest = hashlib.sha256(
            f"{self.seed}|p2c|{request_id}|{attempt}".encode("utf-8")
        ).digest()
        first = int.from_bytes(digest[:8], "big") % n
        second = int.from_bytes(digest[8:16], "big") % n
        return first, second

    def pick(
        self,
        shard_id: str,
        candidates: int,
        outstanding: list[int],
        request_id: int,
        attempt: int = 0,
    ) -> int:
        """Choose one of ``candidates`` available replicas.

        Args:
            shard_id: the shard being dispatched to (keys the
                round-robin rotation).
            candidates: how many replicas are available (>= 1).
            outstanding: per-candidate outstanding load, index-aligned.
            request_id: the request being placed (feeds power-of-two).
            attempt: dispatch attempt (re-dispatches redraw candidates).
        """
        if candidates < 1:
            raise ValueError("pick needs at least one candidate")
        if self.policy == "round_robin":
            turn = self._rotation.get(shard_id, 0)
            self._rotation[shard_id] = turn + 1
            return turn % candidates
        if self.policy == "least_outstanding":
            return min(
                range(candidates), key=lambda i: (outstanding[i], i)
            )
        first, second = self._two_candidates(candidates, request_id, attempt)
        return min(first, second, key=lambda i: (outstanding[i], i))


@dataclass
class TenantQuotas:
    """Per-tenant token buckets in front of global admission.

    ``limits`` maps tenant name to ``(rate_rps, burst)``. Tenants
    outside the map are unmetered. The buckets run on the same virtual
    millisecond clock as everything else, so quota verdicts are exact
    and replayable.
    """

    limits: dict[str, tuple[float, float]] = field(default_factory=dict)
    _buckets: dict[str, TokenBucket] = field(init=False, default_factory=dict)

    def __post_init__(self) -> None:
        for tenant, (rate_rps, burst) in sorted(self.limits.items()):
            self._buckets[tenant] = TokenBucket(
                rate_per_s=rate_rps, burst=float(burst)
            )

    @property
    def active(self) -> bool:
        return bool(self._buckets)

    def admit(self, tenant: str, now_ms: float) -> bool:
        """Whether ``tenant`` may pass at ``now_ms`` (consumes a token)."""
        bucket = self._buckets.get(tenant)
        if bucket is None:
            return True
        return bucket.try_take(now_ms)
