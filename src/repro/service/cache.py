"""LRU+TTL result cache for the link-status service.

Index answers are pure given an index version, so a response cached
under one version is exactly the response the index would recompute —
the only reasons to evict are capacity (LRU) and staleness policy
(TTL, so a redeployed index behind the same key space ages out on a
schedule rather than serving forever).

Time is the service's **virtual clock**: milliseconds since the
workload epoch, threaded through every call. Nothing here reads a wall
clock, which is what makes hit/miss/eviction sequences — and therefore
the service benchmarks — exactly reproducible.

Counters live in the shared :class:`~repro.obs.metrics.MetricsRegistry`
under ``service.cache.*``, the same registry the rest of the service
folds into.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any

from ..obs.metrics import MetricsRegistry

__all__ = ["ResultCache"]


class ResultCache:
    """A bounded memo of (key → response body) with per-entry TTL.

    Args:
        capacity: maximum live entries; inserting past it evicts the
            least-recently-used entry (``service.cache.evictions``).
        ttl_ms: entry lifetime on the virtual clock; a hit at or past
            ``stored_at + ttl_ms`` is a miss and expires the entry
            (``service.cache.expirations``). ``None`` never expires.
        metrics: registry receiving the counters; a private registry
            is created when omitted (tests that only care about
            behaviour stay one-liner).
    """

    def __init__(
        self,
        capacity: int = 1024,
        ttl_ms: float | None = 60_000.0,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        if ttl_ms is not None and ttl_ms <= 0:
            raise ValueError("ttl_ms must be positive (or None)")
        self.capacity = capacity
        self.ttl_ms = ttl_ms
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._entries: OrderedDict[str, tuple[Any, float]] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def get(self, key: str, now_ms: float) -> Any | None:
        """The cached body for ``key``, or None on miss/expiry.

        A hit refreshes the key's LRU position (but not its TTL —
        entries age from their store time, so a hot key still ages
        out and re-reads the index on schedule).
        """
        entry = self._entries.get(key)
        if entry is None:
            self.metrics.counter("service.cache.misses").inc()
            return None
        body, stored_at = entry
        if self.ttl_ms is not None and now_ms - stored_at >= self.ttl_ms:
            del self._entries[key]
            self.metrics.counter("service.cache.expirations").inc()
            self.metrics.counter("service.cache.misses").inc()
            return None
        self._entries.move_to_end(key)
        self.metrics.counter("service.cache.hits").inc()
        return body

    def put(self, key: str, body: Any, now_ms: float) -> None:
        """Store ``body`` under ``key`` as of ``now_ms``."""
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = (body, now_ms)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.metrics.counter("service.cache.evictions").inc()
        self.metrics.gauge("service.cache.size").set(len(self._entries))

    @property
    def hits(self) -> int:
        return self.metrics.counter("service.cache.hits").int_value

    @property
    def misses(self) -> int:
        return self.metrics.counter("service.cache.misses").int_value

    @property
    def evictions(self) -> int:
        return self.metrics.counter("service.cache.evictions").int_value

    @property
    def expirations(self) -> int:
        return self.metrics.counter("service.cache.expirations").int_value

    @property
    def hit_rate(self) -> float:
        """Share of lookups served from the cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
