"""LRU+TTL result cache for the link-status service.

Index answers are pure given an index version, so a response cached
under one version is exactly the response the index would recompute —
the only reasons to evict are capacity (LRU) and staleness policy
(TTL, so a redeployed index behind the same key space ages out on a
schedule rather than serving forever).

Time is the service's **virtual clock**: milliseconds since the
workload epoch, threaded through every call. Nothing here reads a wall
clock, which is what makes hit/miss/eviction sequences — and therefore
the service benchmarks — exactly reproducible.

The cache itself is the bounded/aged posture of the shared
:class:`~repro.backends.core.CacheLayer` — the same implementation the
exec layer runs unbounded — used imperatively (``get``/``put``) since
the request path, not a backend call, decides what to store. Counters
live in the shared :class:`~repro.obs.metrics.MetricsRegistry` under
``service.cache.*``, the same registry the rest of the service folds
into.
"""

from __future__ import annotations

from typing import Any

from ..backends.core import MISS, CacheLayer
from ..obs.metrics import MetricsRegistry

__all__ = ["ResultCache"]


class ResultCache(CacheLayer):
    """A bounded memo of (key → response body) with per-entry TTL.

    Args:
        capacity: maximum live entries; inserting past it evicts the
            least-recently-used entry (``service.cache.evictions``).
        ttl_ms: entry lifetime on the virtual clock; a hit at or past
            ``stored_at + ttl_ms`` is a miss and expires the entry
            (``service.cache.expirations``). ``None`` never expires.
        metrics: registry receiving the counters; a private registry
            is created when omitted (tests that only care about
            behaviour stay one-liner).
    """

    def __init__(
        self,
        capacity: int = 1024,
        ttl_ms: float | None = 60_000.0,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        super().__init__(
            inner=None,
            capacity=capacity,
            ttl_ms=ttl_ms,
            metrics=self.metrics,
            metric_prefix="service.cache",
        )

    def get(self, key: str, now_ms: float) -> Any | None:
        """The cached body for ``key``, or None on miss/expiry.

        A hit refreshes the key's LRU position (but not its TTL —
        entries age from their store time, so a hot key still ages
        out and re-reads the index on schedule).
        """
        value = self.lookup(key, now_ms)
        return None if value is MISS else value

    def put(self, key: str, body: Any, now_ms: float) -> None:
        """Store ``body`` under ``key`` as of ``now_ms``."""
        self.store(key, body, now_ms)

    def rebind_metrics(self, metrics: MetricsRegistry) -> None:
        """Point future counters at a different registry.

        The cluster tier folds each replica's registry into the
        fleet-wide one at the end of a serve and hands the replica a
        fresh registry; the cache (and its CacheLayer internals) must
        follow, or a later serve would count into an already-folded
        registry and the totals would drift.
        """
        self.metrics = metrics
        self._metrics = metrics
