"""Service-side fault injection: index latency spikes and cache faults.

The serving layer gets the same chaos treatment the study pipeline got
in :mod:`repro.faults`: seeded, per-key, replayable. The two channels
a read-only serving stack realistically has:

- ``index_spike`` — a faulted query key's index lookup pays
  ``index_spike_ms`` extra virtual latency (a slow shard, a cold
  page). Degrades tail latency; never changes a response body.
- ``cache_fault`` — a faulted key's cache reads are lost (a flaky
  cache node); the lookup falls through to the index. Degrades the
  hit rate; never changes a response body.

Decisions reuse :class:`repro.faults.FaultChannel` — a pure function
of ``(seed, channel, key, attempt)`` — so the degradation a workload
experiences is identical across runs and across serial/thread-pool
server modes. "Degrades only in documented ways" is a test, not a
hope: under any :class:`ServiceFaultPlan`, response bodies, statuses,
and the shed set are byte-identical to the fault-free run; only
latencies and cache hit rates move.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..faults import FaultChannel, FaultSpec

__all__ = ["ServiceFaultPlan", "ServiceFaults"]

_OFF = FaultSpec(rate=0.0)


@dataclass(frozen=True)
class ServiceFaultPlan:
    """Seeded chaos configuration for the serving layer."""

    seed: int = 0
    index_spike: FaultSpec = field(default_factory=lambda: _OFF)
    index_spike_ms: float = 50.0
    cache_fault: FaultSpec = field(default_factory=lambda: _OFF)

    @property
    def active(self) -> bool:
        """Whether any channel can fire under this plan."""
        return self.index_spike.active or self.cache_fault.active

    @classmethod
    def spikes(
        cls, rate: float, seed: int = 0, spike_ms: float = 50.0
    ) -> "ServiceFaultPlan":
        """Index latency spikes only (permanent per key: a hot-key tax)."""
        return cls(
            seed=seed,
            index_spike=FaultSpec(rate=rate, permanent=True),
            index_spike_ms=spike_ms,
        )

    @classmethod
    def flaky_cache(cls, rate: float, seed: int = 0) -> "ServiceFaultPlan":
        """Cache faults only (permanent per key: a lost cache shard)."""
        return cls(seed=seed, cache_fault=FaultSpec(rate=rate, permanent=True))


class ServiceFaults:
    """Live fault state for one server: the plan's channels, armed."""

    def __init__(self, plan: ServiceFaultPlan) -> None:
        self.plan = plan
        self.spike_channel = FaultChannel(
            plan.seed, "service.index_spike", plan.index_spike
        )
        self.cache_channel = FaultChannel(
            plan.seed, "service.cache", plan.cache_fault
        )

    def spike_ms(self, key: str) -> float:
        """Extra index-lookup latency for ``key`` on this attempt."""
        if self.spike_channel.should_fault(key):
            return self.plan.index_spike_ms
        return 0.0

    def cache_lost(self, key: str) -> bool:
        """Whether this cache read of ``key`` is lost to the fault."""
        return self.cache_channel.should_fault(key)

    @property
    def injected(self) -> int:
        """Total faults raised across both channels."""
        return self.spike_channel.injected + self.cache_channel.injected
