"""Service-side fault injection: key-level and replica-level chaos.

The serving layer gets the same chaos treatment the study pipeline got
in :mod:`repro.faults`: seeded, per-key, replayable. Two key-level
channels a read-only serving stack realistically has:

- ``index_spike`` — a faulted query key's index lookup pays
  ``index_spike_ms`` extra virtual latency (a slow shard, a cold
  page). Degrades tail latency; never changes a response body.
- ``cache_fault`` — a faulted key's cache reads are lost (a flaky
  cache node); the lookup falls through to the index. Degrades the
  hit rate; never changes a response body.

And four replica-level channels the cluster tier adds:

- ``replica_crash`` — a faulted replica goes down for a window
  ``[start, start + crash_duration_ms)`` (start drawn in
  ``[0, crash_horizon_ms)``), loses its cache and every in-flight
  request (the router re-dispatches them), then recovers and pays
  ``catchup_factor`` on lookups for ``catchup_ms`` while it warms
  back up.
- ``replica_partition`` — the replica is unreachable for a window but
  keeps its cache (a network partition, not a process death).
- ``replica_slow`` — a faulted replica pays ``slow_factor`` on every
  index lookup for the whole run (a degraded host).

**Every decision is a pure function of ``(plan seed, channel,
replica_id, key)``** — there are no attempt counters and no shared
RNG state. This is deliberate and load-bearing: a cluster's router
policy changes *which* replica serves a given request, and an
arrival-order- or attempt-keyed decision would make the chaos a run
experiences depend on the load-balancing policy under test. With pure
keying, the fault schedule (which replicas crash when, which keys are
spiked on which replica) is byte-identical across router policies,
serve modes, and runs — the regression test pins exactly this.

"Degrades only in documented ways" stays a test, not a hope: under
any :class:`ServiceFaultPlan`, every *served* response's status and
body are identical to the fault-free run; only latencies, hit rates,
and the shed set move (and the shed set only through replica loss).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, fields

from ..faults import FaultSpec
from ..rng import derive_seed

__all__ = ["ReplicaFaultEvent", "ServiceFaultPlan", "ServiceFaults"]

_OFF = FaultSpec(rate=0.0)
_UNIT_DENOM = float(2**64)


@dataclass(frozen=True, slots=True)
class ReplicaFaultEvent:
    """One scheduled replica state transition (for reports and tests)."""

    at_ms: float
    replica_id: str
    kind: str  # crash | recover | partition | heal


@dataclass(frozen=True)
class ServiceFaultPlan:
    """Seeded chaos configuration for the serving layer."""

    seed: int = 0
    # -- key-level channels ------------------------------------------------------
    index_spike: FaultSpec = field(default_factory=lambda: _OFF)
    index_spike_ms: float = 50.0
    cache_fault: FaultSpec = field(default_factory=lambda: _OFF)
    # -- replica-level channels (cluster tier) -----------------------------------
    replica_crash: FaultSpec = field(default_factory=lambda: _OFF)
    crash_horizon_ms: float = 10_000.0
    crash_duration_ms: float = 2_000.0
    catchup_ms: float = 1_000.0
    catchup_factor: float = 2.0
    replica_partition: FaultSpec = field(default_factory=lambda: _OFF)
    partition_horizon_ms: float = 10_000.0
    partition_duration_ms: float = 1_500.0
    replica_slow: FaultSpec = field(default_factory=lambda: _OFF)
    slow_factor: float = 3.0

    def specs(self) -> dict[str, FaultSpec]:
        """Every channel spec by name, active or not."""
        return {
            f.name: getattr(self, f.name)
            for f in fields(self)
            if isinstance(getattr(self, f.name), FaultSpec)
        }

    @property
    def active(self) -> bool:
        """Whether any channel can fire under this plan."""
        return any(spec.active for spec in self.specs().values())

    @property
    def replica_active(self) -> bool:
        """Whether any replica-level channel can fire."""
        return (
            self.replica_crash.active
            or self.replica_partition.active
            or self.replica_slow.active
        )

    @classmethod
    def spikes(
        cls, rate: float, seed: int = 0, spike_ms: float = 50.0
    ) -> "ServiceFaultPlan":
        """Index latency spikes only (permanent per key: a hot-key tax)."""
        return cls(
            seed=seed,
            index_spike=FaultSpec(rate=rate, permanent=True),
            index_spike_ms=spike_ms,
        )

    @classmethod
    def flaky_cache(cls, rate: float, seed: int = 0) -> "ServiceFaultPlan":
        """Cache faults only (permanent per key: a lost cache shard)."""
        return cls(seed=seed, cache_fault=FaultSpec(rate=rate, permanent=True))

    @classmethod
    def crashes(
        cls,
        rate: float,
        seed: int = 0,
        horizon_ms: float = 10_000.0,
        duration_ms: float = 2_000.0,
    ) -> "ServiceFaultPlan":
        """Replica crashes only (with recovery and catch-up)."""
        return cls(
            seed=seed,
            replica_crash=FaultSpec(rate=rate, permanent=True),
            crash_horizon_ms=horizon_ms,
            crash_duration_ms=duration_ms,
        )

    @classmethod
    def partitions(
        cls,
        rate: float,
        seed: int = 0,
        horizon_ms: float = 10_000.0,
        duration_ms: float = 1_500.0,
    ) -> "ServiceFaultPlan":
        """Replica network partitions only (cache survives)."""
        return cls(
            seed=seed,
            replica_partition=FaultSpec(rate=rate, permanent=True),
            partition_horizon_ms=horizon_ms,
            partition_duration_ms=duration_ms,
        )

    @classmethod
    def slow_replicas(
        cls, rate: float, seed: int = 0, factor: float = 3.0
    ) -> "ServiceFaultPlan":
        """Permanently slow replicas only."""
        return cls(
            seed=seed,
            replica_slow=FaultSpec(rate=rate, permanent=True),
            slow_factor=factor,
        )


class ServiceFaults:
    """The plan's channels, armed: every query is a pure hash lookup.

    Key-level decisions take an optional ``replica_id`` so the same
    logical key can be healthy on one replica and faulted on another —
    a realistic failure geometry the single-node server simply leaves
    empty. Counting (``injected``) is bookkeeping layered on top of
    the pure decisions; it never feeds back into them.
    """

    def __init__(self, plan: ServiceFaultPlan) -> None:
        self.plan = plan
        self.injected = 0
        self._stream_seeds: dict[str, int] = {}

    # -- the one source of randomness --------------------------------------------

    def _unit(self, channel: str, salt: str, key: str) -> float:
        """A uniform [0, 1) draw, pure in ``(seed, channel, salt, key)``.

        Hash-compatible with :class:`repro.faults.inject.FaultChannel`
        (stream seed derived from ``faults.service.<channel>``, then
        ``{seed}:{salt}:{key}``), so the *set* of keys each key-level
        channel faults is byte-identical to what the stateful channel
        implementation selected under the same plan seed — only the
        attempt-counting transience is gone.
        """
        stream_seed = self._stream_seeds.get(channel)
        if stream_seed is None:
            stream_seed = derive_seed(self.plan.seed, f"faults.service.{channel}")
            self._stream_seeds[channel] = stream_seed
        digest = hashlib.sha256(
            f"{stream_seed}:{salt}:{key}".encode("utf-8")
        ).digest()
        return int.from_bytes(digest[:8], "big") / _UNIT_DENOM

    def _hit(self, channel: str, spec: FaultSpec, key: str) -> bool:
        return spec.active and self._unit(channel, "hit", key) < spec.rate

    @staticmethod
    def _scoped(replica_id: str, key: str) -> str:
        return f"{replica_id}|{key}" if replica_id else key

    # -- key-level channels ------------------------------------------------------

    def spike_ms(self, key: str, replica_id: str = "") -> float:
        """Extra index-lookup latency for ``key`` on ``replica_id``."""
        if self._hit(
            "index_spike", self.plan.index_spike, self._scoped(replica_id, key)
        ):
            self.injected += 1
            return self.plan.index_spike_ms
        return 0.0

    def cache_lost(self, key: str, replica_id: str = "") -> bool:
        """Whether cache reads of ``key`` on ``replica_id`` are lost."""
        if self._hit(
            "cache", self.plan.cache_fault, self._scoped(replica_id, key)
        ):
            self.injected += 1
            return True
        return False

    # -- replica-level schedule (all pure) ---------------------------------------

    def crash_window(self, replica_id: str) -> tuple[float, float] | None:
        """``(start, end)`` of this replica's crash, or None."""
        plan = self.plan
        if not self._hit("crash", plan.replica_crash, replica_id):
            return None
        start = self._unit("crash", "start", replica_id) * plan.crash_horizon_ms
        return (start, start + plan.crash_duration_ms)

    def partition_window(self, replica_id: str) -> tuple[float, float] | None:
        """``(start, end)`` of this replica's partition, or None."""
        plan = self.plan
        if not self._hit("partition", plan.replica_partition, replica_id):
            return None
        start = (
            self._unit("partition", "start", replica_id)
            * plan.partition_horizon_ms
        )
        return (start, start + plan.partition_duration_ms)

    def slow_factor(self, replica_id: str) -> float:
        """This replica's permanent lookup-latency multiplier."""
        if self._hit("slow", self.plan.replica_slow, replica_id):
            return self.plan.slow_factor
        return 1.0

    def catchup_factor(self, replica_id: str, at_ms: float) -> float:
        """The post-recovery warm-up multiplier in force at ``at_ms``."""
        window = self.crash_window(replica_id)
        if window is None:
            return 1.0
        recovered = window[1]
        if recovered <= at_ms < recovered + self.plan.catchup_ms:
            return self.plan.catchup_factor
        return 1.0

    def available(self, replica_id: str, at_ms: float) -> bool:
        """Whether the replica can accept work at ``at_ms``."""
        for window in (
            self.crash_window(replica_id),
            self.partition_window(replica_id),
        ):
            if window is not None and window[0] <= at_ms < window[1]:
                return False
        return True

    def next_failure(
        self, replica_id: str, after_ms: float
    ) -> tuple[float, str] | None:
        """``(onset, channel)`` of the replica's next unavailability
        strictly after ``after_ms``, or None. The channel name is what
        the audit log's blame trail records — it is how a lost
        in-flight request gets attributed to "s0r1's *crash*" rather
        than just "s0r1"."""
        onsets = [
            (window[0], channel)
            for channel, window in (
                ("crash", self.crash_window(replica_id)),
                ("partition", self.partition_window(replica_id)),
            )
            if window is not None and window[0] > after_ms
        ]
        return min(onsets) if onsets else None

    def next_failure_at(
        self, replica_id: str, after_ms: float
    ) -> float | None:
        """The replica's next unavailability onset strictly after ``after_ms``."""
        failure = self.next_failure(replica_id, after_ms)
        return failure[0] if failure is not None else None

    def unavailable_channel(self, replica_id: str, at_ms: float) -> str | None:
        """Which channel has the replica down at ``at_ms`` (crash wins
        ties), or None when it is serving."""
        for channel, window in (
            ("crash", self.crash_window(replica_id)),
            ("partition", self.partition_window(replica_id)),
        ):
            if window is not None and window[0] <= at_ms < window[1]:
                return channel
        return None

    def next_available_at(
        self, replica_id: str, at_ms: float
    ) -> float | None:
        """Earliest instant >= ``at_ms`` the replica serves, or None.

        None means the replica never becomes available again within
        its scheduled windows — impossible here because windows are
        finite, so this only returns None for a replica with no
        schedule that is somehow asked while unavailable (it isn't).
        """
        probe = at_ms
        for _ in range(4):  # at most two disjoint windows to hop over
            for window in (
                self.crash_window(replica_id),
                self.partition_window(replica_id),
            ):
                if window is not None and window[0] <= probe < window[1]:
                    probe = window[1]
                    break
            else:
                return probe
        return probe

    def transitions(
        self, replica_ids: tuple[str, ...]
    ) -> tuple[ReplicaFaultEvent, ...]:
        """Every scheduled state transition, in time order.

        The cluster event loop interleaves these with batch deadlines
        and admission releases; tests and reports read them directly.
        """
        events: list[ReplicaFaultEvent] = []
        for replica_id in replica_ids:
            crash = self.crash_window(replica_id)
            if crash is not None:
                events.append(ReplicaFaultEvent(crash[0], replica_id, "crash"))
                events.append(
                    ReplicaFaultEvent(crash[1], replica_id, "recover")
                )
            partition = self.partition_window(replica_id)
            if partition is not None:
                events.append(
                    ReplicaFaultEvent(partition[0], replica_id, "partition")
                )
                events.append(
                    ReplicaFaultEvent(partition[1], replica_id, "heal")
                )
        events.sort(key=lambda e: (e.at_ms, e.replica_id, e.kind))
        return tuple(events)
