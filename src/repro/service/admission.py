"""Admission control: token-bucket rate limiting + a bounded queue.

A serving system that accepts everything degrades for everyone at
once; one that sheds deterministically degrades only for the requests
past its declared capacity. This module is that declaration:

- :class:`TokenBucket` — capacity ``burst`` tokens, refilled
  continuously at ``rate_per_s`` on the service's virtual clock. A
  request consumes one token to start service.
- :class:`AdmissionController` — arrivals that find no token wait in
  a FIFO queue of bounded depth; arrivals that find the queue full
  are shed immediately with a 429-style outcome.

Everything is a pure function of arrival times and configuration, so
at any offered load the *set* of shed request ids — not just their
count — is identical across runs and across serial/thread-pool server
modes. That is the property the overload tests pin.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from ..obs.metrics import DEFAULT_LATENCY_BOUNDS_MS, MetricsRegistry

__all__ = ["AdmissionController", "TokenBucket"]


@dataclass
class TokenBucket:
    """Continuous-refill token bucket on the virtual millisecond clock.

    Attributes:
        rate_per_s: steady-state admissions per virtual second.
        burst: bucket capacity — how far ahead of the steady rate a
            quiet period lets arrivals run.
    """

    rate_per_s: float
    burst: float = 1.0
    _tokens: float = field(init=False)
    _last_ms: float = field(default=0.0, init=False)

    def __post_init__(self) -> None:
        if self.rate_per_s <= 0:
            raise ValueError("rate_per_s must be positive")
        if self.burst < 1:
            raise ValueError("burst must be >= 1")
        self._tokens = float(self.burst)

    @property
    def last_ms(self) -> float:
        """The instant the bucket last refilled to (its local clock)."""
        return self._last_ms

    def _refill(self, now_ms: float) -> None:
        if now_ms > self._last_ms:
            self._tokens = min(
                float(self.burst),
                self._tokens
                + (now_ms - self._last_ms) * self.rate_per_s / 1000.0,
            )
            self._last_ms = now_ms

    #: Tolerance for float round-trips between :meth:`next_ready_ms`
    #: (which solves for the instant a whole token exists) and the
    #: refill integration at that instant.
    _EPSILON = 1e-9

    def try_take(self, now_ms: float) -> bool:
        """Consume one token at ``now_ms`` if one is available."""
        self._refill(now_ms)
        if self._tokens >= 1.0 - self._EPSILON:
            self._tokens = max(self._tokens - 1.0, 0.0)
            return True
        return False

    def next_ready_ms(self) -> float:
        """Earliest instant at which a whole token will exist.

        Measured from the bucket's own clock; past instants mean "a
        token is available right now".
        """
        if self._tokens >= 1.0 - self._EPSILON:
            return self._last_ms
        deficit = 1.0 - self._tokens
        return self._last_ms + deficit * 1000.0 / self.rate_per_s


class AdmissionController:
    """Token bucket in front of a bounded FIFO wait queue.

    ``offer`` classifies one arrival; ``next_release_ms`` /
    ``release_one`` let the server's event loop dequeue waiting
    requests at the exact virtual instants their tokens accrue.
    Counters land in the shared registry under ``service.admission.*``,
    and every released request records its queue wait (virtual ms
    from enqueue to token accrual) in the
    ``service.admission.queue_wait_ms`` histogram — the front door's
    own contribution to end-to-end latency, separated from serving
    time proper.
    """

    def __init__(
        self,
        bucket: TokenBucket,
        queue_limit: int = 64,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if queue_limit < 0:
            raise ValueError("queue_limit must be >= 0")
        self.bucket = bucket
        self.queue_limit = queue_limit
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._queue: deque = deque()

    @property
    def queue_depth(self) -> int:
        """Requests currently waiting for a token."""
        return len(self._queue)

    def offer(self, request, now_ms: float) -> str:
        """Classify one arrival: ``"admit"``, ``"queue"``, or ``"shed"``.

        Arrivals are only directly admitted when the queue is empty —
        FIFO order is part of the determinism contract, so a token
        that appears while earlier arrivals wait belongs to the head
        of the queue, not to the newcomer.
        """
        self.metrics.counter("service.admission.offered").inc()
        if not self._queue and self.bucket.try_take(now_ms):
            self.metrics.counter("service.admission.admitted").inc()
            return "admit"
        if len(self._queue) < self.queue_limit:
            self._queue.append((request, now_ms))
            self.metrics.counter("service.admission.queued").inc()
            peak = self.metrics.gauge("service.admission.queue_peak")
            peak.set(max(peak.value, len(self._queue)))
            return "queue"
        self.metrics.counter("service.admission.shed").inc()
        return "shed"

    def next_release_ms(self) -> float | None:
        """When the queue head's token accrues, or None when empty."""
        if not self._queue:
            return None
        return self.bucket.next_ready_ms()

    def release_one(self) -> tuple[object, float]:
        """Dequeue the head at its token's ready instant.

        Returns ``(request, ready_ms)``; ``ready_ms`` is the request's
        service start for latency accounting.
        """
        if not self._queue:
            raise IndexError("release_one on an empty admission queue")
        ready = self.bucket.next_ready_ms()
        taken = self.bucket.try_take(ready)
        assert taken, "token accounting out of sync"
        self.metrics.counter("service.admission.admitted").inc()
        request, enqueued_ms = self._queue.popleft()
        self.metrics.histogram(
            "service.admission.queue_wait_ms", DEFAULT_LATENCY_BOUNDS_MS
        ).observe(max(ready - enqueued_ms, 0.0))
        return request, ready
