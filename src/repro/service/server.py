"""The in-process service loop: admission → cache → batcher → index.

:class:`LinkStatusService` turns a :class:`~repro.service.index.LinkStatusIndex`
into a request-serving system. The loop is a small discrete-event
simulation on the service's virtual millisecond clock — arrivals,
token accruals, batch deadlines, and lookup completions all happen at
exact computed instants — so every response (status, body, *and*
latency) is a pure function of ``(index, config, workload, faults)``.

Two execution modes, equal by construction:

- ``serial`` — unique-key lookups of each flushed batch run in a loop;
- ``thread`` — they run on a :class:`~concurrent.futures.ThreadPoolExecutor`.

All scheduling decisions (admission verdicts, batch boundaries,
coalescing groups, cache reads/writes, latency assignment) happen in
the coordinating thread; the pool only evaluates pure reads of the
immutable index, so the thread schedule cannot leak into any response.

Observability and chaos ride the same rails as the batch pipeline: a
``tracer`` records the ``service → request → index-lookup`` hierarchy
(one ``index-lookup`` per *coalesced computation*, owned by its
carrier request), metrics fold into one
:class:`~repro.obs.metrics.MetricsRegistry`, and a
:class:`~repro.service.faults.ServiceFaultPlan` injects index latency
spikes and cache faults that degrade latency and hit rate — provably
never response bodies.
"""

from __future__ import annotations

import hashlib
import json
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from ..obs.metrics import DEFAULT_LATENCY_BOUNDS_MS, MetricsRegistry
from ..obs.trace import Tracer
from ..reporting.cdf import ecdf
from .admission import AdmissionController, TokenBucket
from .audit import AuditLog
from .batcher import Batch, MicroBatcher
from .cache import ResultCache
from .faults import ServiceFaultPlan, ServiceFaults
from .index import LinkStatusIndex
from .reconfig import (
    RECONFIG_LAG_BOUNDS_MS,
    DeltaApply,
    GenerationSwap,
    ReconfigError,
    ReconfigEvent,
    Reconfiguration,
    apply_delta,
    normalize_schedule,
)
from .workload import Request

__all__ = [
    "LinkStatusService",
    "Response",
    "ServerConfig",
    "ServiceResult",
    "key_latency_ms",
]

_UNIT_DENOM = float(2**64)

#: Histogram bounds for virtual response latency, in milliseconds —
#: the service-tier preset from :mod:`repro.obs.metrics` (dense
#: through the single-digit-ms range one lookup lives in).
LATENCY_BOUNDS_MS: tuple[float, ...] = DEFAULT_LATENCY_BOUNDS_MS


@dataclass(frozen=True)
class ServerConfig:
    """Capacity and policy knobs for one service instance."""

    #: Token-bucket steady rate (admissions per virtual second).
    rate_rps: float = 2_000.0
    #: Token-bucket burst capacity.
    burst: int = 16
    #: Bounded-queue depth; arrivals past it are shed with a 429.
    queue_limit: int = 64
    #: Micro-batch flush threshold.
    max_batch: int = 8
    #: Micro-batch deadline (virtual ms) — the tail-latency promise.
    max_wait_ms: float = 2.0
    #: Result-cache capacity (entries) and TTL (virtual ms).
    cache_capacity: int = 1_024
    cache_ttl_ms: float | None = 60_000.0
    #: Base virtual cost of one index lookup; each key pays a
    #: deterministic multiplier in [0.5, 1.5) derived from its hash.
    index_latency_ms: float = 4.0
    #: Virtual cost of serving a batch-time cache hit.
    cache_hit_latency_ms: float = 0.5
    #: Thread-pool width for ``mode="thread"``.
    threads: int = 4


@dataclass(frozen=True, slots=True)
class Response:
    """One served request: status, body, and exact virtual timing.

    ``source`` says how the answer was produced: ``"index"`` (carrier
    of a fresh lookup), ``"coalesced"`` (shared a batchmate's lookup),
    ``"cache"`` (batch-time cache hit), or ``"shed"`` (429 before any
    computation).
    """

    request_id: int
    status: int
    body: object
    arrival_ms: float
    start_ms: float
    completion_ms: float
    source: str
    index_version: str

    @property
    def latency_ms(self) -> float:
        """Arrival-to-completion virtual latency."""
        return self.completion_ms - self.arrival_ms

    @property
    def shed(self) -> bool:
        """Whether the request was rejected rather than answered.

        429 is admission control (rate/quota); 503 is the cluster
        tier's "no replica of the owning shard recovered in time".
        The single-node service never emits 503.
        """
        return self.status in (429, 503)

    def to_wire(self) -> bytes:
        """The canonical serialized answer — what equivalence means.

        Timing fields are deliberately excluded: the answer surface a
        client sees is ``(status, body, index version)``, and that is
        the surface the cluster differential tests compare byte-for-
        byte against the single-node service. Latency is the
        *documented* degradation dimension, not part of the answer.
        """
        return json.dumps(
            {
                "rid": self.request_id,
                "status": self.status,
                "body": self.body,
                "index_version": self.index_version,
            },
            sort_keys=True,
            separators=(",", ":"),
        ).encode("utf-8")


@dataclass
class ServiceResult:
    """Everything one serving run produced, plus derived rates."""

    responses: list[Response]
    metrics: MetricsRegistry
    index_version: str
    mode: str
    #: Every generation that served during the run, in install order
    #: (initial index first, then each swap). Single-generation runs
    #: carry the one version; ``index_version`` stays the *final*
    #: generation — the one a client connecting now would see.
    index_versions: tuple[str, ...] = ()
    #: Every applied reconfiguration (swap/delta/rebalance), in apply
    #: order, with scheduled vs applied instants — the drain lag the
    #: SLO layer grades via ``events_from_reconfigs``.
    reconfig_events: tuple[ReconfigEvent, ...] = ()

    @property
    def offered(self) -> int:
        return len(self.responses)

    @property
    def completed(self) -> list[Response]:
        """Responses that were actually served (not shed)."""
        return [r for r in self.responses if not r.shed]

    @property
    def shed_ids(self) -> tuple[int, ...]:
        """Request ids rejected by admission control, in id order."""
        return tuple(r.request_id for r in self.responses if r.shed)

    @property
    def shed_rate(self) -> float:
        return len(self.shed_ids) / self.offered if self.offered else 0.0

    @property
    def duration_ms(self) -> float:
        """Virtual makespan: first arrival to last completion."""
        if not self.responses:
            return 0.0
        start = min(r.arrival_ms for r in self.responses)
        end = max(r.completion_ms for r in self.responses)
        return max(end - start, 0.0)

    @property
    def throughput_rps(self) -> float:
        """Served requests per virtual second of makespan."""
        duration_s = self.duration_ms / 1000.0
        return len(self.completed) / duration_s if duration_s > 0 else 0.0

    def latency_quantile(self, q: float) -> float:
        """Virtual latency quantile over served requests (exact ECDF)."""
        completed = self.completed
        if not completed:
            return 0.0
        return ecdf([r.latency_ms for r in completed]).quantile(q)

    @property
    def cache_hit_rate(self) -> float:
        """Share of batch-time cache reads that hit."""
        hits = self.metrics.counter("service.cache.hits").value
        misses = self.metrics.counter("service.cache.misses").value
        total = hits + misses
        return hits / total if total else 0.0

    def as_dict(self) -> dict:
        """JSON-ready digest (what the benchmark records per level)."""
        return {
            "mode": self.mode,
            "index_version": self.index_version,
            "offered": self.offered,
            "served": len(self.completed),
            "shed": len(self.shed_ids),
            "shed_rate": round(self.shed_rate, 6),
            "throughput_rps": round(self.throughput_rps, 3),
            "p50_ms": round(self.latency_quantile(0.5), 6),
            "p99_ms": round(self.latency_quantile(0.99), 6),
            "cache_hit_rate": round(self.cache_hit_rate, 6),
            "index_lookups": self.metrics.counter(
                "service.index.lookups"
            ).int_value,
            "coalesced": self.metrics.counter(
                "service.batch.coalesced"
            ).int_value,
        }

    def summary(self) -> str:
        """Multi-line digest for logs and the demo CLI."""
        return "\n".join(
            [
                (
                    f"service[{self.mode}] index {self.index_version}: "
                    f"{self.offered} offered, {len(self.completed)} served, "
                    f"{len(self.shed_ids)} shed "
                    f"({self.shed_rate:.1%})"
                ),
                (
                    f"latency p50/p99 {self.latency_quantile(0.5):.2f}/"
                    f"{self.latency_quantile(0.99):.2f} ms (virtual); "
                    f"throughput {self.throughput_rps:.0f} rps"
                ),
                (
                    f"cache hit rate {self.cache_hit_rate:.1%}; "
                    f"index lookups "
                    f"{self.metrics.counter('service.index.lookups').int_value}; "
                    f"coalesced "
                    f"{self.metrics.counter('service.batch.coalesced').int_value}"
                ),
            ]
        )


def key_latency_ms(version: str, key: str, base_ms: float) -> float:
    """Virtual cost of one index lookup for ``key`` (pre-fault).

    Base cost times a hash-derived multiplier in [0.5, 1.5): the
    latency *distribution* is non-degenerate (p50 ≠ p99) while each
    key's cost is a pure function of the index version. Shared by the
    single-node service and every cluster replica — a replica serving
    under its parent snapshot's version therefore charges exactly the
    single-node cost per key, which is what keeps the cluster's
    faults-off latency surface honest.
    """
    digest = hashlib.sha256(f"{version}:{key}".encode("utf-8")).digest()
    unit = int.from_bytes(digest[:8], "big") / _UNIT_DENOM
    return base_ms * (0.5 + unit)


def answer(index: LinkStatusIndex, kind: str, target: str) -> tuple[int, object]:
    """The pure query function the service batches and caches.

    Returns ``(status, body)``; safe to evaluate from any thread —
    it only reads the immutable index.
    """
    if kind == "url":
        entry = index.lookup(target)
        if entry is None:
            return 404, None
        return 200, entry.to_body()
    if kind == "domain":
        entries = index.by_domain(target)
        if not entries:
            return 404, None
        buckets: dict[str, int] = {}
        for entry in entries:
            buckets[entry.bucket] = buckets.get(entry.bucket, 0) + 1
        return 200, {
            "domain": target,
            "urls": [entry.url for entry in entries],
            "buckets": buckets,
        }
    if kind == "bucket_counts":
        return 200, index.bucket_counts()
    if kind == "quantile":
        metric, _, q_text = target.rpartition(":")
        try:
            value = index.quantile(metric, float(q_text))
        except (KeyError, ValueError):
            return 400, None
        return 200, {"metric": metric, "q": float(q_text), "value": value}
    return 400, None


class LinkStatusService:
    """One service instance over one immutable index snapshot."""

    def __init__(
        self,
        index: LinkStatusIndex,
        config: ServerConfig = ServerConfig(),
        metrics: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        faults: ServiceFaultPlan | None = None,
        audit: AuditLog | None = None,
    ) -> None:
        self.index = index
        self.config = config
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer
        self.audit = audit
        self._faults = (
            ServiceFaults(faults)
            if faults is not None and faults.active
            else None
        )
        self.cache = ResultCache(
            capacity=config.cache_capacity,
            ttl_ms=config.cache_ttl_ms,
            metrics=self.metrics,
        )
        self.admission = AdmissionController(
            TokenBucket(rate_per_s=config.rate_rps, burst=float(config.burst)),
            queue_limit=config.queue_limit,
            metrics=self.metrics,
        )
        self.batcher = MicroBatcher(
            max_batch=config.max_batch,
            max_wait_ms=config.max_wait_ms,
            metrics=self.metrics,
        )
        self._pending_reconfigs: list[Reconfiguration] = []
        #: An in-progress drained reconfiguration: ``(op, new_index)``
        #: waiting for the open batch to close under the old binding.
        self._draining: tuple[Reconfiguration, LinkStatusIndex] | None = None
        self._reconfig_log: list[ReconfigEvent] = []
        self._versions_served: list[str] = [index.version]

    # -- deterministic latency model ---------------------------------------------

    def index_latency_ms(self, key: str) -> float:
        """Virtual cost of one index lookup for ``key`` (pre-fault)."""
        return key_latency_ms(
            self.index.version, key, self.config.index_latency_ms
        )

    # -- the serve loop ----------------------------------------------------------

    def serve(
        self,
        requests,
        mode: str = "serial",
        threads: int | None = None,
        swaps=None,
    ) -> ServiceResult:
        """Replay a workload against the index; return every response.

        ``mode`` is ``"serial"`` or ``"thread"``; both return
        identical responses for the same inputs (asserted by the test
        suite). Responses come back in request-id order.

        ``swaps`` is an optional reconfiguration schedule: legacy
        ``(at_ms, index)`` pairs (atomic generation swaps) and/or
        :class:`~repro.service.reconfig.Reconfiguration` instances
        (:class:`~repro.service.reconfig.GenerationSwap`,
        :class:`~repro.service.reconfig.DeltaApply`), validated up
        front by :func:`~repro.service.reconfig.normalize_schedule`
        (duplicate instants, empty indexes, non-monotonic versions,
        and broken delta chains raise a typed
        :class:`~repro.service.reconfig.ReconfigError` before the
        replay starts). Each reconfiguration is an event on the
        virtual clock, ordered *after* batch deadlines due at the
        same instant and *before* queue releases. Atomic applies
        force-flush the open batch at the reconfiguration instant
        (in-flight requests complete against the index they were
        admitted under); drained applies (``drain=True``) let the
        open batch run to its own flush under the old binding and
        rebind at that instant. Either way the result cache is wiped
        on a generation change and no response ever mixes
        generations.
        """
        if mode not in ("serial", "thread"):
            raise ValueError(f"unknown serve mode {mode!r}")
        self._pending_reconfigs = normalize_schedule(swaps, self.index)
        self._draining = None
        self._reconfig_log = []
        self._versions_served = versions = [self.index.version]
        pool = (
            ThreadPoolExecutor(
                max_workers=threads if threads else self.config.threads
            )
            if mode == "thread"
            else None
        )
        responses: list[Response] = []
        ordered = sorted(requests, key=lambda r: (r.arrival_ms, r.request_id))
        service_cm = (
            self.tracer.span(
                "service",
                kind="service",
                index_version=self.index.version,
                mode=mode,
                offered=len(ordered),
            )
            if self.tracer is not None
            else None
        )
        if service_cm is not None:
            service_cm.__enter__()
        try:
            for request in ordered:
                self._advance(request.arrival_ms, responses, pool)
                verdict = self.admission.offer(request, request.arrival_ms)
                if verdict == "admit":
                    self._enqueue(request, request.arrival_ms, responses, pool)
                elif verdict == "shed":
                    self._shed(request, responses)
            self._advance(None, responses, pool)
            tail = self.batcher.flush()
            if tail is not None:
                self._execute(tail, responses, pool)
        finally:
            if service_cm is not None:
                service_cm.__exit__(None, None, None)
            if pool is not None:
                pool.shutdown(wait=True)
        responses.sort(key=lambda r: r.request_id)
        return ServiceResult(
            responses=responses,
            metrics=self.metrics,
            index_version=self.index.version,
            mode=mode,
            index_versions=tuple(versions),
            reconfig_events=tuple(self._reconfig_log),
        )

    def _advance(
        self, now_ms: float | None, responses: list[Response], pool
    ) -> None:
        """Run every due event (queue releases, batch deadlines,
        generation swaps) in time order up to ``now_ms`` (``None`` =
        run them all)."""
        while True:
            release_ms = self.admission.next_release_ms()
            deadline_ms = self.batcher.deadline_ms
            swap_ms = (
                self._pending_reconfigs[0].at_ms
                if self._pending_reconfigs
                else None
            )
            candidates = [
                t for t in (release_ms, deadline_ms, swap_ms) if t is not None
            ]
            if not candidates:
                return
            next_ms = min(candidates)
            if now_ms is not None and next_ms > now_ms:
                return
            # Deadline flush wins ties: the batch closed before (or
            # exactly as) the token accrued, so the released request
            # belongs to the next batch. A reconfiguration ranks after
            # deadlines (due batches still belong to the old
            # generation) and before releases (requests released at
            # the swap instant are served by the new one).
            if deadline_ms is not None and deadline_ms <= next_ms:
                batch = self.batcher.flush_due(deadline_ms)
                if batch is not None:
                    self._execute(batch, responses, pool)
                continue
            if swap_ms is not None and swap_ms <= next_ms:
                op = self._pending_reconfigs.pop(0)
                self._begin_reconfig(op, responses, pool)
                continue
            request, ready_ms = self.admission.release_one()
            self._enqueue(request, ready_ms, responses, pool)

    # -- the reconfiguration plane -------------------------------------------------

    def _begin_reconfig(
        self, op: Reconfiguration, responses: list[Response], pool
    ) -> None:
        """One due reconfiguration: resolve the new binding, then
        apply it atomically or hand it to the drain machinery.

        Atomic (``drain=False``): the open batch (if any) is
        force-flushed and completes against the old index, then the
        new binding installs at the scheduled instant — the classic
        copy-on-write swap. Drained (``drain=True``): the open batch
        keeps its own deadline and finishes under the old binding;
        the rebind happens at that batch's flush instant (see the
        tail of :meth:`_execute`), bounded by ``max_wait_ms``. With
        no open batch a drained apply degenerates to an atomic one.
        """
        if self._draining is not None:
            # A later reconfiguration preempts an unfinished drain:
            # the draining batch force-flushes under its old binding
            # now, completing the previous cutover first.
            batch = self.batcher.flush_now(op.at_ms)
            if batch is not None:
                self._execute(batch, responses, pool)
            if self._draining is not None:
                self._complete_drain(op.at_ms)
        new_index = self._resolve(op)
        if op.drain and self.batcher.deadline_ms is not None:
            self._draining = (op, new_index)
            return
        batch = self.batcher.flush_now(op.at_ms)
        if batch is not None:
            self._execute(batch, responses, pool)
        self._install(op, new_index, op.at_ms, drained=0)

    def _resolve(self, op: Reconfiguration) -> LinkStatusIndex:
        """The index the reconfiguration binds (copy-on-write)."""
        if isinstance(op, GenerationSwap):
            return op.index
        if isinstance(op, DeltaApply):
            # Verified application: the result is byte-identical to
            # the full snapshot or this raises (never serves a
            # divergent index).
            return apply_delta(self.index, op.delta)
        raise ReconfigError(
            f"single-node service cannot apply {op.kind!r}"
        )

    def _complete_drain(self, applied_ms: float) -> None:
        op, new_index = self._draining
        self._draining = None
        self._install(op, new_index, applied_ms, drained=1)

    def _install(
        self,
        op: Reconfiguration,
        new_index: LinkStatusIndex,
        applied_ms: float,
        drained: int,
    ) -> None:
        """Cut over to ``new_index``: wipe the cache (old-generation
        bodies must not outlive their index), rebind, record."""
        old_version = self.index.version
        self.cache = ResultCache(
            capacity=self.config.cache_capacity,
            ttl_ms=self.config.cache_ttl_ms,
            metrics=self.metrics,
        )
        self.index = new_index
        self._versions_served.append(new_index.version)
        self.metrics.counter("service.swaps").inc()
        self._record_reconfig(
            op, old_version, new_index.version, applied_ms, drained
        )

    def _record_reconfig(
        self,
        op: Reconfiguration,
        from_version: str,
        to_version: str,
        applied_ms: float,
        drained: int,
        moved_keys: int = 0,
    ) -> None:
        event = ReconfigEvent(
            kind=op.kind,
            scheduled_ms=op.at_ms,
            applied_ms=applied_ms,
            from_version=from_version,
            to_version=to_version,
            drained_batches=drained,
            moved_keys=moved_keys,
        )
        self._reconfig_log.append(event)
        self.metrics.counter("service.reconfig.applied").inc()
        self.metrics.counter(f"service.reconfig.{op.kind}").inc()
        self.metrics.histogram(
            "service.reconfig.lag_ms", RECONFIG_LAG_BOUNDS_MS
        ).observe(event.lag_ms)

    def _enqueue(
        self,
        request: Request,
        ready_ms: float,
        responses: list[Response],
        pool,
    ) -> None:
        batch = self.batcher.add(request, ready_ms)
        if batch is not None:
            self._execute(batch, responses, pool)

    def _shed(self, request: Request, responses: list[Response]) -> None:
        self.metrics.counter("service.requests.shed").inc()
        if self.tracer is not None:
            self.tracer.record_span(
                "request",
                kind="service.request",
                duration_s=0.0,
                rid=request.request_id,
                key=request.key,
                status=429,
                shed=True,
            )
        if self.audit is not None:
            self.audit.emit(
                request, 429, "shed", "admission", "shed", "", "", "",
                0, (), request.arrival_ms, request.arrival_ms,
                self.index.version,
            )
        responses.append(
            Response(
                request_id=request.request_id,
                status=429,
                body=None,
                arrival_ms=request.arrival_ms,
                start_ms=request.arrival_ms,
                completion_ms=request.arrival_ms,
                source="shed",
                index_version=self.index.version,
            )
        )

    def _execute(
        self, batch: Batch, responses: list[Response], pool
    ) -> None:
        """Resolve one flushed batch: cache reads, coalesced lookups,
        latency assignment, span emission — all at exact instants."""
        flush_ms = batch.flush_ms
        groups = batch.groups()

        # Cache pass (coordinator thread; order = first-arrival order).
        resolved: dict[str, tuple[int, object]] = {}
        latency: dict[str, float] = {}
        spike: dict[str, float] = {}
        jobs: list[str] = []
        for key in groups:
            lost = self._faults.cache_lost(key) if self._faults else False
            if lost:
                self.metrics.counter("service.cache.faults").inc()
            hit = None if lost else self.cache.get(key, flush_ms)
            if hit is not None:
                resolved[key] = hit
                latency[key] = self.config.cache_hit_latency_ms
            else:
                jobs.append(key)

        # Index pass: pure lookups, serial or pooled — same order,
        # same results, because `answer` only reads the frozen index.
        job_requests = [groups[key][0].request for key in jobs]
        if pool is not None and jobs:
            results = list(
                pool.map(
                    lambda req: answer(self.index, req.kind, req.target),
                    job_requests,
                )
            )
        else:
            results = [
                answer(self.index, req.kind, req.target)
                for req in job_requests
            ]
        for key, outcome in zip(jobs, results):
            resolved[key] = outcome
            spiked = self._faults.spike_ms(key) if self._faults else 0.0
            if spiked:
                self.metrics.counter("service.index.spikes").inc()
            spike[key] = spiked
            latency[key] = self.index_latency_ms(key) + spiked
            self.metrics.counter("service.index.lookups").inc()
            self.cache.put(key, outcome, flush_ms)

        # Emission pass: responses, counters, spans.
        fresh = set(jobs)
        for key, items in groups.items():
            status, body = resolved[key]
            completion_ms = flush_ms + latency[key]
            carrier = items[0].request
            if self.tracer is not None:
                self._trace_group(
                    key, items, status, completion_ms, key in fresh,
                    latency[key], spike.get(key, 0.0),
                )
            observed = self.audit is not None or self.tracer is not None
            for position, item in enumerate(items):
                request = item.request
                if position == 0:
                    source = "index" if key in fresh else "cache"
                    role = "carrier" if key in fresh else "hit"
                else:
                    source = "coalesced"
                    role = "rider"
                self.metrics.counter(
                    "service.requests.ok"
                    if status == 200
                    else "service.requests.failed"
                ).inc()
                histogram = self.metrics.histogram(
                    "service.latency_ms", LATENCY_BOUNDS_MS
                )
                if observed:
                    histogram.observe(
                        completion_ms - request.arrival_ms,
                        exemplar=f"rid={request.request_id}",
                        at_ms=completion_ms,
                    )
                else:
                    histogram.observe(completion_ms - request.arrival_ms)
                if self.audit is not None:
                    self.audit.emit(
                        request, status,
                        "ok" if status == 200 else "error", "",
                        source, role, "", "", 1, (),
                        item.ready_ms, completion_ms,
                        self.index.version,
                    )
                responses.append(
                    Response(
                        request_id=request.request_id,
                        status=status,
                        body=body,
                        arrival_ms=request.arrival_ms,
                        start_ms=item.ready_ms,
                        completion_ms=completion_ms,
                        source=source,
                        index_version=self.index.version,
                    )
                )
            del carrier  # clarity: the carrier is items[0].request
        if self._draining is not None:
            # The queued batch has finished under the old binding; the
            # drained reconfiguration cuts over at its flush instant.
            self._complete_drain(flush_ms)

    def _trace_group(
        self,
        key: str,
        items,
        status: int,
        completion_ms: float,
        fresh: bool,
        latency_ms: float,
        spike_ms: float,
    ) -> None:
        """Emit the request → index-lookup spans for one coalesced group."""
        carrier = items[0].request
        with self.tracer.span(
            "request",
            kind="service.request",
            rid=carrier.request_id,
            key=key,
            status=status,
            coalesced_riders=len(items) - 1,
        ) as span:
            span.add_virtual_ms(completion_ms - carrier.arrival_ms)
            if fresh:
                lookup = self.tracer.record_span(
                    "index-lookup",
                    kind="service.index",
                    duration_s=0.0,
                    key=key,
                    spiked=bool(spike_ms),
                )
                lookup.add_virtual_ms(latency_ms)
        for item in items[1:]:
            rider = self.tracer.record_span(
                "request",
                kind="service.request",
                duration_s=0.0,
                rid=item.request.request_id,
                key=key,
                status=status,
                coalesced=True,
            )
            rider.add_virtual_ms(completion_ms - item.request.arrival_ms)
