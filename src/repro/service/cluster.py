"""The replicated, sharded service tier: N shards × R replicas.

:class:`ClusterService` scales :class:`~repro.service.server.
LinkStatusService` from one process-equivalent to a simulated fleet.
The index is partitioned **by registrable domain** with rendezvous
hashing (:mod:`repro.service.router`) into ``n_shards`` partitions;
each shard runs ``replicas_per_shard`` replicas, and every replica is
a full serving stack of its own — micro-batcher, LRU+TTL result
cache, per-replica metrics registry — reading an immutable
:class:`ShardIndex` view of its partition.

The whole fleet runs on one discrete-event loop over the service's
virtual millisecond clock, which is what makes replica-level chaos
*exactly* reproducible: admission releases, batch deadlines, replica
crash/recovery transitions, and re-dispatches of in-flight requests
all interleave at computed instants under a fixed tie-break order
(fault transitions, then batch deadlines in replica order, then
re-dispatches, then admission releases).

The contract the differential tests pin:

- **Faults off** — the cluster's answer surface
  (:meth:`~repro.service.server.Response.to_wire`: status, body,
  index version, per request) and its shed set are byte-identical to
  the single-node service for *any* shard/replica count, and a
  1-shard × 1-replica cluster reproduces the single-node run
  *including timing*.
- **Faults on** — replica crashes, partitions, and slow replicas
  degrade latency and shed rate only: every request both runs serve
  gets the same bytes, and fault runs never invent answers — they
  only re-dispatch (latency) or give up after
  ``max_dispatch_attempts`` (a 503 in the shed set).

Admission is global (one token bucket + bounded queue at the router,
identical to the single-node front door — that is what keeps the
faults-off shed set equal), with optional per-tenant quota buckets in
front of it. Per-replica accounting folds into the cluster registry
twice: once raw (the fleet rollup) and once under
``service.replica.<rid>.`` (the per-replica families), so the rollup
is exactly the sum of the families.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from ..obs.metrics import MetricsRegistry
from ..obs.trace import Tracer
from .admission import AdmissionController, TokenBucket
from .audit import AuditLog
from .batcher import Batch, MicroBatcher
from .cache import ResultCache
from .faults import ServiceFaultPlan, ServiceFaults
from .index import LinkStatusEntry, LinkStatusIndex
from .reconfig import (
    RECONFIG_LAG_BOUNDS_MS,
    DeltaApply,
    GenerationSwap,
    RebalancePlan,
    ReconfigError,
    ReconfigEvent,
    Reconfiguration,
    apply_delta,
    normalize_schedule,
)
from .router import POLICIES, ReplicaPicker, TenantQuotas, rendezvous_owner, routing_key
from .server import (
    LATENCY_BOUNDS_MS,
    Response,
    ServerConfig,
    ServiceResult,
    answer,
    key_latency_ms,
)
from .workload import Request

__all__ = ["ClusterConfig", "ClusterResult", "ClusterService", "ShardIndex"]


class ShardIndex:
    """One shard's immutable view of the parent snapshot.

    Point queries (URL, domain) answer from the partition only; the
    aggregate endpoints delegate to the parent's precomputed tables —
    the simulated analogue of shipping every shard the (tiny) offline
    aggregates next to its (large) partition. The shard serves under
    the **parent's** version string: answers are logically answers of
    the whole snapshot, and per-key virtual latency hashes stay
    identical to the single-node service's.
    """

    __slots__ = ("shard_id", "_parent", "_by_url", "_by_domain", "_entries")

    def __init__(
        self,
        parent: LinkStatusIndex,
        shard_id: str,
        entries: tuple[LinkStatusEntry, ...],
    ) -> None:
        self.shard_id = shard_id
        self._parent = parent
        self._entries = entries
        by_url: dict[str, LinkStatusEntry] = {}
        by_domain: dict[str, tuple[LinkStatusEntry, ...]] = {}
        for entry in entries:
            by_url.setdefault(entry.url, entry)
            by_domain[entry.domain] = by_domain.get(entry.domain, ()) + (entry,)
        self._by_url = by_url
        self._by_domain = by_domain

    @property
    def version(self) -> str:
        return self._parent.version

    @property
    def entries(self) -> tuple[LinkStatusEntry, ...]:
        return self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, url: str) -> LinkStatusEntry | None:
        return self._by_url.get(url)

    def by_domain(self, domain: str) -> tuple[LinkStatusEntry, ...]:
        return self._by_domain.get(domain, ())

    def bucket_counts(self) -> dict[str, int]:
        return self._parent.bucket_counts()

    def metrics(self) -> tuple[str, ...]:
        return self._parent.metrics()

    def distribution(self, metric: str):
        return self._parent.distribution(metric)

    def quantile(self, metric: str, q: float) -> float:
        return self._parent.quantile(metric, q)

    def __repr__(self) -> str:
        return (
            f"ShardIndex({self.shard_id}, {len(self._entries)} entries, "
            f"version={self.version})"
        )


@dataclass(frozen=True)
class ClusterConfig:
    """Fleet topology and routing policy."""

    #: Domain partitions (rendezvous-hashed).
    n_shards: int = 2
    #: Serving replicas per shard.
    replicas_per_shard: int = 2
    #: Replica-selection policy (see :data:`repro.service.router.POLICIES`).
    policy: str = "round_robin"
    #: Seed for the power-of-two candidate draws.
    router_seed: int = 0
    #: Dispatch attempts per request before it sheds with a 503.
    max_dispatch_attempts: int = 4
    #: Extra virtual ms an index lookup pays per request already
    #: outstanding on its replica at flush — the load signal that makes
    #: replica scaling visible in p99. 0 (the default) preserves exact
    #: faults-off latency equivalence with the single-node service.
    congestion_ms_per_inflight: float = 0.0
    #: Per-tenant admission quotas: tenant -> (rate_rps, burst).
    quotas: dict[str, tuple[float, float]] | None = None

    def __post_init__(self) -> None:
        if self.n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        if self.replicas_per_shard < 1:
            raise ValueError("replicas_per_shard must be >= 1")
        if self.policy not in POLICIES:
            raise ValueError(
                f"unknown router policy {self.policy!r}; known: {POLICIES}"
            )
        if self.max_dispatch_attempts < 1:
            raise ValueError("max_dispatch_attempts must be >= 1")
        if self.congestion_ms_per_inflight < 0:
            raise ValueError("congestion_ms_per_inflight must be >= 0")


@dataclass
class ClusterResult(ServiceResult):
    """A :class:`ServiceResult` plus the fleet's own accounting."""

    n_shards: int = 1
    replicas_per_shard: int = 1
    policy: str = "round_robin"
    fault_events: tuple = ()
    replica_ids: tuple[str, ...] = ()

    @property
    def redispatches(self) -> int:
        return self.metrics.counter("service.cluster.redispatches").int_value

    @property
    def quota_shed_ids(self) -> tuple[int, ...]:
        """Request ids shed by per-tenant quotas (a subset of 429s)."""
        return tuple(
            r.request_id
            for r in self.responses
            if r.status == 429 and r.source == "quota"
        )

    @property
    def unavailable_ids(self) -> tuple[int, ...]:
        """Request ids shed 503 after exhausting dispatch attempts."""
        return tuple(
            r.request_id for r in self.responses if r.status == 503
        )

    def replica_digest(self) -> dict[str, dict[str, float]]:
        """Per-replica counter families, read back from the registry."""
        digest: dict[str, dict[str, float]] = {}
        for replica_id in self.replica_ids:
            prefix = f"service.replica.{replica_id}."
            counters = self.metrics.counters(prefix)
            digest[replica_id] = {
                name[len(prefix):]: value for name, value in counters.items()
            }
        return digest

    def as_dict(self) -> dict:
        digest = super().as_dict()
        digest.update(
            n_shards=self.n_shards,
            replicas_per_shard=self.replicas_per_shard,
            policy=self.policy,
            redispatches=self.redispatches,
            unavailable=len(self.unavailable_ids),
            quota_shed=len(self.quota_shed_ids),
            fault_events=len(self.fault_events),
        )
        return digest


class _Replica:
    """One replica's private serving state (internal to the cluster)."""

    __slots__ = (
        "replica_id",
        "shard_id",
        "index",
        "config",
        "metrics",
        "batcher",
        "cache",
        "_completions",
    )

    def __init__(
        self,
        replica_id: str,
        shard_id: str,
        index: ShardIndex,
        config: ServerConfig,
    ) -> None:
        self.replica_id = replica_id
        self.shard_id = shard_id
        self.index = index
        self.config = config
        self.metrics = MetricsRegistry()
        self.batcher = MicroBatcher(
            max_batch=config.max_batch,
            max_wait_ms=config.max_wait_ms,
            metrics=self.metrics,
        )
        self.cache = ResultCache(
            capacity=config.cache_capacity,
            ttl_ms=config.cache_ttl_ms,
            metrics=self.metrics,
        )
        self._completions: list[float] = []

    def outstanding(self, now_ms: float) -> int:
        """Dispatched-but-incomplete requests at ``now_ms``."""
        heap = self._completions
        while heap and heap[0] <= now_ms:
            heapq.heappop(heap)
        return self.batcher.pending + len(heap)

    def note_completion(self, completion_ms: float, riders: int) -> None:
        for _ in range(riders):
            heapq.heappush(self._completions, completion_ms)

    def wipe_cache(self) -> None:
        """Cold-start the cache (the crash lost the process)."""
        self.cache = ResultCache(
            capacity=self.config.cache_capacity,
            ttl_ms=self.config.cache_ttl_ms,
            metrics=self.metrics,
        )

    def rebind_metrics(self) -> None:
        """Swap in a fresh registry after a fold (once per serve)."""
        self.metrics = MetricsRegistry()
        self.batcher.metrics = self.metrics
        self.cache.rebind_metrics(self.metrics)


#: Event-type priorities for same-instant ties in the cluster loop.
#: Generation swaps rank after batch deadlines (a batch due at the
#: swap instant still belongs to the old generation) and before
#: re-dispatches and releases (requests placed at the swap instant are
#: served by the new one).
(
    _P_TRANSITION,
    _P_DEADLINE,
    _P_SWAP,
    _P_REDISPATCH,
    _P_RELEASE,
) = (0, 1, 2, 3, 4)


class ClusterService:
    """A simulated fleet serving one immutable index snapshot."""

    def __init__(
        self,
        index: LinkStatusIndex,
        config: ServerConfig = ServerConfig(),
        cluster: ClusterConfig = ClusterConfig(),
        metrics: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        faults: ServiceFaultPlan | None = None,
        audit: AuditLog | None = None,
    ) -> None:
        self.index = index
        self.config = config
        self.cluster = cluster
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer
        self.audit = audit
        self._faults = (
            ServiceFaults(faults)
            if faults is not None and faults.active
            else None
        )
        self._picker = ReplicaPicker(cluster.policy, seed=cluster.router_seed)
        self._quotas = (
            TenantQuotas(dict(cluster.quotas)) if cluster.quotas else None
        )
        self.admission = AdmissionController(
            TokenBucket(rate_per_s=config.rate_rps, burst=float(config.burst)),
            queue_limit=config.queue_limit,
            metrics=self.metrics,
        )

        # -- partition the index ---------------------------------------------------
        self.shard_ids = tuple(
            f"shard-{i}" for i in range(cluster.n_shards)
        )
        self._shard_of: dict[str, str] = {}
        self.shards: dict[str, ShardIndex] = self._partition(index)

        # -- spin up the replicas --------------------------------------------------
        self.replicas: dict[str, list[_Replica]] = {}
        for si, shard_id in enumerate(self.shard_ids):
            self.replicas[shard_id] = [
                _Replica(
                    f"s{si}r{ri}", shard_id, self.shards[shard_id], config
                )
                for ri in range(cluster.replicas_per_shard)
            ]
        self._all_replicas: tuple[_Replica, ...] = tuple(
            replica
            for shard_id in self.shard_ids
            for replica in self.replicas[shard_id]
        )
        self.metrics.gauge("service.cluster.shards").set(cluster.n_shards)
        self.metrics.gauge("service.cluster.replicas").set(
            len(self._all_replicas)
        )

        # -- replica fault schedule ------------------------------------------------
        replica_ids = tuple(r.replica_id for r in self._all_replicas)
        self._replica_by_id = {
            r.replica_id: r for r in self._all_replicas
        }
        self.fault_events = (
            self._faults.transitions(replica_ids) if self._faults else ()
        )
        self._pending_reconfigs: list[Reconfiguration] = []
        #: In-progress drained reconfiguration: which replicas still
        #: serve the old binding, what each rebinds to, and the
        #: accounting for the eventual ReconfigEvent.
        self._drain_state: dict | None = None
        self._reconfig_log: list[ReconfigEvent] = []
        self._versions_served: list[str] = [index.version]

    def _partition(self, index: LinkStatusIndex) -> dict[str, ShardIndex]:
        """Partition ``index`` by domain into per-shard views.

        Shares the memoized domain→shard table across generations:
        rendezvous placement depends only on the domain and the shard
        id set, so a domain present in two generations lives on the
        same shard in both — a swap re-snapshots shard *contents*
        without migrating ownership. Only a
        :class:`~repro.service.reconfig.RebalancePlan` rewrites the
        memo and moves keys between shards.
        """
        partitions: dict[str, list[LinkStatusEntry]] = {
            shard_id: [] for shard_id in self.shard_ids
        }
        for entry in index.entries:
            shard_id = self._shard_of.get(entry.domain)
            if shard_id is None:
                shard_id = rendezvous_owner(entry.domain, self.shard_ids)
                self._shard_of[entry.domain] = shard_id
            partitions[shard_id].append(entry)
        return {
            shard_id: ShardIndex(index, shard_id, tuple(entries))
            for shard_id, entries in partitions.items()
        }

    # -- routing -----------------------------------------------------------------

    def shard_for(self, kind: str, target: str) -> str:
        """The shard that owns one query (memoized rendezvous hash)."""
        key = routing_key(kind, target)
        shard_id = self._shard_of.get(key)
        if shard_id is None:
            shard_id = rendezvous_owner(key, self.shard_ids)
            self._shard_of[key] = shard_id
        return shard_id

    def _available_replicas(
        self, shard_id: str, now_ms: float
    ) -> list[_Replica]:
        replicas = self.replicas[shard_id]
        if self._faults is None:
            return replicas
        return [
            replica
            for replica in replicas
            if self._faults.available(replica.replica_id, now_ms)
        ]

    # -- the serve loop ----------------------------------------------------------

    def serve(
        self,
        requests,
        mode: str = "serial",
        threads: int | None = None,
        swaps=None,
    ) -> ClusterResult:
        """Replay a workload against the fleet; return every response.

        Same surface as the single-node ``serve``: ``mode`` is
        ``"serial"`` or ``"thread"`` (identical responses either way),
        responses come back in request-id order.

        ``swaps`` — optional reconfiguration schedule: legacy
        ``(at_ms, index)`` tuples or
        :class:`~repro.service.reconfig.Reconfiguration` instances
        (``GenerationSwap``, ``DeltaApply``, ``RebalancePlan``),
        validated up front by
        :func:`~repro.service.reconfig.normalize_schedule`. Atomic
        swaps force-flush every replica's open batch against its *old*
        shard view (in-flight requests finish on the generation they
        were admitted under), wipe every cache, and re-partition the
        new index into fresh shard views before the fleet answers from
        the new generation. Drained swaps move the front door at the
        scheduled instant but let each replica finish its queued batch
        under the old binding before rebinding — a per-replica rolling
        cutover. Rebalances migrate routing keys between shards within
        one generation via the same drain machinery. No response ever
        mixes generations — the chaos differential tests assert this
        under replica crash schedules.
        """
        if mode not in ("serial", "thread"):
            raise ValueError(f"unknown serve mode {mode!r}")
        self._pending_reconfigs = normalize_schedule(
            swaps, self.index,
            allow_rebalance=True, shard_ids=self.shard_ids,
        )
        self._drain_state = None
        self._reconfig_log = []
        self._versions_served = [self.index.version]
        pool = None
        if mode == "thread":
            from concurrent.futures import ThreadPoolExecutor

            pool = ThreadPoolExecutor(
                max_workers=threads if threads else self.config.threads
            )
        responses: list[Response] = []
        #: re-dispatch queue: (at_ms, seq, attempt, request)
        self._redispatch: list[tuple[float, int, int, Request]] = []
        self._redispatch_seq = 0
        self._pending_transitions = list(self.fault_events)
        #: audit-only attribution state: request id -> fault blame
        #: trail ("replica:channel" per forced re-dispatch) and
        #: re-dispatch counts. Only touched on the (fault-only)
        #: re-queue path, never per dispatch: a request's dispatch-
        #: attempt total is exactly 1 + its re-queue count, because
        #: every queued re-dispatch is popped into one ``_dispatch``
        #: call and the first dispatch comes from admission.
        self._blame: dict[int, list[str]] = {}
        self._requeues: dict[int, int] = {}
        #: Compact observation log: one tuple per coalesced group or
        #: shed. Spans, exemplars, and audit records all expand from
        #: it in :meth:`_materialize_observations` on first telemetry
        #: read — the serving loop itself only pays list appends.
        #: ``None`` when neither tracing nor auditing is on, so the
        #: unobserved loop stays byte-identical and cost-identical.
        self._obs_log: list[tuple] | None = (
            [] if (self.tracer is not None or self.audit is not None) else None
        )
        ordered = sorted(requests, key=lambda r: (r.arrival_ms, r.request_id))
        service_cm = (
            self.tracer.span(
                "service",
                kind="service",
                index_version=self.index.version,
                mode=mode,
                offered=len(ordered),
                shards=self.cluster.n_shards,
                replicas=self.cluster.replicas_per_shard,
                policy=self.cluster.policy,
            )
            if self.tracer is not None
            else None
        )
        if service_cm is not None:
            service_cm.__enter__()
        try:
            for request in ordered:
                self._advance(request.arrival_ms, responses, pool)
                if self._quotas is not None and not self._quotas.admit(
                    request.tenant, request.arrival_ms
                ):
                    self._shed(request, responses, status=429, source="quota")
                    self.metrics.counter("service.cluster.quota_shed").inc()
                    continue
                verdict = self.admission.offer(request, request.arrival_ms)
                if verdict == "admit":
                    self._dispatch(
                        request, request.arrival_ms, responses, pool
                    )
                elif verdict == "shed":
                    self._shed(request, responses, status=429, source="shed")
            self._advance(None, responses, pool)
        finally:
            if service_cm is not None:
                service_cm.__exit__(None, None, None)
            if pool is not None:
                pool.shutdown(wait=True)
        responses.sort(key=lambda r: r.request_id)
        self._fold_replica_metrics()
        if self._obs_log is not None:
            # Hand the run's observation log to whichever telemetry
            # surface is read first: the tracer's spans, the audit
            # log's records, and the registry's snapshot all trigger
            # the same once-only expansion. Captured by value so a
            # later serve() on this instance cannot disturb it.
            log, self._obs_log = self._obs_log, None
            blame, requeues = self._blame, self._requeues
            expanded = False

            def materialize() -> None:
                nonlocal expanded
                if expanded:
                    return
                expanded = True
                self._materialize_observations(log, blame, requeues)

            if self.tracer is not None:
                self.tracer.add_pending_source(materialize)
            if self.audit is not None:
                self.audit.add_pending_source(materialize)
            self.metrics.add_pending_source(materialize)
        return ClusterResult(
            responses=responses,
            metrics=self.metrics,
            index_version=self.index.version,
            mode=mode,
            index_versions=tuple(self._versions_served),
            n_shards=self.cluster.n_shards,
            replicas_per_shard=self.cluster.replicas_per_shard,
            policy=self.cluster.policy,
            fault_events=self.fault_events,
            replica_ids=tuple(r.replica_id for r in self._all_replicas),
            reconfig_events=tuple(self._reconfig_log),
        )

    def _fold_replica_metrics(self) -> None:
        """Publish per-replica families plus the exact fleet rollup."""
        for replica in self._all_replicas:
            self.metrics.merge(replica.metrics)
            self.metrics.merge_prefixed(
                replica.metrics, f"service.replica.{replica.replica_id}."
            )
            replica.rebind_metrics()  # each registry folds exactly once

    # -- the event loop ----------------------------------------------------------

    def _next_event(self) -> tuple[float, int, int] | None:
        """The earliest due event as ``(time, priority, index)``.

        ``index`` identifies the event within its type: the replica's
        position for deadlines, zero otherwise. The fixed priority
        order — transitions, deadlines, re-dispatches, releases —
        resolves same-instant ties deterministically (and keeps the
        single-node rule that a closing batch beats a token release).
        """
        best: tuple[float, int, int] | None = None
        if self._pending_transitions:
            best = (self._pending_transitions[0].at_ms, _P_TRANSITION, 0)
        for position, replica in enumerate(self._all_replicas):
            deadline = replica.batcher.deadline_ms
            if deadline is not None:
                candidate = (deadline, _P_DEADLINE, position)
                if best is None or candidate < best:
                    best = candidate
        if self._pending_reconfigs:
            candidate = (self._pending_reconfigs[0].at_ms, _P_SWAP, 0)
            if best is None or candidate < best:
                best = candidate
        if self._redispatch:
            candidate = (self._redispatch[0][0], _P_REDISPATCH, 0)
            if best is None or candidate < best:
                best = candidate
        release = self.admission.next_release_ms()
        if release is not None:
            candidate = (release, _P_RELEASE, 0)
            if best is None or candidate < best:
                best = candidate
        return best

    def _advance(
        self, now_ms: float | None, responses: list[Response], pool
    ) -> None:
        """Run every due event in (time, priority) order up to
        ``now_ms`` (``None`` = run them all)."""
        while True:
            event = self._next_event()
            if event is None:
                return
            at_ms, priority, position = event
            if now_ms is not None and at_ms > now_ms:
                return
            if priority == _P_TRANSITION:
                self._apply_transition(responses, pool)
            elif priority == _P_DEADLINE:
                replica = self._all_replicas[position]
                batch = replica.batcher.flush_due(at_ms)
                if batch is not None:
                    self._execute(replica, batch, responses, pool)
            elif priority == _P_SWAP:
                op = self._pending_reconfigs.pop(0)
                self._begin_reconfig(op, responses, pool)
            elif priority == _P_REDISPATCH:
                at, _, attempt, request = heapq.heappop(self._redispatch)
                self._dispatch(
                    request, at, responses, pool, attempt=attempt
                )
            else:
                request, ready_ms = self.admission.release_one()
                self._dispatch(request, ready_ms, responses, pool)

    def _apply_transition(self, responses: list[Response], pool) -> None:
        """One replica state change: crash/partition onsets drain the
        replica's open batch back to the router; crashes also cold the
        cache. Recovery instants need no action — availability is a
        pure function of time."""
        event = self._pending_transitions.pop(0)
        self.metrics.counter(
            f"service.cluster.transitions.{event.kind}"
        ).inc()
        if event.kind not in ("crash", "partition"):
            return
        replica = next(
            r for r in self._all_replicas if r.replica_id == event.replica_id
        )
        if event.kind == "crash":
            replica.wipe_cache()
        cause = f"{event.replica_id}:{event.kind}"
        for item in replica.batcher.drain():
            self._requeue(item.request, event.at_ms, causes=(cause,))
        if self._drain_state is not None:
            # The batch this replica was draining a reconfiguration
            # behind just went back to the router — nothing holds the
            # old binding any more, so the cutover lands here.
            self._finish_replica_drain(replica, event.at_ms)

    def _begin_reconfig(
        self, op: Reconfiguration, responses: list[Response], pool
    ) -> None:
        """Apply one scheduled reconfiguration at ``op.at_ms``.

        A reconfiguration that lands while an earlier drain is still
        in flight preempts it: every still-draining replica
        force-flushes under its old binding and rebinds first, so at
        most one drain is ever outstanding and bindings apply in
        schedule order.
        """
        if self._drain_state is not None:
            self._force_finish_drain(op.at_ms, responses, pool)
        if isinstance(op, RebalancePlan):
            self._apply_rebalance(op, responses, pool)
            return
        old_version = self.index.version
        new_index = (
            op.index
            if isinstance(op, GenerationSwap)
            else apply_delta(self.index, op.delta)
        )
        if not op.drain:
            # Atomic fleet-wide cutover (the pre-existing swap
            # semantics): every live replica's open batch
            # force-flushes against its old shard view — groups lost
            # to an in-flight failure re-dispatch as usual and will
            # be answered by the new generation; they never produced
            # old-generation bytes — every cache is wiped, and the
            # new index is re-partitioned into fresh shard views
            # bound to the same replicas.
            for replica in self._all_replicas:
                batch = replica.batcher.flush_now(op.at_ms)
                if batch is not None:
                    self._execute(replica, batch, responses, pool)
            self._install_generation(new_index)
            for replica in self._all_replicas:
                replica.index = self.shards[replica.shard_id]
                replica.wipe_cache()
            self._record_reconfig(op, old_version, new_index.version,
                                  op.at_ms, drained=0)
            return
        # Rolling drained cutover: the front door (routing, shed
        # labels, new dispatches' target generation) moves now, but a
        # replica with an open batch finishes it under the old
        # binding at the batch's own flush instant — bounded by the
        # batcher's max_wait_ms — and only then rebinds. Replicas cut
        # over one by one; every response derives from (and is
        # labeled with) its replica's actual binding, so none mixes
        # generations.
        self._install_generation(new_index)
        binds: dict[str, tuple[ShardIndex, bool]] = {}
        pending: set[str] = set()
        for replica in self._all_replicas:
            view = self.shards[replica.shard_id]
            if replica.batcher.deadline_ms is not None:
                binds[replica.replica_id] = (view, True)
                pending.add(replica.replica_id)
            else:
                replica.index = view
                replica.wipe_cache()
        if not pending:
            self._record_reconfig(op, old_version, new_index.version,
                                  op.at_ms, drained=0)
            return
        self._drain_state = {
            "op": op,
            "binds": binds,
            "pending": pending,
            "last_ms": op.at_ms,
            "drained": 0,
            "from": old_version,
            "to": new_index.version,
            "moved": 0,
        }

    def _install_generation(self, new_index: LinkStatusIndex) -> None:
        """Move the front door to ``new_index`` (no replica rebinds)."""
        self.index = new_index
        self.shards = self._partition(new_index)
        self._versions_served.append(new_index.version)
        self.metrics.counter("service.swaps").inc()

    def _apply_rebalance(
        self, op: RebalancePlan, responses: list[Response], pool
    ) -> None:
        """Migrate ``op.moves`` routing keys between shards, live.

        The generation does not change — only ownership does — which
        is what makes a correct rolling cutover possible at all:

        - routing flips at ``op.at_ms``, so new requests for a moved
          key dispatch to its *gaining* shard;
        - a shard that only **gains** keys rebinds instantly, open
          batch and all: its new view is a superset of the old one
          under the same generation, so every queued answer is
          unchanged and moved-key requests find their entries;
        - a shard that **loses** keys must keep its old view until
          its open batch closes (the batch may hold moved-key
          requests that still need the departing entries), so it
          rebinds through the drain machinery — or force-flushes,
          when ``op.drain`` is off or when the shard *also* gains
          keys (its stale view would 404 freshly routed arrivals);
        - caches are never wiped: a cached body is a pure function of
          (generation, key), and the generation is unchanged.
        """
        version = self.index.version
        losers: set[str] = set()
        gainers: set[str] = set()
        for key, target in op.moves:
            source = self._shard_of.get(key)
            if source is None:
                source = rendezvous_owner(key, self.shard_ids)
            if source != target:
                losers.add(source)
                gainers.add(target)
            self._shard_of[key] = target
        self.shards = self._partition(self.index)
        drainable = losers - gainers
        binds: dict[str, tuple[ShardIndex, bool]] = {}
        pending: set[str] = set()
        for replica in self._all_replicas:
            view = self.shards[replica.shard_id]
            in_losers = replica.shard_id in losers
            must_flush = in_losers and (
                not op.drain or replica.shard_id not in drainable
            )
            if must_flush:
                batch = replica.batcher.flush_now(op.at_ms)
                if batch is not None:
                    self._execute(replica, batch, responses, pool)
                replica.index = view
            elif (
                in_losers
                and replica.batcher.deadline_ms is not None
            ):
                binds[replica.replica_id] = (view, False)
                pending.add(replica.replica_id)
            else:
                replica.index = view
        moved = len(op.moves)
        self.metrics.counter(
            "service.cluster.rebalanced_keys"
        ).inc(moved)
        if not pending:
            self._record_reconfig(op, version, version, op.at_ms,
                                  drained=0, moved_keys=moved)
            return
        self._drain_state = {
            "op": op,
            "binds": binds,
            "pending": pending,
            "last_ms": op.at_ms,
            "drained": 0,
            "from": version,
            "to": version,
            "moved": moved,
        }

    def _finish_replica_drain(
        self, replica: "_Replica", at_ms: float
    ) -> None:
        """Cut one draining replica over to its pending binding.

        Called when the replica's queued batch closes (flush or
        fault-drain). When the last pending replica rebinds, the
        drain resolves and its :class:`ReconfigEvent` is recorded
        with ``applied_ms`` = that final cutover instant.
        """
        state = self._drain_state
        if state is None or replica.replica_id not in state["pending"]:
            return
        state["pending"].discard(replica.replica_id)
        view, wipe = state["binds"][replica.replica_id]
        replica.index = view
        if wipe:
            replica.wipe_cache()
        state["last_ms"] = max(state["last_ms"], at_ms)
        state["drained"] += 1
        if not state["pending"]:
            self._drain_state = None
            self._record_reconfig(
                state["op"], state["from"], state["to"],
                state["last_ms"], state["drained"], state["moved"],
            )

    def _force_finish_drain(
        self, at_ms: float, responses: list[Response], pool
    ) -> None:
        """Preempt an unfinished drain: flush every still-pending
        replica under its old binding and rebind it at ``at_ms``."""
        state = self._drain_state
        if state is None:
            return
        for replica_id in sorted(state["pending"]):
            replica = self._replica_by_id[replica_id]
            batch = replica.batcher.flush_now(at_ms)
            if batch is not None:
                self._execute(replica, batch, responses, pool)
            if (
                self._drain_state is state
                and replica_id in state["pending"]
            ):
                self._finish_replica_drain(replica, at_ms)

    def _record_reconfig(
        self,
        op: Reconfiguration,
        from_version: str,
        to_version: str,
        applied_ms: float,
        drained: int,
        moved_keys: int = 0,
    ) -> None:
        event = ReconfigEvent(
            kind=op.kind,
            scheduled_ms=op.at_ms,
            applied_ms=applied_ms,
            from_version=from_version,
            to_version=to_version,
            drained_batches=drained,
            moved_keys=moved_keys,
        )
        self._reconfig_log.append(event)
        self.metrics.counter("service.reconfig.applied").inc()
        self.metrics.counter(f"service.reconfig.{op.kind}").inc()
        self.metrics.histogram(
            "service.reconfig.lag_ms", RECONFIG_LAG_BOUNDS_MS
        ).observe(event.lag_ms)

    def _requeue(
        self,
        request: Request,
        at_ms: float,
        attempt: int = 1,
        causes: tuple[str, ...] = (),
    ) -> None:
        self._redispatch_seq += 1
        heapq.heappush(
            self._redispatch,
            (at_ms, self._redispatch_seq, attempt, request),
        )
        self.metrics.counter("service.cluster.redispatches").inc()
        if self._obs_log is not None:
            rid = request.request_id
            self._requeues[rid] = self._requeues.get(rid, 0) + 1
        if causes and self.audit is not None:
            self._blame.setdefault(request.request_id, []).extend(causes)
        if causes and self.tracer is not None:
            for cause in causes:
                replica_id, _, channel = cause.partition(":")
                self.tracer.defer_span(
                    "redispatch",
                    kind="service.redispatch",
                    rid=request.request_id,
                    replica=replica_id,
                    channel=channel,
                    at_ms=at_ms,
                )

    def _shed(
        self,
        request: Request,
        responses: list[Response],
        status: int,
        source: str,
        at_ms: float | None = None,
    ) -> None:
        self.metrics.counter("service.requests.shed").inc()
        if status == 503:
            self.metrics.counter("service.cluster.unavailable_shed").inc()
        completion = at_ms if at_ms is not None else request.arrival_ms
        if self._obs_log is not None:
            # Shed entries are tagged by a None replica slot. The
            # serving generation is captured per entry: materialization
            # happens after the run, when only the final index remains.
            self._obs_log.append(
                (None, request, status, source, completion,
                 self.index.version)
            )
        responses.append(
            Response(
                request_id=request.request_id,
                status=status,
                body=None,
                arrival_ms=request.arrival_ms,
                start_ms=request.arrival_ms,
                completion_ms=completion,
                source=source,
                index_version=self.index.version,
            )
        )

    # -- dispatch and execution --------------------------------------------------

    def _dispatch(
        self,
        request: Request,
        ready_ms: float,
        responses: list[Response],
        pool,
        attempt: int = 0,
    ) -> None:
        """Place one admitted request on a replica of its shard."""
        shard_id = self.shard_for(request.kind, request.target)
        alive = self._available_replicas(shard_id, ready_ms)
        if not alive:
            if attempt + 1 >= self.cluster.max_dispatch_attempts:
                self._shed(
                    request, responses, status=503, source="shed",
                    at_ms=ready_ms,
                )
                return
            # Every replica of the shard is down: wait for the first
            # one back. The wake-up instant is a pure function of the
            # fault schedule, so the retry replays exactly.
            wake = min(
                self._faults.next_available_at(replica.replica_id, ready_ms)
                for replica in self.replicas[shard_id]
            )
            causes = tuple(
                f"{r.replica_id}:"
                f"{self._faults.unavailable_channel(r.replica_id, ready_ms) or 'unavailable'}"
                for r in self.replicas[shard_id]
            )
            self._requeue(request, wake, attempt + 1, causes=causes)
            return
        outstanding = [replica.outstanding(ready_ms) for replica in alive]
        choice = self._picker.pick(
            shard_id,
            len(alive),
            outstanding,
            request.request_id,
            attempt=attempt,
        )
        replica = alive[choice]
        self.metrics.counter("service.cluster.dispatches").inc()
        batch = replica.batcher.add(request, ready_ms)
        if batch is not None:
            self._execute(replica, batch, responses, pool)

    def _execute(
        self, replica: _Replica, batch: Batch, responses: list[Response], pool
    ) -> None:
        """Resolve one flushed batch on one replica.

        Mirrors the single-node executor — cache pass, coalesced
        lookups, latency assignment, emission — plus the replica-level
        fault geometry: lookups pay the replica's slow/catch-up
        multipliers and congestion, and any group whose completion
        lands past the replica's next failure onset is *lost in
        flight*: its requests go back to the router at the failure
        instant instead of producing responses.
        """
        faults = self._faults
        flush_ms = batch.flush_ms
        groups = batch.groups()
        rid = replica.replica_id
        failure = faults.next_failure(rid, flush_ms) if faults else None
        fail_at, fail_channel = failure if failure else (None, "")
        slow = faults.slow_factor(rid) if faults else 1.0
        catchup = faults.catchup_factor(rid, flush_ms) if faults else 1.0
        congestion_ms = (
            self.cluster.congestion_ms_per_inflight
            * replica.outstanding(flush_ms)
        )

        # Cache pass (coordinator thread; order = first-arrival order).
        resolved: dict[str, tuple[int, object]] = {}
        latency: dict[str, float] = {}
        spike: dict[str, float] = {}
        jobs: list[str] = []
        for key in groups:
            lost = faults.cache_lost(key, rid) if faults else False
            if lost:
                replica.metrics.counter("service.cache.faults").inc()
            hit = None if lost else replica.cache.get(key, flush_ms)
            if hit is not None:
                resolved[key] = hit
                latency[key] = self.config.cache_hit_latency_ms
            else:
                jobs.append(key)

        # Index pass: pure lookups, serial or pooled — same order,
        # same results, because shard views only read the frozen index.
        job_requests = [groups[key][0].request for key in jobs]
        if pool is not None and jobs:
            results = list(
                pool.map(
                    lambda req: answer(replica.index, req.kind, req.target),
                    job_requests,
                )
            )
        else:
            results = [
                answer(replica.index, req.kind, req.target)
                for req in job_requests
            ]
        for key, outcome in zip(jobs, results):
            resolved[key] = outcome
            spiked = faults.spike_ms(key, rid) if faults else 0.0
            if spiked:
                replica.metrics.counter("service.index.spikes").inc()
            spike[key] = spiked
            latency[key] = (
                key_latency_ms(
                    replica.index.version, key, self.config.index_latency_ms
                )
                * slow
                * catchup
                + spiked
                + congestion_ms
            )
            replica.metrics.counter("service.index.lookups").inc()

        # Emission pass: responses, counters, spans — or loss.
        fresh = set(jobs)
        for key, items in groups.items():
            completion_ms = flush_ms + latency[key]
            if fail_at is not None and completion_ms > fail_at:
                # The replica dies under this group: everything it was
                # computing is lost; the router re-dispatches at the
                # failure instant. No response, no cache write.
                replica.metrics.counter("service.cluster.lost_inflight").inc(
                    len(items)
                )
                cause = f"{rid}:{fail_channel}"
                for item in items:
                    self._requeue(item.request, fail_at, causes=(cause,))
                continue
            status, body = resolved[key]
            if key in fresh:
                replica.cache.put(key, resolved[key], flush_ms)
            replica.note_completion(completion_ms, len(items))
            if self._obs_log is not None:
                # One compact entry per coalesced group; spans,
                # exemplars, and audit records expand from it in
                # _materialize_observations, off the serving path.
                # The generation serving the group rides along — the
                # replica's *own* binding, not the front door's:
                # during a rolling drain the fleet index has already
                # moved while this batch still answers from the old
                # generation.
                self._obs_log.append((
                    replica, key, items, status, completion_ms,
                    key in fresh, latency[key], spike.get(key, 0.0),
                    replica.index.version,
                ))
            for position, item in enumerate(items):
                request = item.request
                if position == 0:
                    source = "index" if key in fresh else "cache"
                else:
                    source = "coalesced"
                replica.metrics.counter(
                    "service.requests.ok"
                    if status == 200
                    else "service.requests.failed"
                ).inc()
                replica.metrics.histogram(
                    "service.latency_ms", LATENCY_BOUNDS_MS
                ).observe(completion_ms - request.arrival_ms)
                responses.append(
                    Response(
                        request_id=request.request_id,
                        status=status,
                        body=body,
                        arrival_ms=request.arrival_ms,
                        start_ms=item.ready_ms,
                        completion_ms=completion_ms,
                        source=source,
                        index_version=replica.index.version,
                    )
                )
        if self._drain_state is not None:
            # The queued batch has finished under the old binding;
            # this replica's drained cutover lands at its flush
            # instant (a membership no-op for replicas not draining).
            self._finish_replica_drain(replica, flush_ms)

    def _materialize_observations(
        self,
        log: list[tuple],
        blame: dict[int, list[str]],
        requeues: dict[int, int],
    ) -> None:
        """Expand one serve run's observation log into spans,
        exemplars, and audit records.

        Runs exactly once, on the first read of any telemetry
        surface, off the measured serving path. Entries replay in
        event order, so every derived artifact is as deterministic as
        the log itself. Blame trails and re-queue counts are frozen by
        the time a request's entry exists (a request that produced a
        response or a shed is never dispatched again), so reading
        them here matches what eager emission would have recorded;
        dispatch attempts reconstruct as 1 + the re-queue count for
        any request that reached a replica or exhausted its attempts
        (front-door sheds never dispatched, so they report 0).
        """
        tracer = self.tracer
        audit = self.audit
        rollup = self.metrics.histogram(
            "service.latency_ms", LATENCY_BOUNDS_MS
        )
        replica_hists: dict[str, object] = {}
        for entry in log:
            replica = entry[0]
            if replica is None:
                _, request, status, source, completion, version = entry
                rid = request.request_id
                if tracer is not None:
                    tracer.defer_span(
                        "request",
                        kind="service.request",
                        rid=rid,
                        key=request.key,
                        status=status,
                        shed=True,
                    )
                if audit is not None:
                    if status == 503:
                        reason = "unavailable"
                    elif source == "quota":
                        reason = "quota"
                    else:
                        reason = "admission"
                    audit.emit(
                        request, status, "shed", reason, source, "", "", "",
                        requeues.get(rid, 0) + 1 if status == 503 else 0,
                        tuple(blame.get(rid, ())),
                        request.arrival_ms, completion, version,
                    )
                continue
            (
                _, key, items, status, completion_ms,
                fresh, latency_ms, spike_ms, version,
            ) = entry
            if tracer is not None:
                self._trace_group(
                    replica, key, items, status, completion_ms,
                    fresh, latency_ms, spike_ms,
                )
            family = replica_hists.get(replica.replica_id)
            if family is None:
                family = self.metrics.histogram(
                    f"service.replica.{replica.replica_id}"
                    ".service.latency_ms",
                    LATENCY_BOUNDS_MS,
                )
                replica_hists[replica.replica_id] = family
            outcome = "ok" if status == 200 else "error"
            for position, item in enumerate(items):
                request = item.request
                rid = request.request_id
                latency = completion_ms - request.arrival_ms
                exemplar = f"rid={rid}|replica={replica.replica_id}"
                rollup.offer_exemplar(latency, exemplar, at_ms=completion_ms)
                family.offer_exemplar(latency, exemplar, at_ms=completion_ms)
                if audit is not None:
                    if position == 0:
                        source = "index" if fresh else "cache"
                        coalesce = "carrier" if fresh else "hit"
                    else:
                        source = "coalesced"
                        coalesce = "rider"
                    audit.emit(
                        request, status, outcome, "", source, coalesce,
                        replica.shard_id, replica.replica_id,
                        requeues.get(rid, 0) + 1,
                        tuple(blame.get(rid, ())),
                        item.ready_ms, completion_ms, version,
                    )

    def _trace_group(
        self,
        replica: _Replica,
        key: str,
        items,
        status: int,
        completion_ms: float,
        fresh: bool,
        latency_ms: float,
        spike_ms: float,
    ) -> None:
        """Emit request → index-lookup spans for one coalesced group,
        tagged with the serving replica and shard. All spans are
        deferred (:meth:`Tracer.defer_span`): the serving loop pays a
        tuple append per span, and the objects materialize when the
        trace is read."""
        tracer = self.tracer
        carrier = items[0].request
        parent = tracer.defer_span(
            "request",
            kind="service.request",
            virtual_ms=completion_ms - carrier.arrival_ms,
            rid=carrier.request_id,
            key=key,
            status=status,
            coalesced_riders=len(items) - 1,
            shard=replica.shard_id,
            replica=replica.replica_id,
        )
        if fresh:
            tracer.defer_span(
                "index-lookup",
                kind="service.index",
                parent=parent,
                virtual_ms=latency_ms,
                key=key,
                spiked=bool(spike_ms),
                replica=replica.replica_id,
            )
        for item in items[1:]:
            tracer.defer_span(
                "request",
                kind="service.request",
                virtual_ms=completion_ms - item.request.arrival_ms,
                rid=item.request.request_id,
                key=key,
                status=status,
                coalesced=True,
                replica=replica.replica_id,
            )
