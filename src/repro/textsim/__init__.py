"""Text similarity and synthetic page content.

Section 3's soft-404 detector compares the body of a suspect URL
against the body of a deliberately invalid sibling URL using
*k-shingling based similarity* (Broder et al., 1997). This package
implements shingling and Jaccard similarity, plus the synthetic content
generator the simulated web serves pages from.
"""

from .content import ContentGenerator, PageContent
from .shingles import jaccard, shingle_set, shingle_similarity

__all__ = [
    "ContentGenerator",
    "PageContent",
    "jaccard",
    "shingle_set",
    "shingle_similarity",
]
