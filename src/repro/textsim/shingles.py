"""k-shingling and Jaccard similarity (Broder et al., 1997).

A *k-shingle* is a contiguous sequence of k tokens; a document's
shingle set characterises its content robustly against small local
edits. The paper declares a URL broken when the shingle similarity
between its response and a random sibling's response exceeds 99%
(§3), allowing for the fact that two fetches of even the same page can
differ slightly (timestamps, ads, request ids).
"""

from __future__ import annotations

import re

_TOKEN_RE = re.compile(r"[a-z0-9]+")

DEFAULT_K = 4


def tokenize(text: str) -> list[str]:
    """Lowercased alphanumeric tokens of ``text``."""
    return _TOKEN_RE.findall(text.lower())


def shingle_set(text: str, k: int = DEFAULT_K) -> frozenset[tuple[str, ...]]:
    """The set of k-token shingles of ``text``.

    Documents shorter than ``k`` tokens yield their single truncated
    token tuple, so that trivially short pages (error stubs) still
    compare sensibly.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    tokens = tokenize(text)
    if not tokens:
        return frozenset()
    if len(tokens) < k:
        return frozenset({tuple(tokens)})
    return frozenset(
        tuple(tokens[i: i + k]) for i in range(len(tokens) - k + 1)
    )


def jaccard(a: frozenset, b: frozenset) -> float:
    """Jaccard similarity |a ∩ b| / |a ∪ b|; empty-vs-empty is 1.0."""
    if not a and not b:
        return 1.0
    union = len(a | b)
    if union == 0:
        return 1.0
    return len(a & b) / union


def shingle_similarity(text_a: str, text_b: str, k: int = DEFAULT_K) -> float:
    """Jaccard similarity of the k-shingle sets of two documents."""
    return jaccard(shingle_set(text_a, k), shingle_set(text_b, k))


# -- MinHash sketches ---------------------------------------------------------
#
# Archived snapshots cannot store full bodies at simulation scale, so
# the crawler records a MinHash sketch — the standard compact estimator
# of shingle-set Jaccard similarity (also from Broder's line of work).
# The study only needs to distinguish "near-identical boilerplate"
# (similarity ~1) from "distinct documents" (similarity ~0), for which
# a small number of hash functions suffices.

NUM_MINHASHES = 16

_MASK64 = (1 << 64) - 1
#: Fixed odd multipliers/xors defining the hash family; arbitrary
#: constants chosen once so sketches are stable across runs.
_MULTIPLIERS = tuple(
    (0x9E3779B97F4A7C15 * (2 * i + 1)) & _MASK64 for i in range(NUM_MINHASHES)
)
_XORS = tuple(
    (0xC2B2AE3D27D4EB4F * (i + 1)) & _MASK64 for i in range(NUM_MINHASHES)
)

# Shingle hashing is the hot loop of archive capture, so it is
# vectorised: each token gets a stable crc32 (cached — page text draws
# from a small vocabulary), and a k-shingle's hash mixes the k token
# hashes with fixed odd multipliers, all in numpy.
_token_hash_cache: dict[str, int] = {}

_SHINGLE_MIX = None  # initialised lazily with numpy


def _numpy():
    import numpy

    return numpy


def _token_hashes(tokens: list[str]):
    import zlib

    cache = _token_hash_cache
    values = []
    for token in tokens:
        value = cache.get(token)
        if value is None:
            value = zlib.crc32(token.encode("utf-8"))
            cache[token] = value
        values.append(value)
    return values


def _shingle_hash_vector(tokens: list[str], k: int):
    """Vector of 64-bit hashes, one per k-shingle of ``tokens``."""
    np = _numpy()
    hashes = np.asarray(_token_hashes(tokens), dtype=np.uint64)
    if len(tokens) < k:
        k = len(tokens)
    mixed = np.zeros(len(tokens) - k + 1, dtype=np.uint64)
    with np.errstate(over="ignore"):
        for offset in range(k):
            lane = hashes[offset: len(hashes) - k + 1 + offset]
            mixed ^= lane * np.uint64(
                (0x9E3779B97F4A7C15 * (2 * offset + 3)) & _MASK64
            )
            mixed = (mixed << np.uint64(7)) | (mixed >> np.uint64(57))
    return mixed


def minhash_sketch(text: str, k: int = DEFAULT_K) -> tuple[int, ...]:
    """The MinHash sketch of ``text``'s k-shingle set.

    Empty documents sketch to all-zeros sentinel values so that two
    empty bodies compare as identical.
    """
    np = _numpy()
    tokens = tokenize(text)
    if not tokens:
        return (0,) * NUM_MINHASHES
    shingle_hashes = np.unique(_shingle_hash_vector(tokens, k))
    mults = np.asarray(_MULTIPLIERS, dtype=np.uint64)[:, None]
    xors = np.asarray(_XORS, dtype=np.uint64)[:, None]
    with np.errstate(over="ignore"):
        permuted = (shingle_hashes[None, :] ^ xors) * mults
    return tuple(int(value) for value in permuted.min(axis=1))


def sketch_similarity(a: tuple[int, ...], b: tuple[int, ...]) -> float:
    """Estimated Jaccard similarity from two MinHash sketches."""
    if len(a) != len(b) or not a:
        raise ValueError("sketches must be the same non-zero length")
    matches = sum(1 for x, y in zip(a, b) if x == y)
    return matches / len(a)
