"""k-shingling and Jaccard similarity (Broder et al., 1997).

A *k-shingle* is a contiguous sequence of k tokens; a document's
shingle set characterises its content robustly against small local
edits. The paper declares a URL broken when the shingle similarity
between its response and a random sibling's response exceeds 99%
(§3), allowing for the fact that two fetches of even the same page can
differ slightly (timestamps, ads, request ids).
"""

from __future__ import annotations

import re
import zlib

from ..numerics import get_numpy

_TOKEN_RE = re.compile(r"[a-z0-9]+")

#: Maps every ASCII character outside [a-z0-9] to a space, so ASCII
#: text tokenizes with translate+split (~3x faster than the regex
#: scan) while producing the identical token list.
_ASCII_TO_SPACE = str.maketrans({
    chr(c): " "
    for c in range(128)
    if not ("a" <= chr(c) <= "z" or "0" <= chr(c) <= "9")
})

DEFAULT_K = 4


def tokenize(text: str) -> list[str]:
    """Lowercased alphanumeric tokens of ``text``.

    ASCII text — the overwhelmingly common case on this hot path —
    takes the translate+split fast lane; anything else falls back to
    the regex, which defines the token contract. The two agree exactly
    on ASCII input (maximal ``[a-z0-9]+`` runs of the lowercased
    text), pinned by the differential tests.
    """
    if text.isascii():
        return text.lower().translate(_ASCII_TO_SPACE).split()
    return _TOKEN_RE.findall(text.lower())


def shingle_set(text: str, k: int = DEFAULT_K) -> frozenset[tuple[str, ...]]:
    """The set of k-token shingles of ``text``.

    Documents shorter than ``k`` tokens yield their single truncated
    token tuple, so that trivially short pages (error stubs) still
    compare sensibly.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    tokens = tokenize(text)
    if not tokens:
        return frozenset()
    if len(tokens) < k:
        return frozenset({tuple(tokens)})
    return frozenset(
        tuple(tokens[i: i + k]) for i in range(len(tokens) - k + 1)
    )


def jaccard(a: frozenset, b: frozenset) -> float:
    """Jaccard similarity |a ∩ b| / |a ∪ b|; empty-vs-empty is 1.0."""
    if not a and not b:
        return 1.0
    union = len(a | b)
    if union == 0:
        return 1.0
    return len(a & b) / union


def shingle_similarity(text_a: str, text_b: str, k: int = DEFAULT_K) -> float:
    """Jaccard similarity of the k-shingle sets of two documents."""
    return jaccard(shingle_set(text_a, k), shingle_set(text_b, k))


# -- MinHash sketches ---------------------------------------------------------
#
# Archived snapshots cannot store full bodies at simulation scale, so
# the crawler records a MinHash sketch — the standard compact estimator
# of shingle-set Jaccard similarity (also from Broder's line of work).
# The study only needs to distinguish "near-identical boilerplate"
# (similarity ~1) from "distinct documents" (similarity ~0), for which
# a small number of hash functions suffices.
#
# Sketching runs on whichever numeric backend repro.numerics selected:
# vectorised numpy when available, a pure-Python mirror otherwise.
# The two paths produce bit-identical sketches — the pure path applies
# the same multiply/xor/rotate pipeline in masked 64-bit arithmetic —
# so an archive built without numpy matches one built with it.

NUM_MINHASHES = 16

MASK64 = (1 << 64) - 1
#: Fixed odd multipliers/xors defining the hash family; arbitrary
#: constants chosen once so sketches are stable across runs.
PERMUTE_MULTIPLIERS = tuple(
    (0x9E3779B97F4A7C15 * (2 * i + 1)) & MASK64 for i in range(NUM_MINHASHES)
)
PERMUTE_XORS = tuple(
    (0xC2B2AE3D27D4EB4F * (i + 1)) & MASK64 for i in range(NUM_MINHASHES)
)

#: Per-offset multipliers mixing the k token hashes into one shingle
#: hash (shared verbatim by the numpy and pure-Python paths); grown on
#: demand for any k.
_SHINGLE_MULTIPLIERS: list[int] = []


def _shingle_multipliers(k: int) -> list[int]:
    while len(_SHINGLE_MULTIPLIERS) < k:
        offset = len(_SHINGLE_MULTIPLIERS)
        _SHINGLE_MULTIPLIERS.append(
            (0x9E3779B97F4A7C15 * (2 * offset + 3)) & MASK64
        )
    return _SHINGLE_MULTIPLIERS

#: Token-hash memo bound. Page text draws from a small per-site
#: vocabulary, so in practice the cache converges far below this; the
#: bound exists so a long crawl over many worlds (or a long-lived
#: worker process) cannot grow it without limit. crc32 is pure, so
#: clearing the memo never changes a sketch.
TOKEN_CACHE_MAX = 1 << 16

_token_hash_cache: dict[str, int] = {}


def _token_hashes(tokens: list[str]) -> list[int]:
    """Stable crc32 per token, memoised in a bounded cache."""
    cache = _token_hash_cache
    if len(cache) >= TOKEN_CACHE_MAX:
        cache.clear()
    values = []
    for token in tokens:
        value = cache.get(token)
        if value is None:
            value = zlib.crc32(token.encode("utf-8"))
            cache[token] = value
        values.append(value)
    return values


def shingle_hash_values(tokens: list[str], k: int) -> list[int]:
    """One mixed 64-bit hash per k-shingle of ``tokens`` (pure Python).

    Reference implementation of the mixing pipeline; the numpy path
    (:func:`shingle_hash_vector`) applies the identical operations
    lane-wise and is proven bit-identical by the differential tests.
    """
    hashes = _token_hashes(tokens)
    if len(tokens) < k:
        k = len(tokens)
    mults = _shingle_multipliers(k)
    out = []
    for start in range(len(tokens) - k + 1):
        mixed = 0
        for offset in range(k):
            mixed = (mixed ^ (hashes[start + offset] * mults[offset])) & MASK64
            mixed = ((mixed << 7) | (mixed >> 57)) & MASK64
        out.append(mixed)
    return out


def shingle_hash_vector(tokens: list[str], k: int):
    """Vector of 64-bit hashes, one per k-shingle of ``tokens`` (numpy).

    Only callable on the numpy backend; stdlib callers use
    :func:`shingle_hash_values`.
    """
    np = get_numpy()
    hashes = np.asarray(_token_hashes(tokens), dtype=np.uint64)
    if len(tokens) < k:
        k = len(tokens)
    mixed = np.zeros(len(tokens) - k + 1, dtype=np.uint64)
    mults = _shingle_multipliers(k)
    with np.errstate(over="ignore"):
        for offset in range(k):
            lane = hashes[offset: len(hashes) - k + 1 + offset]
            mixed ^= lane * np.uint64(mults[offset])
            mixed = (mixed << np.uint64(7)) | (mixed >> np.uint64(57))
    return mixed


def _minhash_py(tokens: list[str], k: int) -> tuple[int, ...]:
    """Pure-Python MinHash over the unique shingle hashes."""
    unique = set(shingle_hash_values(tokens, k))
    return tuple(
        min(((value ^ x) * m) & MASK64 for value in unique)
        for m, x in zip(PERMUTE_MULTIPLIERS, PERMUTE_XORS)
    )


def _minhash_np(np, tokens: list[str], k: int) -> tuple[int, ...]:
    """Vectorised MinHash over the unique shingle hashes."""
    shingle_hashes = np.unique(shingle_hash_vector(tokens, k))
    mults = np.asarray(PERMUTE_MULTIPLIERS, dtype=np.uint64)[:, None]
    xors = np.asarray(PERMUTE_XORS, dtype=np.uint64)[:, None]
    with np.errstate(over="ignore"):
        permuted = (shingle_hashes[None, :] ^ xors) * mults
    return tuple(int(value) for value in permuted.min(axis=1))


def minhash_sketch(text: str, k: int = DEFAULT_K) -> tuple[int, ...]:
    """The MinHash sketch of ``text``'s k-shingle set.

    Empty documents sketch to all-zeros sentinel values so that two
    empty bodies compare as identical. The sketch is a pure function
    of the text — bit-identical on either numeric backend.
    """
    tokens = tokenize(text)
    if not tokens:
        return (0,) * NUM_MINHASHES
    np = get_numpy()
    if np is None:
        return _minhash_py(tokens, k)
    return _minhash_np(np, tokens, k)


def sketch_similarity(a: tuple[int, ...], b: tuple[int, ...]) -> float:
    """Estimated Jaccard similarity from two MinHash sketches."""
    if len(a) != len(b) or not a:
        raise ValueError("sketches must be the same non-zero length")
    matches = sum(1 for x, y in zip(a, b) if x == y)
    return matches / len(a)
