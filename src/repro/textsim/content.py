"""Deterministic synthetic page content.

The soft-404 detector (§3) only works if the simulated web serves
*content* with the right statistical structure:

- two distinct real pages must be textually dissimilar;
- a soft-404 page and the error page for a random sibling URL on the
  same site must be nearly identical (similarity > 99%) but not
  byte-identical, because the paper explicitly avoids requiring
  identical responses ("multiple requests for even the same URL can
  yield slightly different responses");
- repeated fetches of the *same* page must differ slightly too.

Content is generated deterministically from a site seed and the page
path, with a per-fetch nonce line injected to model dynamic noise.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

_VOCAB = (
    "the", "of", "and", "a", "in", "to", "was", "is", "for", "as", "on",
    "with", "by", "at", "from", "its", "an", "were", "which", "this",
    "city", "team", "season", "match", "festival", "river", "county",
    "museum", "record", "album", "band", "minister", "election", "club",
    "championship", "village", "station", "university", "bridge",
    "historic", "national", "report", "council", "district", "harbor",
    "coast", "valley", "summit", "treaty", "archive", "library",
    "orchestra", "stadium", "airport", "railway", "cathedral", "garden",
)

_ERROR_TEMPLATES = (
    "sorry the page you requested could not be found please check the "
    "address or return to our homepage use the search box to find what "
    "you are looking for error reference",
    "page not found the content you are looking for may have been moved "
    "or removed browse our latest headlines or visit the site map error",
    "we could not find that page it may have expired or the link may be "
    "incorrect visit the homepage for the latest stories reference code",
)

_PARKED_TEMPLATE = (
    "this domain is for sale buy this premium domain now related searches "
    "cheap flights insurance quotes online degrees credit cards best "
    "hotels click here sponsored listings inquire about this domain"
)

_LOGIN_TEMPLATE = (
    "sign in to your account email address password remember me forgot "
    "your password register for a new account subscribe to continue "
    "reading log in with your member credentials"
)


#: Length, in tokens, of boilerplate pages (error / parked / login).
#: Sized so that the single dynamic nonce token keeps the 4-shingle
#: Jaccard similarity between two renders above the paper's 99%
#: detector threshold: sim ~= (N - 4) / (N + 4) >= 0.99 needs N >= 800.
BOILERPLATE_WORDS = 900


def _words_from_digest(seed: str, count: int) -> list[str]:
    """Deterministically expand ``seed`` into ``count`` vocabulary words."""
    words: list[str] = []
    counter = 0
    while len(words) < count:
        digest = hashlib.sha256(f"{seed}:{counter}".encode("utf-8")).digest()
        for byte in digest:
            words.append(_VOCAB[byte % len(_VOCAB)])
            if len(words) == count:
                break
        counter += 1
    return words


@dataclass(frozen=True, slots=True)
class PageContent:
    """A rendered response body plus its stable core text.

    ``body`` is what a fetch returns (includes the per-fetch nonce);
    ``core`` is the stable portion, exposed for tests.
    """

    body: str
    core: str


class ContentGenerator:
    """Generates page bodies for one site.

    All variation between fetches comes from the ``nonce`` argument
    (the fetcher passes a monotonically increasing counter), so content
    is fully deterministic given (site_seed, path, nonce).
    """

    #: Approximate length, in words, of a real article body.
    ARTICLE_WORDS = 220
    #: Length of the dynamic noise line appended to every response.
    NONCE_WORDS = 1

    def __init__(self, site_seed: str) -> None:
        self.site_seed = site_seed
        template_index = int(
            hashlib.sha256(f"{site_seed}:errstyle".encode()).hexdigest(), 16
        )
        self._error_core = _ERROR_TEMPLATES[template_index % len(_ERROR_TEMPLATES)]
        # Cores are deterministic functions of (site_seed, path); caching
        # them keeps per-request rendering cheap when the same page is
        # fetched many times (bot sweeps, archive captures, probes).
        self._core_cache: dict[str, str] = {}

    # -- core text per page kind ---------------------------------------------

    def article_core(self, path: str) -> str:
        """The stable text of a real page at ``path``."""
        key = f"article:{path}"
        core = self._core_cache.get(key)
        if core is None:
            words = _words_from_digest(
                f"{self.site_seed}:{path}", self.ARTICLE_WORDS
            )
            core = " ".join(words)
            self._core_cache[key] = core
        return core

    def homepage_core(self) -> str:
        """The stable text of the site's homepage."""
        core = self._core_cache.get("homepage")
        if core is None:
            words = _words_from_digest(f"{self.site_seed}:/", self.ARTICLE_WORDS)
            core = "latest headlines " + " ".join(words)
            self._core_cache["homepage"] = core
        return core

    def error_core(self) -> str:
        """The site-wide 'not found' page text (identical for all paths).

        Padded with deterministic site boilerplate (think navigation,
        footer, sitemap links) so the page is long enough for the
        99%-similarity detector to see two renders as near-identical.
        """
        return self._boilerplate(
            "errpage", self._error_core + " " + self.site_seed[:8]
        )

    def parked_core(self) -> str:
        """Parked-domain lander text (identical for all paths)."""
        return self._boilerplate("parked", _PARKED_TEMPLATE)

    def login_core(self) -> str:
        """The site's login-page text."""
        return self._boilerplate(
            "login", _LOGIN_TEMPLATE + " " + self.site_seed[:8]
        )

    def _boilerplate(self, kind: str, lead: str) -> str:
        """``lead`` padded to :data:`BOILERPLATE_WORDS` tokens."""
        core = self._core_cache.get(kind)
        if core is None:
            need = max(0, BOILERPLATE_WORDS - len(lead.split()))
            filler = _words_from_digest(f"{self.site_seed}:{kind}:boiler", need)
            core = lead + " " + " ".join(filler)
            self._core_cache[kind] = core
        return core

    # -- rendered responses -----------------------------------------------------

    def render(self, core: str, nonce: int) -> PageContent:
        """Attach the dynamic noise line for one fetch.

        The nonce line is a single token, tiny relative to the body, so
        shingle similarity between two renders of the same core stays
        above 99% while byte equality fails.
        """
        noise = hashlib.sha256(
            f"{self.site_seed}:nonce:{nonce}".encode()
        ).hexdigest()[:10]
        return PageContent(body=f"{core} req{noise}", core=core)

    def article(self, path: str, nonce: int) -> PageContent:
        """One render of the page at ``path``."""
        return self.render(self.article_core(path), nonce)

    def homepage(self, nonce: int) -> PageContent:
        """One render of the homepage."""
        return self.render(self.homepage_core(), nonce)

    def error_page(self, nonce: int) -> PageContent:
        """One render of the site's not-found page."""
        return self.render(self.error_core(), nonce)

    def parked_page(self, nonce: int) -> PageContent:
        """One render of the parked-domain lander."""
        return self.render(self.parked_core(), nonce)

    def login_page(self, nonce: int) -> PageContent:
        """One render of the login page."""
        return self.render(self.login_core(), nonce)
