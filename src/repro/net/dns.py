"""Simulated DNS.

A hostname resolves only while its registration interval covers the
query time. Site abandonment — the dominant cause of the paper's
"DNS Failure" bucket — is modelled by ending the interval; a later
re-registration (e.g. by a domain squatter who then serves a parked
page) is a second record for the same hostname.
"""

from __future__ import annotations

from bisect import insort
from dataclasses import dataclass, field

from ..clock import SimTime
from ..errors import DnsError


@dataclass(frozen=True, slots=True)
class DnsRecord:
    """One registration interval for a hostname.

    ``expires_at`` of ``None`` means the registration is still active
    at the end of the simulation. ``address`` is an opaque identifier
    for the serving endpoint (the site id in our web model).
    """

    hostname: str
    address: str
    registered_at: SimTime
    expires_at: SimTime | None = None

    def active_at(self, at: SimTime) -> bool:
        """Whether the registration interval covers instant ``at``."""
        if at < self.registered_at:
            return False
        return self.expires_at is None or at < self.expires_at


@dataclass
class DnsTable:
    """All DNS state for the simulated web.

    Lookup returns the record active at the query time; if none is
    active, resolution raises :class:`~repro.errors.DnsError`
    (NXDOMAIN), matching what a real resolver reports for an expired
    domain.
    """

    _records: dict[str, list[DnsRecord]] = field(default_factory=dict)

    def register(self, record: DnsRecord) -> None:
        """Add a registration interval for a hostname.

        Overlapping intervals for the same hostname are rejected: a
        name can only point at one endpoint at a time.
        """
        host = record.hostname.lower()
        existing = self._records.setdefault(host, [])
        for other in existing:
            if self._overlaps(record, other):
                raise DnsError(
                    host, f"overlapping registration with {other.address!r}"
                )
        insort(existing, record, key=lambda r: r.registered_at.days)

    def resolve(self, hostname: str, at: SimTime) -> DnsRecord:
        """The record active for ``hostname`` at time ``at``.

        Raises :class:`~repro.errors.DnsError` when the hostname was
        never registered or its registration has lapsed.
        """
        host = hostname.lower()
        records = self._records.get(host)
        if not records:
            raise DnsError(host, "NXDOMAIN")
        for record in records:
            if record.active_at(at):
                return record
        raise DnsError(host, "NXDOMAIN (registration lapsed)")

    def hostnames(self) -> list[str]:
        """All hostnames ever registered, sorted."""
        return sorted(self._records)

    def records_for(self, hostname: str) -> tuple[DnsRecord, ...]:
        """All registration intervals for ``hostname`` in time order."""
        return tuple(self._records.get(hostname.lower(), ()))

    @staticmethod
    def _overlaps(a: DnsRecord, b: DnsRecord) -> bool:
        a_end = a.expires_at.days if a.expires_at is not None else float("inf")
        b_end = b.expires_at.days if b.expires_at is not None else float("inf")
        return a.registered_at.days < b_end and b.registered_at.days < a_end
