"""HTTP request/response value types for the simulation.

Responses carry the pieces the study reads: the status code, the
``Location`` header for redirects, and the body text (for soft-404
similarity checks). ``latency_ms`` models server/API response time so
that timeout-sensitive clients (IABot's availability lookups) behave
realistically.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..urls.parse import ParsedUrl, parse_url


@dataclass(frozen=True, slots=True)
class HttpRequest:
    """A GET request for one URL (the only method the study issues)."""

    url: ParsedUrl

    @classmethod
    def get(cls, url: str | ParsedUrl) -> "HttpRequest":
        """Build a GET request from a URL string or ParsedUrl."""
        if isinstance(url, str):
            url = parse_url(url)
        return cls(url=url)


@dataclass(frozen=True, slots=True)
class HttpResponse:
    """One hop of an HTTP exchange.

    Attributes:
        url: the URL this response was served for.
        status: HTTP status code of this hop.
        body: response body text (empty for redirects).
        location: redirect target for 3xx responses, else ``None``.
        latency_ms: simulated time-to-first-byte for this hop.
    """

    url: str
    status: int
    body: str = ""
    location: str | None = None
    latency_ms: float = 50.0

    def __post_init__(self) -> None:
        if not 100 <= self.status <= 599:
            raise ValueError(f"invalid HTTP status {self.status}")
        if self.status in (301, 302, 303, 307, 308) and not self.location:
            raise ValueError(f"redirect response {self.status} needs a location")

    @property
    def is_redirect(self) -> bool:
        """3xx with a Location header."""
        return self.location is not None and self.status in (301, 302, 303, 307, 308)

    def describe(self) -> str:
        """Short human-readable form for logs and examples."""
        if self.is_redirect:
            return f"{self.status} -> {self.location}"
        return f"{self.status} ({len(self.body)} bytes)"
