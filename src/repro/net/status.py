"""HTTP status taxonomy and the paper's five-way outcome classification.

Figure 4 buckets every probe into one of: DNS Failure, Timeout, 404,
200, Other. "Initial status code" means the status of the first
response (before any redirect); "final status code" means the status
after all redirects — the paper uses both (§2.4).
"""

from __future__ import annotations

import enum


class Outcome(enum.Enum):
    """The five live-web outcome categories of Figure 4."""

    DNS_FAILURE = "DNS Failure"
    TIMEOUT = "Timeout"
    HTTP_404 = "404"
    HTTP_200 = "200"
    OTHER = "Other"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Order in which Figure 4 presents the categories.
FIGURE4_ORDER = (
    Outcome.DNS_FAILURE,
    Outcome.TIMEOUT,
    Outcome.HTTP_404,
    Outcome.HTTP_200,
    Outcome.OTHER,
)


def is_success(status: int) -> bool:
    """2xx."""
    return 200 <= status < 300


def is_redirect(status: int) -> bool:
    """3xx with a Location header semantics (301/302/303/307/308)."""
    return status in (301, 302, 303, 307, 308)


def is_client_error(status: int) -> bool:
    """4xx."""
    return 400 <= status < 500


def is_server_error(status: int) -> bool:
    """5xx."""
    return 500 <= status < 600


def classify_final_status(status: int) -> Outcome:
    """Map a final HTTP status to a Figure 4 category.

    DNS failures and timeouts never reach this function — they have no
    status code and are classified by the fetcher directly.
    """
    if status == 404:
        return Outcome.HTTP_404
    if status == 200:
        return Outcome.HTTP_200
    return Outcome.OTHER
