"""Simulated network stack: DNS, HTTP, and a redirect-following fetcher.

The paper probes each URL with a plain HTTP GET, following redirects,
and classifies the outcome into five categories (Figure 4): DNS
failure, timeout, 404, 200, other. This package provides exactly that
client, plus the transport-level failure modes (NXDOMAIN, connection
timeouts) that the simulated web triggers.
"""

from .dns import DnsRecord, DnsTable
from .fetch import FetchResult, Fetcher
from .http import HttpRequest, HttpResponse
from .status import Outcome, classify_final_status, is_redirect, is_success

__all__ = [
    "DnsRecord",
    "DnsTable",
    "FetchResult",
    "Fetcher",
    "HttpRequest",
    "HttpResponse",
    "Outcome",
    "classify_final_status",
    "is_redirect",
    "is_success",
]
