"""A redirect-following HTTP GET client over the simulated network.

This is the probe the whole study rides on. One call resolves DNS,
connects, issues the GET, follows redirects (re-resolving each hop's
hostname), and produces a :class:`FetchResult` carrying the full
response chain plus the Figure-4 outcome classification.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

from ..backends.core import Op, RetryLayer
from ..clock import SimTime
from ..errors import ConnectionTimeout, DnsError, UrlError
from ..obs.trace import Tracer
from ..retry import RetryCounters, RetryPolicy
from ..urls.parse import ParsedUrl, parse_url
from .dns import DnsTable
from .http import HttpRequest, HttpResponse
from .status import Outcome, classify_final_status

DEFAULT_MAX_REDIRECTS = 10


class OriginServer(Protocol):
    """Anything that can answer a GET for a resolved address.

    Implementations may raise :class:`~repro.errors.ConnectionTimeout`
    to model unreachable-but-registered hosts.
    """

    def handle(
        self, address: str, request: HttpRequest, at: SimTime
    ) -> HttpResponse:
        """Serve one GET for the resolved ``address``."""
        ...


@dataclass(frozen=True, slots=True)
class FetchResult:
    """The observable result of fetching one URL at one point in time.

    Attributes:
        url: the URL requested.
        outcome: Figure-4 classification of what happened.
        chain: every HTTP response hop, in order (empty when DNS failed
            or the connection timed out).
        error: transport-level error description, if any.
    """

    url: str
    outcome: Outcome
    chain: tuple[HttpResponse, ...] = field(default_factory=tuple)
    error: str | None = None

    @property
    def initial_status(self) -> int | None:
        """Status before any redirection (None on DNS failure/timeout)."""
        return self.chain[0].status if self.chain else None

    @property
    def final_status(self) -> int | None:
        """Status after all redirections (None on DNS failure/timeout)."""
        return self.chain[-1].status if self.chain else None

    @property
    def final_url(self) -> str | None:
        """The URL that produced the final response."""
        return self.chain[-1].url if self.chain else None

    @property
    def body(self) -> str:
        """Body of the final response (empty on transport failure)."""
        return self.chain[-1].body if self.chain else ""

    @property
    def redirected(self) -> bool:
        """Whether any redirect hop occurred before the final response."""
        return len(self.chain) > 1

    @property
    def ok(self) -> bool:
        """IABot's aliveness criterion: final status 200."""
        return self.final_status == 200

    def describe(self) -> str:
        """One-line summary for logs and examples."""
        if self.error:
            return f"{self.url} -> {self.outcome.value} ({self.error})"
        hops = " -> ".join(str(hop.status) for hop in self.chain)
        return f"{self.url} -> [{hops}] {self.outcome.value}"


class Fetcher:
    """HTTP GET with redirect following over a DNS table and origin fabric.

    Args:
        dns: the simulated DNS table.
        origin: the server fabric (the live web, in practice).
        max_redirects: hop budget before giving up with outcome OTHER.
        retry_policy: backoff schedule for *transient* DNS/connect
            failures (see :mod:`repro.retry`); ``None`` (the default)
            never retries, reproducing the retry-less client exactly.
            Permanent failures — NXDOMAIN, a dead origin — are never
            retried regardless of policy.
        tracer: optional :class:`~repro.obs.trace.Tracer`; when set,
            every fetch records a ``kind="net.fetch"`` span carrying
            the URL, outcome, hop count, and any virtual backoff spent
            on transient retries. ``None`` (the default) leaves the
            hot path untouched.
    """

    def __init__(
        self,
        dns: DnsTable,
        origin: OriginServer,
        max_redirects: int = DEFAULT_MAX_REDIRECTS,
        retry_policy: RetryPolicy | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        self._dns = dns
        self._origin = origin
        self._max_redirects = max_redirects
        self._retry_policy = retry_policy
        self._tracer = tracer
        self._fetch_count = 0
        self.retry_counters = RetryCounters()
        # The two transport legs ride the shared retry layer; both pool
        # into this fetcher's RetryCounters, so retry/giveup/backoff
        # accounting spans DNS and connect together.
        self._resolve = RetryLayer(
            Op("dns.resolve", lambda req: self._dns.resolve(req[0], req[1])),
            policy=retry_policy,
            key_fn=lambda req: f"dns:{req[0]}",
            counters=self.retry_counters,
        )
        self._connect = RetryLayer(
            Op("origin.handle", lambda req: self._origin.handle(*req)),
            policy=retry_policy,
            key_fn=lambda req: f"connect:{req[1].url}",
            counters=self.retry_counters,
        )

    @property
    def fetch_count(self) -> int:
        """Number of fetches issued (for efficiency accounting)."""
        return self._fetch_count

    @property
    def retry_count(self) -> int:
        """Transient-failure retries performed across all fetches."""
        return self.retry_counters.retries

    @property
    def giveup_count(self) -> int:
        """Transient failures that survived the whole retry budget."""
        return self.retry_counters.giveups

    @property
    def backoff_ms(self) -> float:
        """Total virtual backoff delay accumulated while retrying."""
        return self.retry_counters.backoff_ms

    def fetch(self, url: str | ParsedUrl, at: SimTime) -> FetchResult:
        """GET ``url`` at simulated time ``at``, following redirects.

        Malformed URLs yield a DNS_FAILURE outcome (a browser would
        fail to resolve garbage too) rather than raising, so analysis
        loops never crash on a typo'd scheme.
        """
        if self._tracer is None:
            return self._fetch(url, at)
        backoff_before = self.retry_counters.backoff_ms
        with self._tracer.span(
            "fetch", kind="net.fetch", sim=at, url=str(url)
        ) as span:
            result = self._fetch(url, at)
            span.add_virtual_ms(
                self.retry_counters.backoff_ms - backoff_before
            )
            span.set(outcome=result.outcome.value, hops=len(result.chain))
            return result

    def _fetch(self, url: str | ParsedUrl, at: SimTime) -> FetchResult:
        self._fetch_count += 1
        try:
            current = parse_url(url) if isinstance(url, str) else url
        except UrlError as exc:
            return FetchResult(
                url=str(url), outcome=Outcome.DNS_FAILURE, error=str(exc)
            )
        requested = str(current)
        chain: list[HttpResponse] = []
        seen: set[str] = set()
        for _ in range(self._max_redirects + 1):
            host = current.host_lower
            try:
                record = self._resolve.call((host, at))
            except DnsError as exc:
                if chain:
                    # A redirect pointed at a dead hostname; the final
                    # observable state is the redirect chain so far,
                    # which did not end in 200/404.
                    return FetchResult(
                        url=requested,
                        outcome=Outcome.OTHER,
                        chain=tuple(chain),
                        error=str(exc),
                    )
                return FetchResult(
                    url=requested, outcome=Outcome.DNS_FAILURE, error=str(exc)
                )
            request = HttpRequest(url=current)
            try:
                response = self._connect.call((record.address, request, at))
            except ConnectionTimeout as exc:
                if chain:
                    return FetchResult(
                        url=requested,
                        outcome=Outcome.OTHER,
                        chain=tuple(chain),
                        error=str(exc),
                    )
                return FetchResult(
                    url=requested, outcome=Outcome.TIMEOUT, error=str(exc)
                )
            chain.append(response)
            if not response.is_redirect:
                return FetchResult(
                    url=requested,
                    outcome=classify_final_status(response.status),
                    chain=tuple(chain),
                )
            target = response.location
            assert target is not None
            if target in seen or target == str(current):
                # Redirect loop: surface what we have as OTHER.
                return FetchResult(
                    url=requested,
                    outcome=Outcome.OTHER,
                    chain=tuple(chain),
                    error="redirect loop",
                )
            seen.add(str(current))
            try:
                current = parse_url(target)
            except UrlError as exc:
                return FetchResult(
                    url=requested,
                    outcome=Outcome.OTHER,
                    chain=tuple(chain),
                    error=f"bad redirect target: {exc}",
                )
        return FetchResult(
            url=requested,
            outcome=Outcome.OTHER,
            chain=tuple(chain),
            error=f"more than {self._max_redirects} redirects",
        )
