"""Section 5.2 / Figure 6: how isolated are the never-archived URLs?

For links with no archived copies at all, two CDX queries per link
measure the size of the coverage gap: how many *other* URLs in the
same directory, and under the same hostname, have successfully
archived (initial status 200) copies. Mostly-page-specific gaps mean
the archive knew the site but missed the page — usually because the
URL carries unbounded query parameters.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..archive.cdx import CdxApi, CdxQuery, MatchType
from ..dataset.records import LinkRecord
from ..urls.parse import QueryArgs, parse_url


@dataclass(frozen=True, slots=True)
class SpatialRecord:
    """Coverage context of one never-archived link."""

    record: LinkRecord
    directory_neighbors: int
    hostname_neighbors: int
    query_param_count: int

    @property
    def directory_gap(self) -> bool:
        """No successfully archived URL shares the directory."""
        return self.directory_neighbors == 0

    @property
    def hostname_gap(self) -> bool:
        """No successfully archived URL shares the hostname."""
        return self.hostname_neighbors == 0


@dataclass
class SpatialReport:
    """Aggregate §5.2 coverage results."""

    records: list[SpatialRecord] = field(default_factory=list)

    @property
    def directory_counts(self) -> list[int]:
        """Figure 6's directory-level series."""
        return [r.directory_neighbors for r in self.records]

    @property
    def hostname_counts(self) -> list[int]:
        """Figure 6's hostname-level series."""
        return [r.hostname_neighbors for r in self.records]

    @property
    def directory_gaps(self) -> list[SpatialRecord]:
        """Links with zero dir-level coverage (the paper's 749)."""
        return [r for r in self.records if r.directory_gap]

    @property
    def hostname_gaps(self) -> list[SpatialRecord]:
        """Links with zero host-level coverage (the paper's 256)."""
        return [r for r in self.records if r.hostname_gap]

    @property
    def query_heavy(self) -> list[SpatialRecord]:
        """Links with 3+ query parameters (the unarchivable style)."""
        return [r for r in self.records if r.query_param_count >= 3]


def spatial_analysis(
    records: list[LinkRecord], cdx: CdxApi
) -> SpatialReport:
    """Run §5.2 over the never-archived links."""
    report = SpatialReport()
    for record in records:
        directory = cdx.archived_urls(
            CdxQuery(
                url=record.url,
                match_type=MatchType.DIRECTORY,
                initial_status=200,
                exclude_self=True,
            )
        )
        hostname = cdx.archived_urls(
            CdxQuery(
                url=record.url,
                match_type=MatchType.HOST,
                initial_status=200,
                exclude_self=True,
            )
        )
        params = len(QueryArgs.parse(parse_url(record.url).query))
        report.records.append(
            SpatialRecord(
                record=record,
                directory_neighbors=len(directory),
                hostname_neighbors=len(hostname),
                query_param_count=params,
            )
        )
    return report
