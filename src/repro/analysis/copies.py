"""Section 4.1: what archived copies existed before a link was marked?

IABot marks a link permanently dead when it finds no archived copy
whose initial status was 200 — which, because of bounded availability
lookups, "does not mean that there are no archived copies for that
link". The census splits each link's snapshot history at its marking
date and records what was actually there.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..archive.cdx import CdxApi, CdxQuery, MatchType
from ..archive.snapshot import Snapshot
from ..dataset.records import LinkRecord


@dataclass(frozen=True, slots=True)
class CopyCensus:
    """One link's archived-copy history, split at its marking date."""

    record: LinkRecord
    pre_marking: tuple[Snapshot, ...]
    post_marking: tuple[Snapshot, ...]

    @property
    def all_snapshots(self) -> tuple[Snapshot, ...]:
        """Every capture of the link, in time order."""
        return self.pre_marking + self.post_marking

    @property
    def has_any_copy(self) -> bool:
        """Whether the archive ever captured the link at all."""
        return bool(self.all_snapshots)

    @property
    def pre_marking_200(self) -> tuple[Snapshot, ...]:
        """Copies IABot *should* have been able to use (§4.1)."""
        return tuple(s for s in self.pre_marking if s.initial_ok)

    @property
    def pre_marking_3xx(self) -> tuple[Snapshot, ...]:
        """Copies IABot conservatively refused to use (§4.2)."""
        return tuple(s for s in self.pre_marking if s.initial_redirected)

    @property
    def has_pre_marking_200(self) -> bool:
        """Whether a usable (initial-200) copy predates the marking."""
        return bool(self.pre_marking_200)

    @property
    def has_pre_marking_3xx(self) -> bool:
        """Whether a redirect copy predates the marking."""
        return bool(self.pre_marking_3xx)

    @property
    def first_snapshot(self) -> Snapshot | None:
        """The earliest capture ever, or None."""
        snapshots = self.all_snapshots
        return snapshots[0] if snapshots else None

    @property
    def first_post_marking(self) -> Snapshot | None:
        """The earliest capture at or after the marking, or None."""
        return self.post_marking[0] if self.post_marking else None


def census_link(record: LinkRecord, cdx: CdxApi) -> CopyCensus:
    """Full snapshot history of one link via exact CDX queries."""
    rows = cdx.query(CdxQuery(url=record.url, match_type=MatchType.EXACT))
    pre = tuple(row for row in rows if row.captured_at < record.marked_at)
    post = tuple(row for row in rows if not row.captured_at < record.marked_at)
    return CopyCensus(record=record, pre_marking=pre, post_marking=post)


def census_links(records: list[LinkRecord], cdx: CdxApi) -> list[CopyCensus]:
    """Censuses for the whole dataset, in input order."""
    return [census_link(record, cdx) for record in records]
