"""Section 5.2's typo detection.

"We deem a permanently dead link to potentially be a typo if there
exists only one archived URL with an edit distance of exactly 1" under
the same registrable domain. A unique distance-1 neighbour strongly
suggests the user mangled one character of a real URL; multiple
near-neighbours usually mean a numeric page-id family, where a missing
page is indistinguishable from a typo.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..archive.cdx import CdxApi, CdxQuery, MatchType
from ..dataset.records import LinkRecord
from ..urls.editdist import unique_neighbor


@dataclass(frozen=True, slots=True)
class TypoFinding:
    """A never-archived link with a unique distance-1 archived sibling."""

    record: LinkRecord
    corrected_url: str


@dataclass
class TypoReport:
    """Aggregate typo-detection results."""

    findings: list[TypoFinding] = field(default_factory=list)
    examined: int = 0

    def __len__(self) -> int:
        return len(self.findings)


def find_typos(records: list[LinkRecord], cdx: CdxApi) -> TypoReport:
    """Scan never-archived links for unique distance-1 corrections.

    Only URLs with successfully archived copies qualify as correction
    candidates — the point is that the *intended* URL was real and
    archived while the posted one never existed.
    """
    report = TypoReport()
    for record in records:
        report.examined += 1
        candidates = cdx.archived_urls(
            CdxQuery(
                url=record.url,
                match_type=MatchType.DOMAIN,
                initial_status=200,
                exclude_self=True,
            )
        )
        match = unique_neighbor(record.url, list(candidates), distance=1)
        if match is not None:
            report.findings.append(
                TypoFinding(record=record, corrected_url=match)
            )
    return report
