"""Dataset representativeness (§2.4's September-2022 check).

The paper validated its alphabetical-prefix dataset against a fully
random sample of the permanently-dead population and found the Figure
3 and Figure 4 distributions "largely identical". This module makes
that comparison a first-class, reusable analysis: KS distances over
each Figure 3 dimension and total-variation distance over the Figure 4
buckets, with a single verdict.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..clock import SimTime
from ..dataset.records import Dataset
from ..net.fetch import Fetcher
from ..net.status import FIGURE4_ORDER
from ..reporting.cdf import ecdf
from .live_status import classify_links, outcome_counts

#: Default thresholds for "largely identical".
KS_THRESHOLD = 0.12
TV_THRESHOLD = 0.06


@dataclass(frozen=True, slots=True)
class RepresentativenessReport:
    """Distances between a dataset and its random-sample control."""

    ks_urls_per_domain: float
    ks_site_ranking: float
    ks_posting_year: float
    tv_live_status: float
    ks_threshold: float = KS_THRESHOLD
    tv_threshold: float = TV_THRESHOLD

    @property
    def representative(self) -> bool:
        """The paper's verdict: every dimension within threshold."""
        return (
            self.ks_urls_per_domain <= self.ks_threshold
            and self.ks_site_ranking <= self.ks_threshold
            and self.ks_posting_year <= self.ks_threshold
            and self.tv_live_status <= self.tv_threshold
        )

    def describe(self) -> str:
        """One-line distances-plus-verdict summary."""
        verdict = "representative" if self.representative else "DIVERGENT"
        return (
            f"KS(urls/domain)={self.ks_urls_per_domain:.3f} "
            f"KS(ranking)={self.ks_site_ranking:.3f} "
            f"KS(posting year)={self.ks_posting_year:.3f} "
            f"TV(live status)={self.tv_live_status:.3f} -> {verdict}"
        )


def compare_datasets(
    dataset: Dataset,
    control: Dataset,
    fetcher: Fetcher,
    at: SimTime,
    ks_threshold: float = KS_THRESHOLD,
    tv_threshold: float = TV_THRESHOLD,
) -> RepresentativenessReport:
    """Figure 3 KS distances plus the Figure 4 total-variation distance.

    The default thresholds suit paper-scale samples (thousands of
    links); small samples need looser bands (binomial noise in the
    Figure 4 shares alone is ~1/sqrt(n) per bucket).
    """
    ks_domain = ecdf(list(dataset.domains().values())).ks_distance(
        ecdf(list(control.domains().values()))
    )
    ks_rank = ecdf(dataset.rankings()).ks_distance(ecdf(control.rankings()))
    ks_year = ecdf(dataset.posting_years()).ks_distance(
        ecdf(control.posting_years())
    )
    tv = _live_status_distance(dataset, control, fetcher, at)
    return RepresentativenessReport(
        ks_urls_per_domain=ks_domain,
        ks_site_ranking=ks_rank,
        ks_posting_year=ks_year,
        tv_live_status=tv,
        ks_threshold=ks_threshold,
        tv_threshold=tv_threshold,
    )


def _live_status_distance(
    dataset: Dataset, control: Dataset, fetcher: Fetcher, at: SimTime
) -> float:
    """Total-variation distance between the Figure 4 bucket shares."""
    ours = outcome_counts(classify_links(dataset.records, fetcher, at))
    theirs = outcome_counts(classify_links(control.records, fetcher, at))
    n_ours = max(sum(ours.values()), 1)
    n_theirs = max(sum(theirs.values()), 1)
    return 0.5 * sum(
        abs(ours[outcome] / n_ours - theirs[outcome] / n_theirs)
        for outcome in FIGURE4_ORDER
    )
