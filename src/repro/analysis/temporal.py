"""Section 5.1 / Figure 5: when was the first copy captured?

For links the Wayback Machine did archive (but never successfully),
the gap between the Wikipedia posting date and the first subsequent
capture explains *why* no working copy exists: "the Internet Archive
often captured its first copy of that link only several months or
years later", by which time the URL had died.

Links whose earliest copy predates the posting are reported separately
(the paper sets those 619 aside); links captured the same day they
were posted get an erroneousness check — a broken-on-day-one copy
means the link never worked (a user typo).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..archive.cdx import CdxApi
from .archived_soft404 import archived_copy_erroneous
from .copies import CopyCensus


@dataclass(frozen=True, slots=True)
class TemporalRecord:
    """Timing of one link's first archive capture."""

    census: CopyCensus
    pre_posting_copy: bool
    gap_days: float | None            # None when pre_posting_copy
    same_day: bool
    first_copy_erroneous: bool | None  # judged only for same-day captures

    @property
    def url(self) -> str:
        """The link's URL."""
        return self.census.record.url


@dataclass
class TemporalReport:
    """Aggregate §5.1 results."""

    records: list[TemporalRecord] = field(default_factory=list)

    @property
    def with_pre_posting_copy(self) -> list[TemporalRecord]:
        """Links archived before they were even posted (the 619)."""
        return [r for r in self.records if r.pre_posting_copy]

    @property
    def gap_population(self) -> list[TemporalRecord]:
        """Figure 5's population: first copy strictly after posting."""
        return [r for r in self.records if not r.pre_posting_copy]

    @property
    def gaps_days(self) -> list[float]:
        """Figure 5's x-values."""
        return [
            r.gap_days for r in self.gap_population if r.gap_days is not None
        ]

    @property
    def same_day(self) -> list[TemporalRecord]:
        """Links captured the day they were posted (the 437)."""
        return [r for r in self.gap_population if r.same_day]

    @property
    def same_day_erroneous(self) -> list[TemporalRecord]:
        """Same-day captures that were already broken (the 266 typos)."""
        return [r for r in self.same_day if r.first_copy_erroneous]


def temporal_analysis(
    censuses: list[CopyCensus], cdx: CdxApi
) -> TemporalReport:
    """Run §5.1 over every link that has at least one archived copy."""
    report = TemporalReport()
    for census in censuses:
        first = census.first_snapshot
        if first is None:
            continue
        posted = census.record.posted_at
        if first.captured_at < posted:
            report.records.append(
                TemporalRecord(
                    census=census,
                    pre_posting_copy=True,
                    gap_days=None,
                    same_day=False,
                    first_copy_erroneous=None,
                )
            )
            continue
        gap = max(first.captured_at.days - posted.days, 0.0)
        same_day = first.captured_at.same_day(posted)
        erroneous = (
            archived_copy_erroneous(first, cdx) if same_day else None
        )
        report.records.append(
            TemporalRecord(
                census=census,
                pre_posting_copy=False,
                gap_days=gap,
                same_day=same_day,
                first_copy_erroneous=erroneous,
            )
        )
    return report
