"""Section 3 / Figure 4: what do the links do on the live web today?

Every sampled URL gets one GET (with redirects); the outcome is
classified into DNS Failure / Timeout / 404 / 200 / Other, exactly the
paper's five buckets.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..clock import SimTime
from ..dataset.records import LinkRecord
from ..net.fetch import Fetcher, FetchResult
from ..net.status import FIGURE4_ORDER, Outcome
from .columnar import bucket_counts


@dataclass(frozen=True, slots=True)
class LiveProbe:
    """One link's live-web probe result."""

    record: LinkRecord
    result: FetchResult

    @property
    def outcome(self) -> Outcome:
        """The probe's Figure 4 bucket."""
        return self.result.outcome

    @property
    def returned_200(self) -> bool:
        """Final status 200 (the §3 soft-404 screening population)."""
        return self.result.final_status == 200

    @property
    def redirected(self) -> bool:
        """Whether the probe followed at least one redirect."""
        return self.result.redirected


def classify_links(
    records: list[LinkRecord], fetcher: Fetcher, at: SimTime
) -> list[LiveProbe]:
    """Probe every link once at instant ``at``."""
    return [
        LiveProbe(record=record, result=fetcher.fetch(record.url, at))
        for record in records
    ]


def outcome_counts(probes: list[LiveProbe]) -> dict[Outcome, int]:
    """Figure 4's bar heights, in presentation order.

    Outcomes outside :data:`FIGURE4_ORDER` (a future sixth bucket, a
    probe recorded by an older taxonomy) are appended after the
    presentation-ordered five rather than crashing the whole report.
    """
    return bucket_counts(
        (probe.outcome for probe in probes), order=FIGURE4_ORDER
    )
