"""Query-parameter-reordering recovery (§5.2, implication b).

For never-archived URLs that carry many query parameters, the paper
suggests "looking for archived URLs which are identical except that
they include the query parameters in a different order". Different
orderings are distinct strings (so exact Wayback lookups miss them)
but name the same resource on virtually every server.

This module implements that recovery: canonicalise the query (sorted
key/value pairs) and scan the archived URLs of the same directory for
an order-insensitive match.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..archive.cdx import CdxApi, CdxQuery, MatchType
from ..dataset.records import LinkRecord
from ..errors import UrlError
from ..urls.parse import QueryArgs, parse_url


@dataclass(frozen=True, slots=True)
class VariantFinding:
    """A never-archived URL whose reordered twin is archived."""

    record: LinkRecord
    archived_variant: str


@dataclass
class VariantReport:
    """Aggregate results of the reordered-parameter scan."""

    findings: list[VariantFinding] = field(default_factory=list)
    examined: int = 0
    with_query: int = 0

    def __len__(self) -> int:
        return len(self.findings)


def canonical_key(url: str) -> tuple[str, tuple[tuple[str, str], ...]] | None:
    """(directory+path, sorted query pairs) — order-insensitive identity.

    ``None`` for unparseable URLs.
    """
    try:
        parsed = parse_url(url)
    except UrlError:
        return None
    base = f"{parsed.scheme}://{parsed.host_lower}{parsed.path}"
    return base, QueryArgs.parse(parsed.query).canonical()


def find_reordered_variants(
    records: list[LinkRecord], cdx: CdxApi
) -> VariantReport:
    """Scan never-archived links for archived reordered-query twins."""
    report = VariantReport()
    for record in records:
        report.examined += 1
        try:
            parsed = parse_url(record.url)
        except UrlError:
            continue
        if not parsed.query:
            continue
        report.with_query += 1
        wanted = canonical_key(record.url)
        candidates = cdx.archived_urls(
            CdxQuery(
                url=record.url,
                match_type=MatchType.DIRECTORY,
                initial_status=200,
                exclude_self=True,
            )
        )
        for candidate in candidates:
            if candidate != record.url and canonical_key(candidate) == wanted:
                report.findings.append(
                    VariantFinding(record=record, archived_variant=candidate)
                )
                break
    return report
