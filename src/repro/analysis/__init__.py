"""The paper's analysis pipeline (§3-§5).

Each module implements one section's methodology; ``study`` wires them
into the end-to-end :class:`~repro.analysis.study.Study` that produces
every number and figure series in the evaluation:

- :mod:`~repro.analysis.live_status` — §3/Figure 4 live-web probes;
- :mod:`~repro.analysis.soft404` — §3 soft-404 detection (random-leaf
  sibling probe + k-shingling);
- :mod:`~repro.analysis.copies` — §4.1 pre-/post-marking copy census;
- :mod:`~repro.analysis.archived_soft404` — erroneousness of archived
  copies (status plus boilerplate-sketch evidence);
- :mod:`~repro.analysis.redirects` — §4.2 archived-redirect validation;
- :mod:`~repro.analysis.temporal` — §5.1/Figure 5 first-capture gaps;
- :mod:`~repro.analysis.spatial` — §5.2/Figure 6 coverage gaps;
- :mod:`~repro.analysis.typos` — §5.2 edit-distance typo detection;
- :mod:`~repro.analysis.representativeness` — §2.4's dataset-vs-random
  sample check;
- :mod:`~repro.analysis.query_variants` — §5.2 implication (b),
  reordered-query recovery (extension);
- :mod:`~repro.analysis.lifetimes` — link survival estimation
  (extension).
"""

from .lifetimes import kaplan_meier, median_survival, survival_at
from .live_status import LiveProbe, classify_links, outcome_counts
from .query_variants import find_reordered_variants
from .redirects import RedirectValidator, RedirectVerdict
from .representativeness import RepresentativenessReport, compare_datasets
from .soft404 import Soft404Detector, Soft404Verdict
from .study import Study, StudyReport
from .typos import find_typos

__all__ = [
    "LiveProbe",
    "RedirectValidator",
    "RedirectVerdict",
    "RepresentativenessReport",
    "Soft404Detector",
    "Soft404Verdict",
    "Study",
    "StudyReport",
    "classify_links",
    "compare_datasets",
    "find_reordered_variants",
    "find_typos",
    "kaplan_meier",
    "median_survival",
    "outcome_counts",
    "survival_at",
]
