"""Pure-stdlib backend for the columnar kernels.

Fast enough to keep a numpy-free install fully functional, and the
semantic reference the numpy backend is differentially tested against.
Documents are packed into plain Python ints (arbitrary precision, so
no vocabulary bound applies) and compared as ``set`` objects — already
several times cheaper than the tuple-of-strings sets the per-record
path built, because int hashing beats k-string tuple hashing.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ...textsim.shingles import minhash_sketch, sketch_similarity
from ._codec import dedup_texts, exact_jaccard, pack_codes, token_id_lists


def bucket_counts(labels: Iterable, order: Sequence = ()) -> dict:
    counts = {label: 0 for label in order}
    for label in labels:
        counts[label] = counts.get(label, 0) + 1
    return counts


def shingle_similarity_batch(
    pairs: Sequence[tuple[str, str]], k: int
) -> list[float]:
    texts, refs = dedup_texts(pairs)
    vocab: dict[str, int] = {}
    ids = token_id_lists(texts, vocab)
    base = len(vocab) + 1
    codes = [pack_codes(doc, k, base) for doc in ids]
    return [exact_jaccard(codes[ia], codes[ib]) for ia, ib in refs]


def minhash_sketch_batch(
    texts: Sequence[str], k: int
) -> list[tuple[int, ...]]:
    # Sketches are pure functions of the text, so repeated documents
    # sketch once per batch.
    memo: dict[str, tuple[int, ...]] = {}
    out: list[tuple[int, ...]] = []
    for text in texts:
        sketch = memo.get(text)
        if sketch is None:
            sketch = memo[text] = minhash_sketch(text, k)
        out.append(sketch)
    return out


def sketch_similarity_batch(
    pairs: Sequence[tuple[tuple[int, ...], tuple[int, ...]]],
) -> list[float]:
    return [sketch_similarity(a, b) for a, b in pairs]
