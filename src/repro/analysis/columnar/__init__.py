"""Array-backed batch kernels for the analysis hot path.

The Figure 3–6 aggregations, ECDF/KS construction, and the §3
shingle/MinHash similarity checks used to walk per-record Python
objects — the dominant batch-side wall-time sink once the exec tracer
could attribute study time precisely. This package replaces those
loops with columnar batch kernels:

- :func:`bucket_counts` — Figure 4 outcome histograms;
- :func:`sorted_floats` / :func:`ks_distance` — ECDF backing arrays
  and Kolmogorov-Smirnov distances (Figures 3, 5, 6);
- :func:`shingle_similarity_batch` — exact k-shingle Jaccard for many
  document pairs at once (§3 soft-404 screening);
- :func:`minhash_sketch_batch` — MinHash sketches for many documents
  at once (archive capture, benchmarks);
- :func:`sketch_similarity_batch` — MinHash match fractions for many
  sketch pairs at once (archived-copy boilerplate evidence).

Every kernel ships two implementations behind this one interface —
pure stdlib (``array``/bytes/ints) in :mod:`._stdlib_impl` and
vectorised numpy in :mod:`._numpy_impl` — selected at import time by
:mod:`repro.numerics` (``REPRO_ANALYSIS_BACKEND`` overrides; the
``repro[numpy]`` extra installs the fast backend). The pair is proven
**value-identical** by differential tests: swapping backends never
changes a byte of any :class:`~repro.analysis.study.StudyReport`.

Exactness notes. ``shingle_similarity_batch`` is *not* an estimate:
documents are re-encoded over a per-batch token vocabulary and each
k-shingle packed injectively into one integer, so set sizes — and
therefore the Jaccard value — equal the tuple-of-strings reference
(:func:`repro.textsim.shingles.shingle_similarity`) exactly. The
numpy packing needs ``(vocab+1)**k <= 2**64`` to stay injective in
uint64; batches beyond that bound fall back to the arbitrary-precision
stdlib path rather than ever returning an approximate value.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ...numerics import (
    BACKEND,
    BACKEND_ENV,
    backend_name,
    force_backend,
    get_numpy,
    ks_distance,
    sorted_floats,
)
from ...textsim.shingles import DEFAULT_K

__all__ = [
    "BACKEND",
    "BACKEND_ENV",
    "backend_name",
    "bucket_counts",
    "force_backend",
    "ks_distance",
    "minhash_sketch_batch",
    "shingle_similarity_batch",
    "sketch_similarity_batch",
    "sorted_floats",
]


def _impl():
    """The active implementation module (numpy when available)."""
    if get_numpy() is not None:
        from . import _numpy_impl

        return _numpy_impl
    from . import _stdlib_impl

    return _stdlib_impl


def bucket_counts(labels: Iterable, order: Sequence = ()) -> dict:
    """Histogram of ``labels``, presentation-ordered.

    Keys in ``order`` appear first (zero-filled when absent from
    ``labels``); labels outside ``order`` are appended in first-seen
    order — the Figure 4 contract
    (:func:`repro.analysis.live_status.outcome_counts`).
    """
    return _impl().bucket_counts(labels, order)


def shingle_similarity_batch(
    pairs: Sequence[tuple[str, str]], k: int = DEFAULT_K
) -> list[float]:
    """Exact k-shingle Jaccard similarity for each ``(text_a, text_b)``.

    Value-identical to calling
    :func:`repro.textsim.shingles.shingle_similarity` per pair.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    return _impl().shingle_similarity_batch(pairs, k)


def minhash_sketch_batch(
    texts: Sequence[str], k: int = DEFAULT_K
) -> list[tuple[int, ...]]:
    """MinHash sketches for many documents at once.

    Value-identical to calling
    :func:`repro.textsim.shingles.minhash_sketch` per document.
    """
    return _impl().minhash_sketch_batch(texts, k)


def sketch_similarity_batch(
    pairs: Sequence[tuple[tuple[int, ...], tuple[int, ...]]],
) -> list[float]:
    """MinHash match fraction for each ``(sketch_a, sketch_b)`` pair.

    Value-identical to calling
    :func:`repro.textsim.shingles.sketch_similarity` per pair
    (including the ``ValueError`` on mismatched sketch lengths).
    """
    return _impl().sketch_similarity_batch(pairs)
