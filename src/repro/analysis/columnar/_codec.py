"""Shared batch encoding for the similarity kernels.

Both backends re-encode documents the same way: tokens get dense ids
from a per-batch vocabulary, and each k-shingle packs its k digits
(``id + 1``; 0 is reserved for the padding of sub-k documents) into a
single base-``vocab+1`` integer. The packing is injective whenever
every digit is below the base, so shingle-*set* sizes — and therefore
exact Jaccard values — survive the encoding unchanged.
"""

from __future__ import annotations

from typing import Sequence

from ...textsim.shingles import tokenize


def dedup_texts(
    pairs: Sequence[tuple[str, str]]
) -> tuple[list[str], list[tuple[int, int]]]:
    """Distinct documents of a pair batch, plus per-pair doc indices.

    Soft-404 batches repeat documents — the same boilerplate body shows
    up on both sides of many pairs — so both backends tokenize, encode
    and window each *distinct* text once and look the results up per
    pair. Returns ``(texts, refs)`` where ``refs[i]`` holds the indices
    into ``texts`` of pair ``i``'s two documents.
    """
    index: dict[str, int] = {}
    texts: list[str] = []
    refs: list[tuple[int, int]] = []
    for a, b in pairs:
        ia = index.get(a)
        if ia is None:
            ia = index[a] = len(texts)
            texts.append(a)
        ib = index.get(b)
        if ib is None:
            ib = index[b] = len(texts)
            texts.append(b)
        refs.append((ia, ib))
    return texts, refs


def token_id_lists(
    texts: Sequence[str], vocab: dict[str, int]
) -> list[list[int]]:
    """Dense token ids per document, growing ``vocab`` in place.

    ``setdefault(token, len(vocab))`` evaluates ``len(vocab)`` before
    any insertion, so a new token gets exactly the next dense id — the
    comprehension form of the obvious get/insert loop, kept because
    this runs once per token of every batched document.
    """
    setdefault = vocab.setdefault
    return [
        [setdefault(token, len(vocab)) for token in tokenize(text)]
        for text in texts
    ]


def pack_codes(ids: list[int], k: int, base: int) -> set[int]:
    """The packed-shingle set of one document (pure Python ints).

    Mirrors :func:`repro.textsim.shingles.shingle_set` exactly: empty
    documents encode to the empty set; documents shorter than ``k``
    tokens encode to the single truncated shingle, right-padded with
    the reserved 0 digit so different truncation lengths stay
    distinct.
    """
    n = len(ids)
    if n == 0:
        return set()
    if n < k:
        code = 0
        for digit in ids:
            code = code * base + digit + 1
        return {code * base ** (k - n)}
    codes: set[int] = set()
    for start in range(n - k + 1):
        code = 0
        for digit in ids[start: start + k]:
            code = code * base + digit + 1
        codes.add(code)
    return codes


def exact_jaccard(a: set[int], b: set[int]) -> float:
    """|a ∩ b| / |a ∪ b| with the empty-vs-empty convention of
    :func:`repro.textsim.shingles.jaccard`."""
    if not a and not b:
        return 1.0
    union = len(a | b)
    if union == 0:
        return 1.0
    return len(a & b) / union
