"""Numpy backend for the columnar kernels.

Same values as :mod:`._stdlib_impl`, computed on uint64 arrays — and,
unlike a first-cut vectorization, computed *globally*: the whole batch
of documents is concatenated into one token-id (or token-hash) array,
every k-shingle window is produced by k strided vector operations over
that single array (windows straddling document boundaries are simply
never gathered), and set algebra happens as one sort over the entire
batch instead of one numpy call per pair. Per-document and per-pair
Python/numpy call overheads — which dominate at realistic document
sizes — are paid once per *batch*.

The module never imports numpy at module level — it is only dispatched
to when :func:`repro.numerics.get_numpy` is non-None.
"""

from __future__ import annotations

import zlib
from itertools import chain
from typing import Iterable, Sequence

from ...numerics import get_numpy
from ...textsim.shingles import (
    MASK64,
    NUM_MINHASHES,
    PERMUTE_MULTIPLIERS,
    PERMUTE_XORS,
    _shingle_multipliers,
    tokenize,
)
from . import _stdlib_impl
from ._codec import dedup_texts, token_id_lists


def bucket_counts(labels: Iterable, order: Sequence = ()) -> dict:
    np = get_numpy()
    index: dict = {label: i for i, label in enumerate(order)}
    encoded: list[int] = []
    for label in labels:
        i = index.get(label)
        if i is None:
            i = len(index)
            index[label] = i
        encoded.append(i)
    counts = np.bincount(
        np.asarray(encoded, dtype=np.int64), minlength=len(index)
    ) if encoded else np.zeros(len(index), dtype=np.int64)
    return {label: int(counts[i]) for label, i in index.items()}


def _window_layout(np, lengths, k: int):
    """Gather indices for every in-document window of a concatenation.

    Given per-document token counts, returns ``(positions, counts,
    offsets)``: flat indices into the concatenated array at which each
    document's windows start (documents in order, so windows form
    contiguous per-document segments), the number of windows per
    document (0 for documents shorter than ``k``), and the segment
    start offsets usable with ``np.minimum.reduceat``.
    """
    lengths = np.asarray(lengths, dtype=np.int64)
    counts = np.maximum(lengths - (k - 1), 0)
    doc_starts = np.concatenate(
        ([0], np.cumsum(lengths)[:-1])
    ) if lengths.size else np.zeros(0, dtype=np.int64)
    total = int(counts.sum())
    if total == 0:
        return (
            np.zeros(0, dtype=np.int64),
            counts,
            np.zeros(0, dtype=np.int64),
        )
    segment_starts = np.cumsum(counts) - counts
    positions = (
        np.arange(total, dtype=np.int64)
        - np.repeat(segment_starts, counts)
        + np.repeat(doc_starts, counts)
    )
    return positions, counts, segment_starts


def _packed_window_codes(np, concat_digits, positions, k: int, base: int):
    """Base-``base`` packing of each gathered k-window, in uint64.

    Valid because the caller guarantees ``base ** k <= 2**64``: every
    intermediate partial code is below ``base ** k``, so uint64
    wraparound never occurs on in-document windows.
    """
    codes = concat_digits[positions]
    scale = np.uint64(base)
    for offset in range(1, k):
        codes = codes * scale + concat_digits[positions + offset]
    return codes


def _pack_short_doc(ids: list[int], k: int, base: int) -> int:
    """The single truncated-shingle code of a sub-k document."""
    code = 0
    for digit in ids:
        code = code * base + digit + 1
    return code * base ** (k - len(ids))


def shingle_similarity_batch(
    pairs: Sequence[tuple[str, str]], k: int
) -> list[float]:
    np = get_numpy()
    if not pairs:
        return []
    texts, refs = dedup_texts(pairs)
    vocab: dict[str, int] = {}
    ids = token_id_lists(texts, vocab)
    base = len(vocab) + 1
    if k > 64 or base ** k > 1 << 64:
        # uint64 packing would no longer be injective; take the
        # arbitrary-precision path rather than approximate.
        return _stdlib_impl.shingle_similarity_batch(pairs, k)

    lengths = [len(doc) for doc in ids]
    concat = np.fromiter(
        chain.from_iterable(ids), dtype=np.uint64, count=sum(lengths)
    ) + np.uint64(1)
    positions, counts, _ = _window_layout(np, lengths, k)
    codes = _packed_window_codes(np, concat, positions, k, base)

    # Sorted distinct codes per distinct document. Documents shorter
    # than k contribute their single truncated-shingle code; empty
    # documents the empty set.
    n_docs = len(texts)
    empty = np.zeros(0, dtype=np.uint64)
    sets: list = [empty] * n_docs
    span = base ** k
    if span < 1 << 64 and n_docs * span <= 1 << 64 and codes.size:
        # Embed the owning document in the sort key (codes are in
        # [1, span)): one global sort plus a duplicate mask yields
        # every document's sorted distinct codes at once, instead of
        # one np.unique call per document.
        doc_of_window = np.repeat(np.arange(n_docs, dtype=np.uint64), counts)
        key = np.sort(doc_of_window * np.uint64(span) + codes)
        keep = np.empty(key.size, dtype=bool)
        keep[0] = True
        np.not_equal(key[1:], key[:-1], out=keep[1:])
        uniq = key[keep]
        bounds = np.searchsorted(
            uniq, np.arange(n_docs, dtype=np.uint64) * np.uint64(span)
        ).tolist() + [uniq.size]
        uniq %= np.uint64(span)
        for doc in range(n_docs):
            if bounds[doc + 1] > bounds[doc]:
                sets[doc] = uniq[bounds[doc]: bounds[doc + 1]]
    else:
        offset = 0
        for doc, windows in enumerate(counts.tolist()):
            if windows:
                sets[doc] = np.unique(codes[offset: offset + windows])
                offset += windows
    for doc, n in enumerate(lengths):
        if 0 < n < k:
            sets[doc] = np.asarray(
                [_pack_short_doc(ids[doc], k, base)], dtype=np.uint64
            )

    out: list[float] = []
    for ia, ib in refs:
        if ia == ib:
            # J(S, S) == 1.0, including the empty-vs-empty convention.
            out.append(1.0)
            continue
        a, b = sets[ia], sets[ib]
        if a.size > b.size:
            a, b = b, a
        if not a.size:
            out.append(1.0 if not b.size else 0.0)
            continue
        # Intersection size of two sorted distinct arrays: insertion
        # points of the smaller into the larger, then equality.
        found = np.searchsorted(b, a)
        inside = found < b.size
        inter = int((b[found[inside]] == a[inside]).sum())
        # Python int division keeps every value bit-identical to the
        # per-pair reference.
        out.append(inter / (a.size + b.size - inter))
    return out


def minhash_sketch_batch(
    texts: Sequence[str], k: int
) -> list[tuple[int, ...]]:
    np = get_numpy()
    if not texts:
        return []
    # Sketches are pure functions of the text: distinct documents
    # sketch once, repeats are looked up.
    index: dict[str, int] = {}
    unique: list[str] = []
    refs: list[int] = []
    for text in texts:
        uid = index.get(text)
        if uid is None:
            uid = index[text] = len(unique)
            unique.append(text)
        refs.append(uid)
    texts = unique
    vocab: dict[str, int] = {}
    ids = token_id_lists(texts, vocab)
    # crc32 once per distinct token, then a vectorised gather — the
    # scalar path's per-occurrence memo probe, amortised batch-wide.
    vocab_hashes = np.fromiter(
        (zlib.crc32(token.encode("utf-8")) for token in vocab),
        dtype=np.uint64,
        count=len(vocab),
    )
    lengths = [len(doc) for doc in ids]
    concat = vocab_hashes[
        np.fromiter(
            chain.from_iterable(ids), dtype=np.int64, count=sum(lengths)
        )
    ] if sum(lengths) else np.zeros(0, dtype=np.uint64)
    positions, counts, _ = _window_layout(np, lengths, k)

    # Mix every full-width window in one pass over the concatenation
    # (the same multiply/xor/rotate pipeline as shingle_hash_vector,
    # so sketches stay bit-identical to the scalar path). Windows are
    # gathered per document afterwards; duplicates within a document
    # are harmless because min() ignores multiplicity.
    mults = _shingle_multipliers(k)
    window_hashes = np.zeros(positions.size, dtype=np.uint64)
    with np.errstate(over="ignore"):
        for offset in range(k):
            lane = concat[positions + offset]
            window_hashes ^= lane * np.uint64(mults[offset])
            window_hashes = (window_hashes << np.uint64(7)) | (
                window_hashes >> np.uint64(57)
            )

    sketches: list[tuple[int, ...] | None] = [None] * len(texts)
    full = np.flatnonzero(counts)
    if full.size:
        seg_offsets = (np.cumsum(counts) - counts)[full]
        per_doc_mins = np.empty((NUM_MINHASHES, full.size), dtype=np.uint64)
        with np.errstate(over="ignore"):
            for row, (mult, xor) in enumerate(
                zip(PERMUTE_MULTIPLIERS, PERMUTE_XORS)
            ):
                permuted = (window_hashes ^ np.uint64(xor)) * np.uint64(mult)
                per_doc_mins[row] = np.minimum.reduceat(permuted, seg_offsets)
        columns = per_doc_mins.T.tolist()
        for doc, column in zip(full.tolist(), columns):
            sketches[doc] = tuple(column)

    doc_start = 0
    for doc, n in enumerate(lengths):
        doc_start += lengths[doc - 1] if doc else 0
        if n == 0:
            sketches[doc] = (0,) * NUM_MINHASHES
        elif n < k:
            # Sub-k documents sketch their single truncated shingle,
            # mixed exactly as shingle_hash_values(tokens, n) does.
            hashes = concat[doc_start: doc_start + n].tolist()
            short_mults = _shingle_multipliers(n)
            mixed = 0
            for offset in range(n):
                mixed = (mixed ^ (hashes[offset] * short_mults[offset])) & MASK64
                mixed = ((mixed << 7) | (mixed >> 57)) & MASK64
            sketches[doc] = tuple(
                ((mixed ^ x) * m) & MASK64
                for m, x in zip(PERMUTE_MULTIPLIERS, PERMUTE_XORS)
            )
    return [sketches[uid] for uid in refs]  # type: ignore[misc]


def sketch_similarity_batch(
    pairs: Sequence[tuple[tuple[int, ...], tuple[int, ...]]],
) -> list[float]:
    np = get_numpy()
    if not pairs:
        return []
    width = len(pairs[0][0])
    if width == 0 or any(
        len(a) != width or len(b) != width for a, b in pairs
    ):
        # Ragged or empty sketches: defer to the scalar path so the
        # ValueError contract matches exactly.
        return _stdlib_impl.sketch_similarity_batch(pairs)
    left = np.asarray([a for a, _ in pairs], dtype=np.uint64)
    right = np.asarray([b for _, b in pairs], dtype=np.uint64)
    matches = (left == right).sum(axis=1)
    return [int(m) / width for m in matches]
