"""Section 3's soft-404 detector.

A 200 response does not prove a link works: parked domains, "not
found" pages served with status 200, and blanket redirects to a
homepage all masquerade as success. The paper adapts Bar-Yossef et
al.'s technique: probe a *deliberately invalid* sibling URL u' (the
leaf after the last '/' replaced by 25 random characters) and compare.

u is declared broken when either

1. u and u' redirect to the same final URL, and that URL is not a
   login page (sites legitimately bounce everything to a login wall); or
2. the k-shingling similarity between the two final response bodies
   exceeds 99% (identical responses are *not* required — even two
   fetches of the same page differ slightly).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from ..clock import SimTime
from ..net.fetch import Fetcher
from ..rng import Stream
from ..urls.generate import UrlFactory
from ..urls.parse import parse_url
from .columnar import shingle_similarity_batch

SIMILARITY_THRESHOLD = 0.99

_LOGIN_HINTS = re.compile(
    r"(sign in|log ?in|password|register for|credentials)", re.IGNORECASE
)


@dataclass(frozen=True, slots=True)
class Soft404Verdict:
    """Outcome of probing one 200-status URL."""

    url: str
    broken: bool
    reason: str
    similarity: float | None = None
    probe_url: str = ""

    @property
    def genuinely_alive(self) -> bool:
        """The URL serves real content (not a soft-404)."""
        return not self.broken


class Soft404Detector:
    """Random-leaf sibling probing over the live web."""

    def __init__(
        self,
        fetcher: Fetcher,
        rng: Stream,
        threshold: float = SIMILARITY_THRESHOLD,
    ) -> None:
        self._fetcher = fetcher
        self._factory = UrlFactory(rng)
        self._threshold = threshold

    def check(self, url: str, at: SimTime) -> Soft404Verdict:
        """Decide whether a 200-responding ``url`` is actually broken.

        Assumes the caller already observed a 200 final status for
        ``url`` (the §3 pipeline only runs the detector on those).
        """
        return self.check_many([url], at)[0]

    def check_many(
        self, urls: list[str], at: SimTime, ats: list[SimTime] | None = None
    ) -> list[Soft404Verdict]:
        """Probe every URL and return one verdict each, in order.

        Semantically identical to calling :meth:`check` per URL — the
        fetches (and the probe-URL RNG draws) happen strictly in list
        order, which is what keeps seeded runs reproducible — but the
        shingle similarities of all undecided pairs are computed by
        one columnar batch kernel instead of a per-record loop.

        ``ats`` gives each URL its own probe instant (the live
        pipeline re-checks records at per-record times); the RNG draw
        order is unchanged, so the sibling-probe URLs depend only on
        the list order, never on the instants.
        """
        times = ats if ats is not None else [at] * len(urls)
        if len(times) != len(urls):
            raise ValueError("ats must parallel urls")
        fetched = []
        for url, when in zip(urls, times):
            result = self._fetcher.fetch(url, when)
            probe = self._factory.random_leaf_probe(parse_url(url))
            probe_result = self._fetcher.fetch(probe, when)
            fetched.append((url, probe, result, probe_result))

        verdicts: list[Soft404Verdict | None] = [None] * len(fetched)
        pending: list[int] = []
        pairs: list[tuple[str, str]] = []
        for index, (url, probe, result, probe_result) in enumerate(fetched):
            if (
                result.redirected
                and probe_result.redirected
                and result.final_url is not None
                and result.final_url == probe_result.final_url
                and not self._looks_like_login(result.body)
            ):
                verdicts[index] = Soft404Verdict(
                    url=url,
                    broken=True,
                    reason="same redirect target as random sibling",
                    probe_url=str(probe),
                )
                continue
            pending.append(index)
            pairs.append((result.body, probe_result.body))

        for index, similarity in zip(
            pending, shingle_similarity_batch(pairs)
        ):
            url, probe = fetched[index][0], fetched[index][1]
            if similarity > self._threshold:
                verdicts[index] = Soft404Verdict(
                    url=url,
                    broken=True,
                    reason=(
                        f"response {similarity:.4f} similar to random sibling"
                    ),
                    similarity=similarity,
                    probe_url=str(probe),
                )
            else:
                verdicts[index] = Soft404Verdict(
                    url=url,
                    broken=False,
                    reason="distinct content from random sibling",
                    similarity=similarity,
                    probe_url=str(probe),
                )
        return verdicts

    @staticmethod
    def _looks_like_login(body: str) -> bool:
        return bool(_LOGIN_HINTS.search(body))
