"""The end-to-end study: §2.4 collection through §5.2 analysis.

:class:`Study` runs the entire measurement pipeline the paper
describes, against any world, and produces a :class:`StudyReport`
carrying every headline number and every figure series. The pipeline
only touches public interfaces — live-web fetches, the Availability
and CDX APIs, article wikitext and histories — never the world
generator's ground truth.

Execution is delegated to a :class:`~repro.exec.StudyExecutor`: the
per-record stages (§3 probe, §4 census, §4.2 redirect validation) run
sharded — in-process by default, across worker processes on request —
behind memoizing CDX/fetch caches, and every run attaches a
:class:`~repro.exec.StudyStats` with phase timings and cache hit
rates. Results are merged in record order, so a seeded run produces a
byte-identical report at any worker count.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from ..archive.cdx import CdxApi
from ..clock import SimTime
from ..dataset.collector import Collector
from ..dataset.records import Dataset, LinkRecord
from ..dataset.sampler import sample_iabot_marked
from ..backends.stacks import BackendStack
from ..exec import (
    MAX_REDIRECT_COPIES_PER_LINK,
    StudyExecutor,
    StudyStats,
)
from ..faults import FaultPlan
from ..net.fetch import Fetcher
from ..net.status import Outcome
from ..obs.trace import Tracer
from ..retry import RetryCounters, RetryPolicy
from ..rng import RngRegistry
from .copies import CopyCensus
from .live_status import LiveProbe, outcome_counts
from .soft404 import Soft404Detector, Soft404Verdict
from .spatial import SpatialReport, spatial_analysis
from .temporal import TemporalReport, temporal_analysis
from .typos import TypoReport, find_typos

__all__ = [
    "MAX_REDIRECT_COPIES_PER_LINK",
    "Study",
    "StudyReport",
    "assemble_report",
]


@dataclass
class StudyReport:
    """Everything the paper reports, measured from one world."""

    dataset: Dataset
    probes: list[LiveProbe]
    counts: dict[Outcome, int]
    soft404_verdicts: list[Soft404Verdict]
    censuses: list[CopyCensus]
    temporal: TemporalReport
    spatial: SpatialReport
    typos: TypoReport

    # §3 -------------------------------------------------------------------
    n_final_200: int = 0
    n_genuinely_alive: int = 0
    n_alive_via_redirect: int = 0
    n_with_post_marking_copy: int = 0
    n_first_post_marking_erroneous: int = 0

    # §4 -------------------------------------------------------------------
    n_pre_marking_200: int = 0
    n_rest: int = 0
    n_rest_with_any_copy: int = 0
    n_never_archived: int = 0
    n_rest_with_pre_3xx: int = 0
    n_valid_redirect_copy: int = 0

    #: Execution accounting for the run that produced this report.
    #: Excluded from equality: two runs of the same seeded study are
    #: the same *measurement* whatever their wall times were.
    stats: StudyStats | None = field(default=None, compare=False)

    #: Per-record stage outcomes (probe + census + validation verdicts
    #: + provenance), in record order — the raw material
    #: :class:`repro.service.LinkStatusIndex` snapshots into a
    #: queryable form. Excluded from equality because each outcome
    #: carries a :class:`~repro.obs.provenance.RecordProvenance` whose
    #: cache-hit splits are execution-shape-dependent; everything the
    #: report *measures* from them is already in the compared fields.
    outcomes: tuple | None = field(default=None, compare=False, repr=False)

    @property
    def sample_size(self) -> int:
        """Number of permanently dead links studied."""
        return len(self.dataset)

    # -- §3 convenience fractions -----------------------------------------------

    @property
    def frac_final_200(self) -> float:
        """Share of the sample answering 200 today (paper: ~16%)."""
        return self.n_final_200 / max(self.sample_size, 1)

    @property
    def frac_genuinely_alive(self) -> float:
        """The paper's "3% of permanently dead links work today"."""
        return self.n_genuinely_alive / max(self.sample_size, 1)

    @property
    def frac_alive_via_redirect(self) -> float:
        """Of the genuinely alive, how many redirect first (paper: 79%)."""
        return self.n_alive_via_redirect / max(self.n_genuinely_alive, 1)

    @property
    def frac_first_post_marking_erroneous(self) -> float:
        """The paper's 95% single-check-is-enough statistic."""
        return self.n_first_post_marking_erroneous / max(
            self.n_with_post_marking_copy, 1
        )

    # -- §4 convenience fractions ---------------------------------------------------

    @property
    def frac_pre_marking_200(self) -> float:
        """The paper's 11% availability-timeout casualties."""
        return self.n_pre_marking_200 / max(self.sample_size, 1)

    @property
    def frac_patchable_via_redirect(self) -> float:
        """The paper's ~5% (481 valid of 3,776, over the whole sample)."""
        return self.n_valid_redirect_copy / max(self.sample_size, 1)

    def summary(self) -> str:
        """Multi-line human-readable digest of the whole study."""
        lines = [
            f"permanently dead links studied: {self.sample_size}",
            "live web today (Fig 4): "
            + ", ".join(
                f"{outcome.value}={count}"
                for outcome, count in self.counts.items()
            ),
            (
                f"§3  final-200: {self.n_final_200} "
                f"({self.frac_final_200:.1%}); genuinely alive: "
                f"{self.n_genuinely_alive} ({self.frac_genuinely_alive:.1%}), "
                f"of which {self.frac_alive_via_redirect:.0%} redirect first"
            ),
            (
                f"§3  first post-marking copy erroneous: "
                f"{self.n_first_post_marking_erroneous}/"
                f"{self.n_with_post_marking_copy} "
                f"({self.frac_first_post_marking_erroneous:.0%})"
            ),
            (
                f"§4.1 had initial-200 copies before marking: "
                f"{self.n_pre_marking_200} ({self.frac_pre_marking_200:.1%})"
            ),
            (
                f"§4.2 of the remaining {self.n_rest}: "
                f"{self.n_rest_with_pre_3xx} had 3xx copies; "
                f"{self.n_valid_redirect_copy} validate as non-erroneous "
                f"({self.frac_patchable_via_redirect:.1%} of sample)"
            ),
            (
                f"§5   copies: {self.n_rest_with_any_copy} archived / "
                f"{self.n_never_archived} never archived; "
                f"{len(self.temporal.with_pre_posting_copy)} pre-posting; "
                f"{len(self.temporal.same_day)} same-day captures, "
                f"{len(self.temporal.same_day_erroneous)} erroneous first-up"
            ),
            (
                f"§5.2 coverage gaps: {len(self.spatial.directory_gaps)} "
                f"directory-level, {len(self.spatial.hostname_gaps)} "
                f"hostname-level; typos found: {len(self.typos)}"
            ),
        ]
        return "\n".join(lines)


@dataclass
class Study:
    """A configured study, ready to run.

    ``retry_policy`` is the study client's resilience posture: it
    drives the fetcher's transient-failure retries and is inherited by
    the exec-layer caching wrappers (parent and worker shards alike)
    unless the executor carries its own. ``None`` — the default, and
    the paper's configuration — never retries.
    """

    records: list[LinkRecord]
    fetcher: Fetcher
    cdx: CdxApi
    at: SimTime
    rngs: RngRegistry = field(default_factory=lambda: RngRegistry(20220315))
    retry_policy: RetryPolicy | None = None
    #: Per-URL probe instants (URL-keyed; unlisted records probe at
    #: ``at``). The live pipeline's from-scratch reference: a study
    #: configured with the probe-time map computed from the full event
    #: log, which incremental maintenance must reproduce byte-for-byte.
    at_overrides: dict[str, SimTime] = field(default_factory=dict)
    #: Freeze each record's CDX horizon at its probe instant (see
    #: :class:`~repro.archive.cdx.AsOfCdx`). Off for the classic batch
    #: study, on for the live posture.
    bound_archive: bool = False

    @classmethod
    def from_world(
        cls,
        world,
        sample_size: int | None = None,
        article_limit: int | None = None,
        seed: int = 20220315,
        faults: FaultPlan | None = None,
        retry_policy: RetryPolicy | None = None,
    ) -> "Study":
        """Collect and sample the dataset from a generated world.

        Mirrors §2.4: crawl the category (optionally only the first
        ``article_limit`` articles), mine histories, sample
        ``sample_size`` IABot-marked links.

        ``faults`` studies the *same* world through sabotaged probes:
        the (fault plan, retry policy) pair becomes a
        :class:`~repro.backends.stacks.BackendStack` and the stack
        assembles the clients — see its docstring for the invariants
        the differential harness depends on.
        """
        collector = Collector(world.encyclopedia, world.site_rankings)
        collected = collector.collect(article_limit=article_limit)
        k = sample_size if sample_size is not None else world.config.target_sample
        sampled = sample_iabot_marked(collected, k, seed=seed)
        dataset = collector.to_dataset(sampled, description="our dataset")
        stack = BackendStack(faults=faults, retry_policy=retry_policy)
        return cls(
            records=dataset.records,
            fetcher=stack.fetcher(world),
            cdx=stack.cdx(world.cdx),
            at=world.study_time,
            rngs=RngRegistry(seed),
            retry_policy=retry_policy,
        )

    def run(
        self,
        executor: StudyExecutor | None = None,
        tracer: Tracer | None = None,
    ) -> StudyReport:
        """Execute §3, §4, and §5 and assemble the report.

        ``executor`` controls sharding; the default runs in-process.
        Any worker count yields the same report — only the attached
        :class:`~repro.exec.StudyStats` differs. The study's retry
        policy is handed to the executor's caching wrappers unless the
        executor already carries one of its own.

        ``tracer`` records the full span hierarchy (study → phase →
        shard → record → backend call) of the run; worker shards
        buffer their spans and the executor grafts them back in.
        Tracing never changes the measurement: a traced run's report
        is byte-identical to an untraced one, and serial vs parallel
        traced runs agree on every aggregate metric (span ids and
        wall timings excluded, by definition).
        """
        executor = executor if executor is not None else StudyExecutor(workers=1)
        if self.retry_policy is not None and executor.retry_policy is None:
            executor = dataclasses.replace(
                executor, retry_policy=self.retry_policy
            )
        stats = StudyStats(workers=executor.resolved_workers)
        dataset = Dataset(records=list(self.records), description="our dataset")

        study_cm = (
            tracer.span(
                "study", kind="study", sim=self.at,
                records=len(self.records),
                workers=executor.resolved_workers,
            )
            if tracer is not None
            else None
        )
        if study_cm is not None:
            study_cm.__enter__()
        try:
            report = self._run_phases(executor, stats, dataset, tracer)
        finally:
            if study_cm is not None:
                study_cm.__exit__(None, None, None)
        return report

    def _run_phases(
        self,
        executor: StudyExecutor,
        stats: StudyStats,
        dataset: Dataset,
        tracer: Tracer | None,
    ) -> StudyReport:
        # §3 probe + §4 census + §4.2 validation: the sharded stage.
        with stats.phase("probe+census", tracer=tracer):
            stage = executor.execute(
                self.records, self.fetcher, self.cdx, self.at, stats, tracer,
                at_overrides=self.at_overrides or None,
                bound_archive=self.bound_archive,
            )
        stats.shards = stage.shards

        report = assemble_report(
            dataset=dataset,
            outcomes=list(stage.outcomes),
            fetcher=stage.fetcher,
            cdx=stage.cdx,
            at=self.at,
            rngs=self.rngs,
            stats=stats,
            tracer=tracer,
            at_overrides=self.at_overrides or None,
        )

        # Parent-side retry accounting. In serial mode the study's own
        # fetcher did all the work; in parallel mode it only served the
        # parent phases (workers reported their deltas through the
        # executor already), so summing here never double-counts.
        fetch_rc = RetryCounters()
        fetch_rc.merge(
            getattr(self.fetcher, "retry_counters", None) or RetryCounters()
        )
        fetch_rc.merge(stage.fetcher.retry_counters)
        cdx_rc = stage.cdx.retry_counters
        stats.add_retry_counts(
            fetch_retries=fetch_rc.retries,
            fetch_giveups=fetch_rc.giveups,
            cdx_retries=cdx_rc.retries,
            cdx_giveups=cdx_rc.giveups,
            backoff_ms=fetch_rc.backoff_ms + cdx_rc.backoff_ms,
        )
        return report


def assemble_report(
    *,
    dataset: Dataset,
    outcomes: list,
    fetcher,
    cdx,
    at: SimTime,
    rngs: RngRegistry,
    stats: StudyStats,
    tracer: Tracer | None = None,
    at_overrides: dict[str, SimTime] | None = None,
) -> StudyReport:
    """Run the parent phases over per-record outcomes and build the
    report.

    This is everything in a study after the sharded stage: §3 soft-404
    screening (sequential RNG stream, record order), the §4 census
    splits, and the §5 temporal/spatial/typo aggregations. Split out
    so the live pipeline can fold cached outcomes for clean records
    together with freshly executed dirty ones and still assemble a
    report byte-identical to a from-scratch run — the parent phases
    are aggregations, cheap to recompute in full each generation.

    ``fetcher`` / ``cdx`` are the parent-side memo backends (the
    stage's, or freshly seeded equivalents); ``at_overrides`` hands
    the soft-404 detector each record's probe instant.
    """
    overrides = at_overrides or {}
    probes = [outcome.probe for outcome in outcomes]
    counts = outcome_counts(probes)

    # §3: soft-404 screening of the 200s. Stays in the parent —
    # the detector consumes a sequential RNG stream, so probing in
    # record order is what keeps seeded runs reproducible; the
    # shingle similarities of the whole population are computed by
    # one columnar batch kernel.
    detector = Soft404Detector(fetcher, rngs.stream("soft404"))
    with stats.phase("soft404", tracer=tracer):
        screened = [probe for probe in probes if probe.returned_200]
        verdicts: list[Soft404Verdict] = detector.check_many(
            [probe.record.url for probe in screened],
            at,
            ats=(
                [overrides.get(p.record.url, at) for p in screened]
                if overrides
                else None
            ),
        )
        alive_probes: list[LiveProbe] = [
            probe
            for probe, verdict in zip(screened, verdicts)
            if verdict.genuinely_alive
        ]
    stats.registry.counter("analysis.soft404.batched").inc(len(screened))

    # §4: archived-copy census splits.
    censuses = [outcome.census for outcome in outcomes]
    pre200 = [c for c in censuses if c.has_pre_marking_200]
    rest = [c for c in censuses if not c.has_pre_marking_200]
    rest_with_copy = [c for c in rest if c.has_any_copy]
    never_archived = [c for c in rest if not c.has_any_copy]
    rest_with_3xx = [c for c in rest if c.has_pre_marking_3xx]
    n_valid_redirect = sum(1 for o in outcomes if o.has_valid_redirect_copy)

    # §3's single-check justification (needs the census).
    with_post = [c for c in censuses if c.first_post_marking is not None]
    n_post_erroneous = sum(
        1 for o in outcomes if o.first_post_marking_erroneous
    )

    # §5.1 temporal + §5.2 spatial/typos, over the seeded caches.
    with stats.phase("temporal", tracer=tracer):
        temporal = temporal_analysis(rest_with_copy, cdx)
    never_records = [c.record for c in never_archived]
    with stats.phase("spatial", tracer=tracer):
        spatial = spatial_analysis(never_records, cdx)
    with stats.phase("typos", tracer=tracer):
        typos = find_typos(never_records, cdx)

    stats.add_fetch_counts(fetcher.hits, fetcher.misses)
    stats.add_cdx_counts(cdx.hits, cdx.misses)

    return StudyReport(
        dataset=dataset,
        probes=probes,
        counts=counts,
        soft404_verdicts=verdicts,
        censuses=censuses,
        temporal=temporal,
        spatial=spatial,
        typos=typos,
        n_final_200=sum(1 for p in probes if p.returned_200),
        n_genuinely_alive=len(alive_probes),
        n_alive_via_redirect=sum(1 for p in alive_probes if p.redirected),
        n_with_post_marking_copy=len(with_post),
        n_first_post_marking_erroneous=n_post_erroneous,
        n_pre_marking_200=len(pre200),
        n_rest=len(rest),
        n_rest_with_any_copy=len(rest_with_copy),
        n_never_archived=len(never_archived),
        n_rest_with_pre_3xx=len(rest_with_3xx),
        n_valid_redirect_copy=n_valid_redirect,
        stats=stats,
        outcomes=tuple(outcomes),
    )
