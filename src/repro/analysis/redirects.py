"""Section 4.2: which archived redirections are not erroneous?

IABot ignores every archived copy in which a redirection was observed,
because "redirections on the web are often erroneous (e.g., the old
URL for a news article might redirect to the news site's homepage)".
The paper shows that is overly pessimistic: a historical redirection
for URL u can be validated by checking that its target was *unique* —
that other URLs under the same directory did not redirect to the same
place around the same time.

We implement the paper's procedure (compare against up to 6 sibling
URLs' redirect targets within 90 days of the copy) plus two structural
guards that encode its live-web intuition: a redirect whose target is
the site root or a login page is always treated as erroneous.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..archive.cdx import CdxApi, CdxQuery, MatchType
from ..archive.snapshot import Snapshot
from ..clock import SimTime
from ..errors import UrlError
from ..urls.parse import parse_url

DEFAULT_WINDOW_DAYS = 90.0
DEFAULT_MAX_SIBLINGS = 6


@dataclass(frozen=True, slots=True)
class RedirectVerdict:
    """Assessment of one archived 3xx copy."""

    snapshot: Snapshot
    valid: bool
    reason: str
    siblings_compared: int = 0


class RedirectValidator:
    """Cross-examination of archived redirections against siblings."""

    def __init__(
        self,
        cdx: CdxApi,
        window_days: float = DEFAULT_WINDOW_DAYS,
        max_siblings: int = DEFAULT_MAX_SIBLINGS,
    ) -> None:
        if window_days <= 0:
            raise ValueError("window_days must be positive")
        if max_siblings < 0:
            raise ValueError("max_siblings must be non-negative")
        self._cdx = cdx
        self.window_days = window_days
        self.max_siblings = max_siblings

    # -- single-copy validation ---------------------------------------------------

    def validate(self, snapshot: Snapshot) -> RedirectVerdict:
        """Judge one archived redirect copy."""
        if not snapshot.initial_redirected or snapshot.redirect_location is None:
            return RedirectVerdict(
                snapshot=snapshot, valid=False, reason="not a redirect copy"
            )
        target = snapshot.redirect_location
        structural = self._structurally_erroneous(snapshot.url, target)
        if structural:
            return RedirectVerdict(snapshot=snapshot, valid=False, reason=structural)

        compared = 0
        for sibling in self._sibling_redirects(snapshot):
            compared += 1
            if sibling.redirect_location == target:
                return RedirectVerdict(
                    snapshot=snapshot,
                    valid=False,
                    reason=(
                        f"sibling {sibling.url} redirected to the same "
                        "target around that time"
                    ),
                    siblings_compared=compared,
                )
            if compared >= self.max_siblings:
                break
        return RedirectVerdict(
            snapshot=snapshot,
            valid=True,
            reason="redirect target unique within the directory",
            siblings_compared=compared,
        )

    # -- link-level search --------------------------------------------------------------

    def find_valid_redirect_copy(
        self, url: str, before: SimTime | None = None
    ) -> Snapshot | None:
        """The earliest validated 3xx copy of ``url`` (optionally only
        considering captures before ``before``).

        This is the §4.2 patch-finder: WaybackMedic can plug it in to
        rescue links IABot gave up on.
        """
        rows = self._cdx.query(CdxQuery(url=url, match_type=MatchType.EXACT))
        for row in rows:
            if before is not None and not row.captured_at < before:
                continue
            if not row.initial_redirected:
                continue
            if self.validate(row).valid:
                return row
        return None

    # -- internals -------------------------------------------------------------------------

    def _structurally_erroneous(self, url: str, target: str) -> str | None:
        """Root/login targets are the canonical erroneous redirects."""
        try:
            source = parse_url(url)
            parsed_target = parse_url(target)
        except UrlError:
            return "unparseable redirect target"
        if parsed_target.path == "/" and not parsed_target.query:
            return "redirects to a site root"
        if parsed_target.path.rstrip("/").endswith("login"):
            return "redirects to a login page"
        if str(parsed_target) == str(source):
            return "redirects to itself"
        return None

    def _sibling_redirects(self, snapshot: Snapshot):
        """3xx captures of other same-directory URLs within the window,
        one per sibling URL (closest to the copy's capture time)."""
        rows = self._cdx.query(
            CdxQuery(
                url=snapshot.url,
                match_type=MatchType.DIRECTORY,
                from_time=snapshot.captured_at.minus_days(self.window_days),
                to_time=snapshot.captured_at.plus_days(self.window_days),
                exclude_self=True,
            )
        )
        best_per_url: dict[str, Snapshot] = {}
        for row in rows:
            if not row.initial_redirected:
                continue
            current = best_per_url.get(row.url)
            if current is None or (
                abs(row.captured_at.days - snapshot.captured_at.days)
                < abs(current.captured_at.days - snapshot.captured_at.days)
            ):
                best_per_url[row.url] = row
        return [best_per_url[url] for url in sorted(best_per_url)]
