"""Link-lifetime estimation (extension).

The paper observes that "many links become dysfunctional even a few
years after they are posted" but does not estimate a survival curve.
This module does, from observable quantities only.

The subtlety is censoring: for a permanently dead link we observe the
*marking* date, which upper-bounds the death (the link died somewhere
in the posting-to-marking window, and IABot's sweep cadence adds lag);
links that are still alive (or patched) never enter the dataset at
all. We therefore work with two estimators:

- :func:`time_to_marking` — the raw posted-to-marked distribution, an
  upper bound on time-to-death for the marked population;
- :func:`kaplan_meier` — a proper right-censored survival estimator
  for cohorts where both event and censoring times are known (the
  wiki's full link population as observed by a bot that records
  first-failure dates — e.g. IABot's own check log).

Both are exercised against generator ground truth in tests and against
the marked dataset in the EXT-2 benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..dataset.records import LinkRecord


def time_to_marking(records: list[LinkRecord]) -> list[float]:
    """Days from posting to permanent-dead marking, per link.

    An upper bound on each link's time to death; the marking lag (bot
    sweep cadence) is included, which is why the §5 analyses use this
    only as a bound.
    """
    return [
        max(record.marked_at.days - record.posted_at.days, 0.0)
        for record in records
    ]


@dataclass(frozen=True, slots=True)
class SurvivalPoint:
    """One step of a Kaplan-Meier curve."""

    time_days: float
    survival: float
    at_risk: int
    events: int


def kaplan_meier(
    durations: list[float], observed: list[bool]
) -> list[SurvivalPoint]:
    """Kaplan-Meier estimator.

    Args:
        durations: follow-up time per subject (days).
        observed: True when the subject died at its duration; False
            when it was censored (still alive when observation ended).

    Returns the stepwise survival curve at each distinct event time.
    """
    if len(durations) != len(observed):
        raise ValueError("durations and observed must have equal length")
    if any(d < 0 for d in durations):
        raise ValueError("durations must be non-negative")
    order = sorted(range(len(durations)), key=lambda i: durations[i])
    n = len(durations)
    curve: list[SurvivalPoint] = []
    survival = 1.0
    index = 0
    removed = 0
    while index < n:
        time = durations[order[index]]
        events = 0
        ties = 0
        while index < n and durations[order[index]] == time:
            if observed[order[index]]:
                events += 1
            ties += 1
            index += 1
        at_risk = n - removed
        if events and at_risk:
            survival *= 1.0 - events / at_risk
            curve.append(
                SurvivalPoint(
                    time_days=time,
                    survival=survival,
                    at_risk=at_risk,
                    events=events,
                )
            )
        removed += ties
    return curve


def median_survival(curve: list[SurvivalPoint]) -> float | None:
    """First time at which estimated survival drops to 0.5 or below."""
    for point in curve:
        if point.survival <= 0.5:
            return point.time_days
    return None


def survival_at(curve: list[SurvivalPoint], time_days: float) -> float:
    """S(t) read off a Kaplan-Meier curve (1.0 before the first event)."""
    survival = 1.0
    for point in curve:
        if point.time_days > time_days:
            break
        survival = point.survival
    return survival
