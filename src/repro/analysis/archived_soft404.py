"""Is an archived copy erroneous?

Section 3 needs this to show that IABot's single-fetch deadness check
is safe ("out of all permanent dead links which have at least one
archived copy after they were marked permanently dead, … the first of
these copies is erroneous (i.e., 404, soft-404, etc.) for 95% of
links"), and §5.1 needs it to spot links that were broken on the very
day they were posted.

Status codes settle most cases: a 4xx/5xx initial status, a redirect
that never reached a 200, or a failed capture is erroneous. The hard
case is an archived copy with status 200 that is actually a soft-404
or a parked page. The live-web trick (§3's random sibling probe)
cannot be replayed against history, so we use boilerplate evidence
instead: if the copy's content sketch is near-identical to a
contemporaneous 200 capture of a *different* URL on the same host,
the "content" is site boilerplate (error page, parked lander,
homepage), not the page the link pointed at.
"""

from __future__ import annotations

from ..archive.cdx import CdxApi, CdxQuery, MatchType
from ..archive.snapshot import Snapshot
from .columnar import sketch_similarity_batch

#: Sketch similarity above which two captures are "the same boilerplate".
BOILERPLATE_SIMILARITY = 0.9
#: How far around the capture to look for boilerplate twins (days).
TWIN_WINDOW_DAYS = 180.0
#: How many sibling captures to examine before giving up.
MAX_TWIN_CANDIDATES = 40


def archived_copy_erroneous(snapshot: Snapshot, cdx: CdxApi) -> bool:
    """Whether an archived copy records an error rather than content."""
    if snapshot.looks_erroneous_by_status:
        return True
    if snapshot.initial_redirected:
        # Redirect that did land on a 200: judge the landing content.
        return _body_is_boilerplate(snapshot, cdx)
    return _body_is_boilerplate(snapshot, cdx)


def _body_is_boilerplate(snapshot: Snapshot, cdx: CdxApi) -> bool:
    """Does another URL on this host have the same content near this
    capture time?

    The candidate scan (filters, blanket-redirect signature, the
    examined-row budget) is unchanged from the per-record original;
    only the sketch comparisons at the end run as one columnar batch
    instead of a per-row call. The decision is identical: the original
    returned True at the first similar candidate among the first
    :data:`MAX_TWIN_CANDIDATES` examined, which is exactly "any
    candidate similar" over the same set.
    """
    if not snapshot.sketch:
        return False
    rows = cdx.query(
        CdxQuery(
            url=snapshot.url,
            match_type=MatchType.HOST,
            from_time=snapshot.captured_at.minus_days(TWIN_WINDOW_DAYS),
            to_time=snapshot.captured_at.plus_days(TWIN_WINDOW_DAYS),
            exclude_self=True,
        )
    )
    examined = 0
    candidates: list[tuple[int, ...]] = []
    for row in rows:
        if not row.sketch or row.final_status != 200:
            continue
        # A redirect *landing* on the same final URL as this capture is
        # not independent evidence (it is the same landing page).
        if row.final_url is not None and row.final_url == snapshot.final_url:
            if row.url != snapshot.url and snapshot.initial_redirected:
                # Two different URLs redirecting to one landing page is
                # exactly the blanket-redirect signature.
                return True
            continue
        examined += 1
        if examined > MAX_TWIN_CANDIDATES:
            break
        candidates.append(row.sketch)
    if not candidates:
        return False
    fractions = sketch_similarity_batch(
        [(sketch, snapshot.sketch) for sketch in candidates]
    )
    return any(f >= BOILERPLATE_SIMILARITY for f in fractions)
