"""Sampling the study dataset.

The paper randomly samples 10,000 URLs *that were marked permanently
dead by IABot* — markings by humans or other bots are excluded because
IABot dominates and its open-source code lets the authors reason about
its behaviour (§2.4).
"""

from __future__ import annotations

from ..errors import DatasetError
from ..rng import Stream, derive_seed
from ..wiki.templates import IABOT_USERNAME
from .collector import CollectedLink


def sample_iabot_marked(
    collected: list[CollectedLink],
    k: int,
    seed: int = 0,
    marker: str = IABOT_USERNAME,
) -> list[CollectedLink]:
    """``k`` links marked by ``marker``, sampled without replacement.

    If fewer than ``k`` qualifying links exist, all of them are
    returned (in stable URL order after shuffling is skipped).
    """
    if k < 0:
        raise DatasetError("sample size must be non-negative")
    qualifying = [link for link in collected if link.marked_by == marker]
    if len(qualifying) <= k:
        return sorted(qualifying, key=lambda link: link.url)
    rng = Stream(derive_seed(seed, "sampler"), "sampler")
    return rng.sample(qualifying, k)
