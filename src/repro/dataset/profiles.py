"""Statistical profiles for the synthetic universe.

Every distribution the world generator draws from lives here, with the
paper's empirical shape it is calibrated against noted inline. These
are calibration constants, not measurements — the measurement happens
later, when the analysis pipeline observes the generated world.
"""

from __future__ import annotations

from ..clock import SimTime
from ..rng import Stream

# -- posting dates (Figure 3c) ---------------------------------------------------
#
# The paper: links span 15 years; 40% posted after 2015, 20% after
# 2017, and the shape tracks the English Wikipedia's growth.

#: Weights are calibrated on the *marked* population: recently posted
#: links get marked at a lower rate (they die close to the sweep
#: horizon), so later years carry inverse-attrition boosts to land the
#: paper's Figure 3c over the dataset the collector actually sees.
POSTING_YEAR_WEIGHTS: tuple[tuple[int, float], ...] = (
    (2004, 4.0),
    (2005, 6.0),
    (2006, 9.0),
    (2007, 13.0),
    (2008, 16.0),
    (2009, 19.0),
    (2010, 20.0),
    (2011, 20.0),
    (2012, 21.0),
    (2013, 26.0),
    (2014, 24.0),
    (2015, 26.0),
    (2016, 48.0),
    (2017, 52.0),
    (2018, 30.0),
    (2019, 36.0),
    (2020, 38.0),
    (2021, 40.0),
    (2022, 4.0),  # partial year; study is March 2022
)


def draw_posting_time(rng: Stream, latest: SimTime) -> SimTime:
    """A link-posting instant following the Figure 3c profile."""
    year = rng.weighted_choice(POSTING_YEAR_WEIGHTS)
    instant = SimTime.from_year(year + rng.random())
    if not instant < latest:
        instant = SimTime(latest.days - rng.uniform(30.0, 400.0))
    return instant


# -- URLs per domain (Figure 3a) ----------------------------------------------------
#
# Heavy-tailed: >70% of domains contribute one URL; a few contribute
# over 100. A truncated discrete power law over domain sizes with
# exponent ~2.05 reproduces that CDF at 10k-link scale.

DOMAIN_SIZE_ALPHA = 2.05
DOMAIN_SIZE_MAX = 400


def draw_domain_size(rng: Stream, remaining: int) -> int:
    """How many dataset links the next domain contributes."""
    size = rng.zipf(DOMAIN_SIZE_ALPHA, DOMAIN_SIZE_MAX)
    return min(size, remaining)


# -- site popularity (Figure 3b) --------------------------------------------------------
#
# Rankings spread across the whole 1..1M Alexa range, roughly log-
# uniformly with extra mass in the unpopular tail (the CDF in Figure
# 3b stays well below the diagonal for small ranks).

RANK_MIN = 100
RANK_MAX = 1_000_000


def draw_site_ranking(rng: Stream) -> int:
    """An Alexa-style global rank for a generated site."""
    if rng.chance(0.35):
        # Tail mass: plain uniform over the upper half of the range.
        return rng.randint(RANK_MAX // 2, RANK_MAX)
    return int(rng.log_uniform(RANK_MIN, RANK_MAX))


# -- organic crawl rates -------------------------------------------------------------------
#
# Popular sites are recrawled often, unpopular ones rarely; the rate
# drives both the Figure 5 first-capture gaps and the Figure 6
# coverage counts.


def draw_crawl_rate(rng: Stream, ranking: int) -> float:
    """Organic captures per URL per year for a site of this rank."""
    popularity_boost = (RANK_MAX / max(ranking, 1)) ** 0.18
    return rng.log_uniform(0.12, 1.5) * popularity_boost


def draw_discovery_lag_days(rng: Stream) -> float:
    """Days between a page appearing on the web and the archive's
    frontier learning that it exists."""
    return rng.lognormal_days(150.0, 1.4)


# -- page timing ---------------------------------------------------------------------------------


def draw_page_age_at_posting(rng: Stream) -> float:
    """Days a page had existed before someone cited it on Wikipedia."""
    return rng.lognormal_days(400.0, 1.2)


def draw_survival_after_posting(rng: Stream) -> float:
    """Days from posting until a dying link stops working.

    A mixture: some infant mortality (pages that vanish within months
    of being cited) over a body with a median above two years — "many
    links become dysfunctional even a few years after they are posted".
    """
    if rng.chance(0.22):
        return rng.lognormal_days(100.0, 1.0)
    return rng.lognormal_days(900.0, 0.8)


def draw_extra_pages(rng: Stream, ranking: int) -> int:
    """Non-wiki-linked pages a site hosts (spatial-coverage filler).

    Bigger sites host more pages; truncated to keep simulation cost
    bounded (we reproduce Figure 6's shape at reduced scale, as
    documented in DESIGN.md).
    """
    popularity_boost = (RANK_MAX / max(ranking, 1)) ** 0.28
    return int(rng.log_uniform(1.0, 8.0) * popularity_boost)
