"""World generation: plan → build → replay.

:func:`generate_world` produces a complete, self-consistent universe:

1. **plan** — sites, link dispositions, posting dates
   (:mod:`repro.dataset.planner`);
2. **build** — the live web with page lifecycles and the archive's
   organic crawl seeds (:mod:`repro.dataset.builder`);
3. **replay** — every event in strict time order: human edits post
   links to articles, the archive's organic and event-triggered
   crawlers capture URLs, occasional humans annotate dead links, and
   InternetArchiveBot sweeps the wiki, patching what it can and
   marking the rest permanently dead.

Because the replay is chronological, nothing ever observes the future:
a 2016 bot sweep sees only the snapshots captured by 2016, which is
what makes the paper's §4.1 "copies existed before marking" analysis
measurable rather than baked in.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..archive.availability import AvailabilityApi, AvailabilityPolicy
from ..archive.cdx import CdxApi
from ..archive.crawler import (
    ArchiveCrawler,
    CrawlPolicy,
    OrganicCrawlPlanner,
    TriggeredArchiver,
    TriggerEra,
)
from ..archive.store import SnapshotStore
from ..clock import EVENTSTREAM_START, STUDY_TIME, SimTime, WNRT_START
from ..errors import WorldGenError
from ..iabot.archive_client import IABotArchiveClient
from ..iabot.bot import InternetArchiveBot
from ..iabot.checker import LinkChecker
from ..iabot.config import IABotConfig
from ..net.fetch import Fetcher
from ..rng import RngRegistry, Stream, derive_seed
from ..web.world import LiveWeb
from ..wiki.encyclopedia import Encyclopedia
from ..wiki.templates import cite_web, dead_link
from ..wiki.wikitext import LinkRef
from .builder import BuiltWeb, TruthRecord, WebBuilder
from .planner import Disposition, LinkPlan, SiteKind, plan_universe

_TITLE_WORDS = (
    "Aldermoor", "Brindle", "Carden", "Dunmore", "Eastvale", "Farlow",
    "Glenside", "Harwick", "Inverleith", "Jarrow", "Kelton", "Larkfield",
    "Merewood", "Norbury", "Oakhurst", "Penrith", "Quarrington", "Redcliffe",
    "Stanmere", "Thornden", "Ulverton", "Vexford", "Westbrook", "Yarmouth",
    "Abbey", "Bridge", "Castle", "District", "Election", "Festival",
    "Grange", "Harbour", "Island", "Junction", "Kirk", "Lane", "Manor",
    "Notch", "Orchard", "Parish", "Quarry", "River", "Station", "Tunnel",
    "Uprising", "Valley", "Ward", "Zephyr",
)


@dataclass(frozen=True)
class WorldConfig:
    """All calibration knobs for one synthetic universe.

    Defaults target the paper's 10,000-link study: roughly 13k links
    end up marked permanently dead by IABot, from which the collector
    samples ``target_sample``. Tests use much smaller ``n_links``.
    """

    seed: int = 2022
    n_links: int = 26_000
    target_sample: int = 10_000
    study_time: SimTime = STUDY_TIME

    # -- link mixture -------------------------------------------------------
    stays_alive_frac: float = 0.26
    typo_frac: float = 0.045          # of dying links
    moved_redirect_later_frac: float = 0.052
    revived_frac: float = 0.0065
    moved_prompt_redirect_frac: float = 0.075
    query_deep_frac: float = 0.035
    isolated_directory_prob: float = 0.30

    # -- site mixture -------------------------------------------------------
    site_kind_weights: tuple[tuple[SiteKind, float], ...] = (
        (SiteKind.HARD404, 0.100),
        (SiteKind.REDIRECT_ERA, 0.360),
        (SiteKind.BECOMES_SOFT404, 0.045),
        (SiteKind.BECOMES_REDIRECT_HOME, 0.050),
        (SiteKind.BECOMES_REDIRECT_LOGIN, 0.012),
        (SiteKind.BECOMES_OFFSITE, 0.010),
        (SiteKind.ABANDONED, 0.280),
        (SiteKind.ABANDONED_PARKED, 0.025),
        (SiteKind.FLAKY, 0.022),
        (SiteKind.GEO_403, 0.022),
        (SiteKind.GEO_TIMEOUT, 0.014),
        (SiteKind.OUTAGE, 0.028),
    )
    obscure_site_prob: float = 0.11
    #: Probability a new site is a subdomain of an earlier site's
    #: registrable domain (hostnames-per-domain ratio, §2.4).
    shared_domain_prob: float = 0.11
    impaired_site_crawl_factor: float = 0.25
    flaky_timeout_probability: float = 0.85
    max_extra_pages_per_site: int = 120

    # -- humans ----------------------------------------------------------------
    human_marking_prob: float = 0.02

    # -- IABot schedule ----------------------------------------------------------
    first_sweep: SimTime = SimTime.from_ymd(2015, 9, 1)
    sweep_interval_days: float = 90.0
    #: Each sweep scans 1/sweep_shards of all articles (IABot takes
    #: years for a full pass of the English Wikipedia, so marking
    #: dates spread across 2015-2022 rather than clustering at the
    #: first sweep).
    sweep_shards: int = 8
    sweep_until: SimTime = SimTime.from_ymd(2022, 2, 20)
    iabot_timeout_ms: float | None = 5000.0
    iabot_recheck_marked: bool = False

    # -- archive -------------------------------------------------------------------
    availability_base_ms: float = 50.0
    availability_tail_ms: float = 2100.0
    wnrt_coverage: float = 0.50
    wnrt_delay_median_days: float = 0.8
    eventstream_coverage: float = 0.75
    eventstream_delay_median_days: float = 0.2
    crawl_policy: CrawlPolicy = CrawlPolicy()
    #: Organic (site-popularity-driven) crawl attention on wiki-linked
    #: pages that never break, relative to the rest of their site.
    link_page_crawl_factor: float = 0.2
    #: Archive-attention profile for dying links: probability the URL
    #: is never attempted at all, probability it is attempted only
    #: after it broke (the remainder is captured while still working —
    #: those links mostly get patched rather than marked, unless the
    #: availability lookup times out).
    link_never_attempted_prob: float = 0.02
    link_broken_only_prob: float = 0.32
    #: Mean number of extra captures while the URL worked.
    alive_captures_mean: float = 1.0
    #: Capture-attempt rate while the URL is broken (per year).
    broken_capture_rate_per_year: float = 2.2
    #: Probability a typo'd URL never gets an archive attempt.
    typo_never_attempted_prob: float = 0.35
    #: Probability an obscure site's broken link is never attempted at
    #: all (the frontier never learned the site exists) — the §5.2
    #: hostname-level coverage gaps.
    obscure_never_prob: float = 0.25
    #: Probability a query-heavy URL's resource was archived under a
    #: different parameter ordering (the §5.2 implication-b recovery
    #: target).
    query_variant_archived_prob: float = 0.30
    #: Probability a decaying (to-be-abandoned) site blanket-redirects
    #: dead URLs to its homepage for its final stretch.
    abandoned_redirect_era_prob: float = 0.90
    #: Probability a generic dying link was already broken when the
    #: user posted it (stale URL copied from an old source).
    pre_broken_prob: float = 0.08

    def __post_init__(self) -> None:
        if self.n_links < 1:
            raise WorldGenError("n_links must be >= 1")
        if not 0.0 <= self.stays_alive_frac < 1.0:
            raise WorldGenError("stays_alive_frac must be in [0, 1)")
        special = (
            self.typo_frac
            + self.moved_redirect_later_frac
            + self.revived_frac
            + self.moved_prompt_redirect_frac
            + self.query_deep_frac
        )
        if special >= 1.0:
            raise WorldGenError("special disposition fractions must sum below 1")
        if not self.first_sweep < self.sweep_until:
            raise WorldGenError("first_sweep must precede sweep_until")
        if not self.sweep_until < self.study_time:
            raise WorldGenError("sweeps must end before the study begins")

    @property
    def sweep_times(self) -> tuple[SimTime, ...]:
        """IABot sweep instants, first to last."""
        times = []
        cursor = self.first_sweep
        while cursor < self.sweep_until or cursor.days == self.sweep_until.days:
            times.append(cursor)
            cursor = cursor.plus_days(self.sweep_interval_days)
        return tuple(times)

    @property
    def last_posting(self) -> SimTime:
        """Latest instant a link may be posted (shortly before study)."""
        return self.study_time.minus_days(20.0)

    def trigger_eras(self) -> tuple[TriggerEra, ...]:
        """The WNRT and EventStream eras under this config."""
        return (
            TriggerEra(
                start=WNRT_START,
                end=EVENTSTREAM_START,
                coverage=self.wnrt_coverage,
                delay_median_days=self.wnrt_delay_median_days,
                delay_sigma=0.8,
            ),
            TriggerEra(
                start=EVENTSTREAM_START,
                end=self.study_time,
                coverage=self.eventstream_coverage,
                delay_median_days=self.eventstream_delay_median_days,
                delay_sigma=0.7,
            ),
        )


class _EventKind(enum.IntEnum):
    """Replay event kinds; the int value is the same-instant tiebreak."""

    CREATE_ARTICLE = 0
    ADD_LINK = 1
    HUMAN_MARK = 2
    CAPTURE = 3
    SWEEP = 4


@dataclass
class World:
    """A fully generated universe plus handles to observe it."""

    config: WorldConfig
    web: LiveWeb
    encyclopedia: Encyclopedia
    store: SnapshotStore
    availability: AvailabilityApi
    cdx: CdxApi
    crawler: ArchiveCrawler
    bot: InternetArchiveBot
    site_rankings: dict[str, int]
    truth: dict[str, TruthRecord]

    @property
    def study_time(self) -> SimTime:
        """The instant the paper's probes run (March 2022)."""
        return self.config.study_time

    def fetcher(self) -> Fetcher:
        """A fresh live-web GET client for study probes."""
        return self.web.fetcher()

    def fetch(self, url: str, at: SimTime | None = None):
        """One-off GET (defaults to the study instant)."""
        return self.web.fetch(url, at if at is not None else self.study_time)

    def summary(self) -> str:
        """One-paragraph description of the generated universe."""
        stats = self.bot.stats
        return (
            f"world(seed={self.config.seed}): "
            f"{len(self.web.sites())} sites, "
            f"{len(self.encyclopedia)} articles, "
            f"{len(self.store)} snapshots of {self.store.url_count()} urls; "
            f"IABot checked {stats.links_checked} refs, patched "
            f"{stats.patched}, marked {stats.marked_permadead} permadead"
        )


def generate_world(config: WorldConfig | None = None) -> World:
    """Build a universe and run all of history up to the study date."""
    config = config if config is not None else WorldConfig()
    rngs = RngRegistry(config.seed)

    plans = plan_universe(config, rngs)
    built = WebBuilder(config, rngs).build(plans)
    all_links = [link for plan in plans for link in plan.links]

    events = _assemble_events(config, rngs, built, all_links)

    encyclopedia = Encyclopedia()
    store = SnapshotStore()
    availability = AvailabilityApi(
        store,
        AvailabilityPolicy(
            base_ms=config.availability_base_ms,
            tail_scale_ms=config.availability_tail_ms,
            seed=f"availability:{config.seed}",
        ),
    )
    crawler = ArchiveCrawler(built.web.fetcher(), store)
    bot = InternetArchiveBot(
        encyclopedia,
        LinkChecker(built.web.fetcher()),
        IABotArchiveClient(availability, timeout_ms=config.iabot_timeout_ms),
        IABotConfig(
            availability_timeout_ms=config.iabot_timeout_ms,
            recheck_marked_links=config.iabot_recheck_marked,
        ),
    )

    _replay(events, encyclopedia, crawler, bot, config.sweep_shards)

    return World(
        config=config,
        web=built.web,
        encyclopedia=encyclopedia,
        store=store,
        availability=availability,
        cdx=CdxApi(store),
        crawler=crawler,
        bot=bot,
        site_rankings=built.site_rankings,
        truth=built.truth,
    )


# -- event assembly ---------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class _Event:
    days: float
    kind: _EventKind
    seq: int
    payload: tuple

    def sort_key(self) -> tuple:
        """(time, kind priority, sequence) replay ordering."""
        return (self.days, int(self.kind), self.seq)


def _assemble_events(
    config: WorldConfig,
    rngs: RngRegistry,
    built: BuiltWeb,
    all_links: list[LinkPlan],
) -> list[_Event]:
    events: list[_Event] = []
    seq = 0

    def push(days: float, kind: _EventKind, payload: tuple) -> None:
        """Append one replay event with a stable sequence number."""
        nonlocal seq
        events.append(_Event(days=days, kind=kind, seq=seq, payload=payload))
        seq += 1

    # Wiki edits: group links into articles, one creation edit plus one
    # edit per later link.
    wiki_rng = rngs.stream("wiki.plan")
    url_to_title: dict[str, str] = {}
    for title, links in _plan_articles(all_links, wiki_rng):
        links = sorted(links, key=lambda link: link.posted_at.days)
        first, rest = links[0], links[1:]
        url_to_title[first.url] = title
        push(
            first.posted_at.days,
            _EventKind.CREATE_ARTICLE,
            (title, first, wiki_rng.chance(0.8)),
        )
        for link in rest:
            url_to_title[link.url] = title
            push(
                link.posted_at.days,
                _EventKind.ADD_LINK,
                (title, link, wiki_rng.chance(0.8)),
            )

    # Organic captures.
    crawl_rng = rngs.stream("crawl.organic")
    organic = OrganicCrawlPlanner(horizon=config.study_time)
    for seed in built.seeds:
        if not config.crawl_policy.crawlable(seed.url):
            continue
        for instant in organic.plan(
            seed.available_from, seed.rate_per_year, crawl_rng
        ):
            push(instant.days, _EventKind.CAPTURE, (seed.url,))

    # Profile-scheduled capture attempts for the wiki-linked URLs.
    for url, instant in built.fixed_captures:
        if instant < config.study_time:
            push(instant.days, _EventKind.CAPTURE, (url,))

    # Event-triggered captures (WNRT / EventStream).
    trigger = TriggeredArchiver(config.trigger_eras(), rngs.stream("crawl.trigger"))
    for link in all_links:
        if not config.crawl_policy.crawlable(link.url):
            continue
        instant = trigger.capture_time_for(link.posted_at)
        if instant is not None and instant < config.study_time:
            push(instant.days, _EventKind.CAPTURE, (link.url,))

    # Occasional human dead-link annotations.
    human_rng = rngs.stream("wiki.humanmark")
    for link in all_links:
        truth = built.truth.get(link.url)
        if truth is None or truth.dead_from is None:
            continue
        if not human_rng.chance(config.human_marking_prob):
            continue
        mark_days = max(
            truth.dead_from.days + human_rng.lognormal_days(300.0, 1.0),
            # A link can be dead before it is even posted (stale URL);
            # nobody can annotate it before the article exists.
            link.posted_at.days + 30.0,
        )
        if mark_days < config.sweep_until.days:
            push(
                mark_days,
                _EventKind.HUMAN_MARK,
                (url_to_title[link.url], link.url),
            )

    # Bot sweeps: each covers one shard of the article space (a full
    # pass of the wiki takes sweep_shards sweeps).
    for index, sweep_at in enumerate(config.sweep_times):
        push(sweep_at.days, _EventKind.SWEEP, (index % config.sweep_shards,))

    events.sort(key=_Event.sort_key)
    return events


def _plan_articles(
    all_links: list[LinkPlan], rng: Stream
) -> list[tuple[str, list[LinkPlan]]]:
    """Assign links to articles with 1-5 links each, titled randomly."""
    links = list(all_links)
    rng.shuffle(links)
    articles: list[tuple[str, list[LinkPlan]]] = []
    used_titles: set[str] = set()
    cursor = 0
    while cursor < len(links):
        size = rng.weighted_choice(
            ((1, 0.35), (2, 0.25), (3, 0.18), (4, 0.12), (5, 0.10))
        )
        chunk = links[cursor: cursor + size]
        cursor += size
        title = _fresh_title(rng, used_titles)
        articles.append((title, chunk))
    return articles


def _fresh_title(rng: Stream, used: set[str]) -> str:
    for _ in range(1000):
        words = rng.sample(_TITLE_WORDS, rng.randint(2, 3))
        title = " ".join(words)
        if rng.chance(0.25):
            title += f" ({rng.randint(1801, 2020)})"
        if title not in used:
            used.add(title)
            return title
    raise WorldGenError("article title space exhausted")


# -- replay -----------------------------------------------------------------------------


def _sweep_shard(title: str, shards: int) -> int:
    """Stable article-to-shard assignment for the bot's rolling pass."""
    return derive_seed(0, f"shard:{title}") % shards


def _replay(
    events: list[_Event],
    encyclopedia: Encyclopedia,
    crawler: ArchiveCrawler,
    bot: InternetArchiveBot,
    shards: int,
) -> None:
    for event in events:
        at = SimTime(event.days)
        if event.kind is _EventKind.CREATE_ARTICLE:
            title, link, as_cite = event.payload
            body = (
                f"'''{title}''' is a subject with external references.\n\n"
                "== References ==\n"
                f"* {_ref_text(link, as_cite)}\n"
            )
            encyclopedia.create_article(title, at, _editor_name(link), body)
        elif event.kind is _EventKind.ADD_LINK:
            title, link, as_cite = event.payload
            body = encyclopedia.article(title).wikitext
            body += f"* {_ref_text(link, as_cite)}\n"
            encyclopedia.edit_article(
                title, at, _editor_name(link), body, comment="added reference"
            )
        elif event.kind is _EventKind.CAPTURE:
            (url,) = event.payload
            crawler.capture(url, at)
        elif event.kind is _EventKind.HUMAN_MARK:
            title, url = event.payload
            _human_mark(encyclopedia, title, url, at)
        else:
            (shard,) = event.payload
            titles = tuple(
                title
                for title in encyclopedia.titles()
                if _sweep_shard(title, shards) == shard
            )
            bot.run_sweep(at, titles=titles)


def _ref_text(link: LinkPlan, as_cite: bool) -> str:
    if as_cite:
        return cite_web(link.url, f"Reference {link.index}").render()
    return f"[{link.url} reference {link.index}]"


def _editor_name(link: LinkPlan) -> str:
    return f"Editor{(link.index * 7919) % 997}"


def _human_mark(
    encyclopedia: Encyclopedia, title: str, url: str, at: SimTime
) -> None:
    """A passing human annotates the (dead) reference, without a bot tag."""
    article = encyclopedia.article(title)
    text = article.wikitext
    for ref in article.link_refs():
        if ref.url != url or ref.is_marked_dead or ref.archive_url:
            continue
        replacement = _plain_ref(ref) + dead_link(at).render()
        new_text = text[: ref.span[0]] + replacement + text[ref.span[1]:]
        encyclopedia.edit_article(
            title, at, f"Gnome{derive_seed(677, url) % 677}", new_text,
            comment="tagging dead link",
        )
        return


def _plain_ref(ref: LinkRef) -> str:
    if ref.cite is not None:
        return ref.cite.render()
    if ref.title:
        return f"[{ref.url} {ref.title}]"
    return f"[{ref.url}]"
