"""Dataset construction: world generation, collection, and sampling.

``worldgen`` builds the synthetic universe (web + archive + Wikipedia
+ bot runs); ``collector`` reproduces §2.4's data collection (crawl
the category, parse articles, mine edit histories); ``sampler`` draws
the 10,000-link study dataset.
"""

from .collector import CollectedLink, Collector
from .export import dumps_csv, dumps_jsonl, load_dataset, loads_jsonl, save_dataset
from .records import Dataset, LinkRecord
from .sampler import sample_iabot_marked
from .worldgen import World, WorldConfig, generate_world

__all__ = [
    "CollectedLink",
    "Collector",
    "Dataset",
    "LinkRecord",
    "World",
    "WorldConfig",
    "dumps_csv",
    "dumps_jsonl",
    "generate_world",
    "load_dataset",
    "loads_jsonl",
    "sample_iabot_marked",
    "save_dataset",
]
