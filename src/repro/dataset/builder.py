"""World building: turn a universe plan into a live web + crawl schedule.

The builder realises each :class:`~repro.dataset.planner.SitePlan` as a
:class:`~repro.web.site.Site` with concrete pages, lifecycles, DNS
intervals, parked successors, and extra (non-wiki-linked) pages. It
also decides when the archive will attempt to capture each URL:

- wiki-linked pages get an explicit *archive-attention profile*
  (captured while alive / captured only after breaking / never
  attempted), the calibration lever behind the paper's §4/§5 splits —
  the capture *outcomes* still come from real fetches at replay time;
- sites' homepages and extra pages follow popularity-driven organic
  revisit schedules (they furnish Figure 6's coverage counts and the
  §4.2 sibling-redirect evidence).

A structural point worth noting: on sites headed for abandonment,
individual pages die *before* the DNS registration lapses. That
ordering is what lets a link show "DNS failure" on the live web today
while erroneous 404 captures from the decay window still sit in the
archive — a combination the paper observes constantly.

The builder also writes the ground-truth table that *tests* (never
analyses) assert against.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..clock import SimTime
from ..rng import RngRegistry, Stream
from ..urls.generate import UrlFactory
from ..urls.parse import parse_url
from ..web.behaviors import GeoPolicy, MissingPagePolicy, OutageWindow, SiteState
from ..web.page import Page, PageFate
from ..web.robots import RobotsRules
from ..web.site import Site
from ..web.world import LiveWeb
from . import profiles
from .planner import Disposition, LinkPlan, SiteKind, SitePlan

#: Late-redesign missing-page policies for the BECOMES_* site kinds.
_LATE_POLICY = {
    SiteKind.BECOMES_SOFT404: MissingPagePolicy.SOFT_404,
    SiteKind.BECOMES_REDIRECT_HOME: MissingPagePolicy.REDIRECT_HOME,
    SiteKind.BECOMES_REDIRECT_LOGIN: MissingPagePolicy.REDIRECT_LOGIN,
    SiteKind.BECOMES_OFFSITE: MissingPagePolicy.REDIRECT_OFFSITE,
}


@dataclass(frozen=True, slots=True)
class CrawlSeed:
    """One URL the archive's organic frontier revisits on a schedule."""

    url: str
    available_from: SimTime
    rate_per_year: float


@dataclass(frozen=True, slots=True)
class TruthRecord:
    """Generator ground truth for one wiki link — test fixtures only.

    The analysis pipeline must never read these; tests use them to
    verify that emergent measurements agree with construction.
    """

    url: str
    disposition: Disposition
    site_kind: SiteKind
    hostname: str
    ranking: int
    posted_at: SimTime
    dead_from: SimTime | None = None
    """When requests for the link started failing (None = never)."""


@dataclass
class BuiltWeb:
    """Everything the builder hands to the replay stage."""

    web: LiveWeb
    seeds: list[CrawlSeed] = field(default_factory=list)
    fixed_captures: list[tuple[str, SimTime]] = field(default_factory=list)
    site_rankings: dict[str, int] = field(default_factory=dict)
    truth: dict[str, TruthRecord] = field(default_factory=dict)


def _clamp(value: float, lo: float, hi: float) -> float:
    return max(lo, min(value, hi))


def first_sweep_after(
    instant: SimTime, sweep_times: tuple[SimTime, ...]
) -> SimTime | None:
    """The earliest bot sweep strictly after ``instant``."""
    for sweep in sweep_times:
        if instant < sweep:
            return sweep
    return None


class WebBuilder:
    """Builds the live web for one configuration."""

    def __init__(self, config, rngs: RngRegistry) -> None:
        self._config = config
        self._rng = rngs.stream("build.web")
        self._factory = UrlFactory(rngs.stream("build.urls"))
        self._built = BuiltWeb(web=LiveWeb())
        self._aggregator_roots: list[str] = []
        self._plan_hostnames: dict[int, str] = {}

    # -- public entry point ---------------------------------------------------------

    def build(self, plans: list[SitePlan]) -> BuiltWeb:
        """Realise every site plan and return the built world."""
        self._build_aggregators()
        for plan in plans:
            self._build_site(plan)
        return self._built

    # -- aggregator pool (offsite redirect targets) ------------------------------------

    def _build_aggregators(self) -> None:
        """A few always-up sites that offsite redirects point at
        (cf. baku2017.com redirecting to goalku.com)."""
        for index in range(4):
            hostname = self._factory.hostname()
            site = Site(
                hostname=hostname,
                seed=f"aggregator:{index}:{self._config.seed}",
                ranking=self._rng.randint(1_000, 80_000),
                created_at=SimTime.from_ymd(2001, 1, 1),
                missing_policy=MissingPagePolicy.HARD_404,
            )
            self._built.web.add_site(site)
            self._built.site_rankings[hostname] = site.ranking
            self._aggregator_roots.append(site.root_url)
            self._built.seeds.append(
                CrawlSeed(
                    url=site.root_url,
                    available_from=site.created_at.plus_days(30),
                    rate_per_year=2.0,
                )
            )

    # -- one site --------------------------------------------------------------------------

    def _build_site(self, plan: SitePlan) -> None:
        rng = self._rng
        config = self._config
        hostname = self._hostname_for(plan)
        scheme = "https" if rng.chance(0.3) else "http"

        page_created = {
            link.index: self._page_created_at(link, rng) for link in plan.links
        }
        site_created = SimTime(
            _clamp(
                min(t.days for t in page_created.values())
                - rng.uniform(60.0, 900.0),
                SimTime.from_ymd(1996, 1, 1).days,
                SimTime.from_ymd(2021, 6, 1).days,
            )
        )

        # Page-death draws for the generic dying dispositions; on
        # abandoned sites these also anchor the DNS lapse (pages rot
        # first, the registration goes last) and the decay-era start.
        death_draws = {
            link.index: link.posted_at.days
            + profiles.draw_survival_after_posting(rng)
            for link in plan.links
            if link.disposition in (Disposition.DIES, Disposition.QUERY_DEEP)
        }
        dns_dies, parked_from = self._site_end_times(plan, death_draws, rng)
        state = self._site_state(plan, rng)

        site = Site(
            hostname=hostname,
            seed=f"site:{plan.index}:{config.seed}",
            scheme=scheme,
            ranking=plan.ranking,
            created_at=site_created,
            dns_dies_at=dns_dies,
            missing_policy=MissingPagePolicy.HARD_404,
            policy_changes=self._policy_changes(
                plan, site_created, dns_dies, death_draws, rng
            ),
            offsite_redirect_target=(
                rng.choice(self._aggregator_roots)
                if plan.kind is SiteKind.BECOMES_OFFSITE
                else None
            ),
            state=state,
        )

        directories = [self._factory.directory() for _ in range(rng.randint(2, 4))]
        used_paths: set[str] = set()
        crawl_rate = (
            0.0 if plan.obscure else profiles.draw_crawl_rate(rng, plan.ranking)
        )
        if plan.kind in (SiteKind.GEO_403, SiteKind.GEO_TIMEOUT, SiteKind.OUTAGE):
            # Impaired sites were also lightly crawled, otherwise their
            # pre-impairment 200 captures would get nearly all their
            # links patched rather than marked.
            crawl_rate *= config.impaired_site_crawl_factor

        for link in plan.links:
            self._build_link(
                plan, link, site, directories, used_paths,
                page_created[link.index], dns_dies,
                death_draws.get(link.index), crawl_rate, rng,
            )

        self._build_extra_pages(plan, site, directories, used_paths, crawl_rate, rng)
        self._assign_robots(plan, site)

        if crawl_rate > 0:
            self._built.seeds.append(
                CrawlSeed(
                    url=site.root_url,
                    available_from=site.created_at.plus_days(
                        profiles.draw_discovery_lag_days(rng)
                    ),
                    rate_per_year=crawl_rate * 1.2,
                )
            )

        self._built.web.add_site(site)
        self._built.site_rankings[hostname] = plan.ranking

        if plan.kind is SiteKind.ABANDONED_PARKED and parked_from is not None:
            parked = Site(
                hostname=hostname,
                seed=f"parked:{plan.index}:{config.seed}",
                scheme=scheme,
                ranking=profiles.RANK_MAX,
                created_at=parked_from,
                state=SiteState(parked_from=parked_from),
            )
            self._built.web.add_parked_successor(site, parked)

    def _assign_robots(self, plan: SitePlan, site: Site) -> None:
        """Isolated deep-query directories get robots-excluded.

        Real sites routinely disallow their script/search endpoints;
        this makes the never-archived mechanism observable (the
        crawler's robots cache denies the capture) instead of being a
        silent frontier policy only.
        """
        directories = set()
        for link in plan.links:
            if link.disposition is Disposition.QUERY_DEEP and link.isolated_directory:
                path = parse_url(link.url).path
                directories.add(path[: path.rfind("/") + 1])
        if directories:
            site.robots = RobotsRules(disallow=tuple(sorted(directories)))

    def _hostname_for(self, plan: SitePlan) -> str:
        """A fresh hostname — usually on a fresh registrable domain,
        sometimes a sibling subdomain of an earlier site's domain."""
        hostname = None
        if plan.domain_sibling_of is not None:
            anchor = self._plan_hostnames.get(plan.domain_sibling_of)
            if anchor is not None:
                for _ in range(8):
                    candidate = self._factory.sibling_hostname(anchor)
                    if candidate not in self._plan_hostnames.values():
                        hostname = candidate
                        break
        if hostname is None:
            hostname = self._factory.hostname()
        self._plan_hostnames[plan.index] = hostname
        return hostname

    # -- site-level timing/state -----------------------------------------------------------

    def _page_created_at(self, link: LinkPlan, rng: Stream) -> SimTime:
        age = profiles.draw_page_age_at_posting(rng)
        return SimTime(
            _clamp(
                link.posted_at.days - age,
                SimTime.from_ymd(1997, 1, 1).days,
                link.posted_at.days - 5.0,
            )
        )

    def _policy_changes(
        self,
        plan: SitePlan,
        site_created: SimTime,
        dns_dies: SimTime | None,
        death_draws: dict[int, float],
        rng: Stream,
    ) -> tuple[tuple[SimTime, MissingPagePolicy], ...]:
        """The site's missing-policy timeline beyond its HARD_404 base."""
        config = self._config
        last_sweep = config.sweep_times[-1]
        if plan.kind.abandoned and dns_dies is not None:
            # Many decaying sites blanket-redirect dead URLs to the
            # homepage for their decay period — from around when pages
            # start rotting until the DNS lapses.
            if not rng.chance(config.abandoned_redirect_era_prob):
                return ()
            anchor = (
                min(death_draws.values())
                if death_draws
                else dns_dies.days - rng.uniform(600.0, 2200.0)
            )
            era_start = SimTime(
                _clamp(
                    anchor - rng.uniform(0.0, 200.0),
                    site_created.days + 30.0,
                    dns_dies.days - 90.0,
                )
            )
            return ((era_start, MissingPagePolicy.REDIRECT_HOME),)
        if plan.kind is SiteKind.REDIRECT_ERA:
            # A redirect-home CMS phase somewhere in the past, over
            # before the study (and before the last sweep, so IABot
            # gets a 404 to mark).
            era_start = SimTime(
                _clamp(
                    rng.uniform(
                        SimTime.from_ymd(2009, 1, 1).days,
                        SimTime.from_ymd(2017, 1, 1).days,
                    ),
                    site_created.days + 30.0,
                    last_sweep.days - 1000.0,
                )
            )
            era_end = SimTime(
                min(
                    era_start.days + rng.uniform(2000.0, 4200.0),
                    last_sweep.days - 120.0,
                )
            )
            if not era_start < era_end:
                return ()
            return (
                (era_start, MissingPagePolicy.REDIRECT_HOME),
                (era_end, MissingPagePolicy.HARD_404),
            )
        late = _LATE_POLICY.get(plan.kind)
        if late is not None:
            change_at = SimTime(
                rng.uniform(
                    SimTime.from_ymd(2019, 1, 1).days,
                    config.study_time.days - 45.0,
                )
            )
            return ((change_at, late),)
        return ()

    def _site_end_times(
        self, plan: SitePlan, death_draws: dict[int, float], rng: Stream
    ) -> tuple[SimTime | None, SimTime | None]:
        if not plan.kind.abandoned:
            return None, None
        config = self._config
        last_sweep = config.sweep_times[-1]
        full_pass = config.sweep_interval_days * config.sweep_shards
        upper = last_sweep.days - full_pass - 60.0
        if plan.kind is SiteKind.ABANDONED_PARKED:
            upper = last_sweep.days - full_pass - 420.0
        # Long decay: pages rot individually for a while before the
        # registration finally lapses.
        anchor = max(
            [plan.max_posted.days + 120.0]
            + [death + 120.0 for death in death_draws.values()]
        )
        lower = plan.max_posted.days + 120.0
        raw = anchor + rng.lognormal_days(500.0, 0.7)
        dns_dies = SimTime(_clamp(raw, lower, max(lower, upper)))
        parked_from = None
        if plan.kind is SiteKind.ABANDONED_PARKED:
            parked_from = SimTime(
                _clamp(
                    dns_dies.days + rng.uniform(300.0, 900.0),
                    dns_dies.days + 30.0,
                    config.study_time.days - 30.0,
                )
            )
        return dns_dies, parked_from

    def _site_state(self, plan: SitePlan, rng: Stream) -> SiteState:
        config = self._config
        last_sweep = config.sweep_times[-1]
        if plan.kind is SiteKind.FLAKY:
            return SiteState(timeout_probability=config.flaky_timeout_probability)
        full_pass = config.sweep_interval_days * config.sweep_shards
        if plan.kind in (SiteKind.GEO_403, SiteKind.GEO_TIMEOUT):
            onset = SimTime(
                _clamp(
                    plan.max_posted.days + rng.lognormal_days(500.0, 0.6),
                    plan.max_posted.days + 60.0,
                    max(plan.max_posted.days + 60.0,
                        last_sweep.days - full_pass - 60.0),
                )
            )
            policy = (
                GeoPolicy.BLOCKED_403
                if plan.kind is SiteKind.GEO_403
                else GeoPolicy.BLOCKED_TIMEOUT
            )
            return SiteState(geo=policy, geo_from=onset)
        if plan.kind is SiteKind.OUTAGE:
            onset = SimTime(
                _clamp(
                    plan.max_posted.days + rng.lognormal_days(600.0, 0.6),
                    plan.max_posted.days + 60.0,
                    max(plan.max_posted.days + 60.0,
                        last_sweep.days - full_pass - 60.0),
                )
            )
            window = OutageWindow(start=onset, end=config.study_time.plus_days(60.0))
            return SiteState(outages=(window,))
        return SiteState()

    # -- one link ----------------------------------------------------------------------------

    def _build_link(
        self,
        plan: SitePlan,
        link: LinkPlan,
        site: Site,
        directories: list[str],
        used_paths: set[str],
        created_at: SimTime,
        dns_dies: SimTime | None,
        death_draw: float | None,
        crawl_rate: float,
        rng: Stream,
    ) -> None:
        if link.disposition is Disposition.TYPO:
            self._build_typo_link(
                plan, link, site, directories, used_paths, created_at,
                crawl_rate, rng,
            )
            return

        path_query = self._fresh_path(
            link.disposition, directories, used_paths, rng, link.isolated_directory
        )
        url = site.url_for(path_query)
        link.url = url

        page = self._page_for(
            plan, link, path_query, created_at, dns_dies, death_draw,
            site, used_paths, rng,
        )
        site.add_page(page)

        self._built.truth[url] = TruthRecord(
            url=url,
            disposition=link.disposition,
            site_kind=plan.kind,
            hostname=site.hostname,
            ranking=plan.ranking,
            posted_at=link.posted_at,
            dead_from=self._dead_from(plan, link, page, dns_dies, site),
        )

        self._schedule_link_captures(
            plan, link, page, site, dns_dies, crawl_rate, rng
        )
        if link.disposition is Disposition.QUERY_DEEP:
            self._maybe_schedule_query_variant(link, page, rng)

    def _maybe_schedule_query_variant(
        self, link: LinkPlan, page: Page, rng: Stream
    ) -> None:
        """Sometimes the archive holds the *same resource* under a
        different parameter ordering (captured via an onsite link),
        even though the exact posted string was never crawled — the
        recovery target of §5.2's implication (b)."""
        if not rng.chance(self._config.query_variant_archived_prob):
            return
        variant = self._factory.reorder_query(parse_url(link.url))
        if variant is None:
            return
        alive_start = page.created_at.days + 10.0
        alive_end = (
            page.died_at.days if page.died_at is not None
            else self._config.study_time.days
        )
        self._fixed_uniform_captures(
            str(variant),
            start=alive_start,
            end=alive_end,
            count=1 + rng.poisson(0.5),
            rng=rng,
        )

    def _fresh_path(
        self,
        disposition: Disposition,
        directories: list[str],
        used_paths: set[str],
        rng: Stream,
        isolated: bool,
    ) -> str:
        for _ in range(200):
            if disposition is Disposition.QUERY_DEEP:
                directory = (
                    self._factory.directory(depth=3)
                    if isolated
                    else rng.choice(directories)
                )
                leaf = self._factory.leaf(style="asp")
                query = self._factory.query_string(params=rng.randint(4, 7))
                candidate = f"{directory}{leaf}?{query}"
            else:
                directory = rng.choice(directories)
                style = "numeric" if rng.chance(0.3) else "slug"
                candidate = f"{directory}{self._factory.leaf(style=style)}"
            if candidate not in used_paths:
                used_paths.add(candidate)
                return candidate
        raise RuntimeError("could not find a fresh path on site")

    def _page_for(
        self,
        plan: SitePlan,
        link: LinkPlan,
        path_query: str,
        created_at: SimTime,
        dns_dies: SimTime | None,
        death_draw: float | None,
        site: Site,
        used_paths: set[str],
        rng: Stream,
    ) -> Page:
        disposition = link.disposition
        posted = link.posted_at

        if disposition is Disposition.STAYS_ALIVE:
            return Page(path_query=path_query, created_at=created_at)

        if disposition is Disposition.MOVED_PROMPT_REDIRECT:
            return self._prompt_moved_page(
                plan, link, path_query, created_at, dns_dies, site,
                used_paths, rng,
            )

        if plan.kind in (
            SiteKind.FLAKY,
            SiteKind.GEO_403,
            SiteKind.GEO_TIMEOUT,
            SiteKind.OUTAGE,
        ):
            # Deadness comes from the site impairment, not the page.
            return Page(path_query=path_query, created_at=created_at)

        died_at = (
            SimTime(death_draw)
            if death_draw is not None
            else posted.plus_days(profiles.draw_survival_after_posting(rng))
        )
        if (
            disposition is Disposition.DIES
            and rng.chance(self._config.pre_broken_prob)
            and created_at.days + 20.0 < posted.days - 30.0
        ):
            # Already broken when posted: the user copied a stale URL.
            died_at = SimTime(
                _clamp(
                    posted.days - rng.uniform(30.0, 600.0),
                    created_at.days + 20.0,
                    posted.days - 30.0,
                )
            )
        if plan.kind.abandoned:
            # The page rots before the registration lapses; if the
            # draw lands too late, the page simply dies with the site.
            assert dns_dies is not None
            if dns_dies.days - 90.0 <= posted.days + 30.0:
                return Page(path_query=path_query, created_at=created_at)
            died_at = SimTime(
                _clamp(died_at.days, posted.days + 30.0, dns_dies.days - 90.0)
            )
            return Page(
                path_query=path_query,
                created_at=created_at,
                fate=PageFate.DELETED,
                died_at=died_at,
            )

        if disposition is Disposition.MOVED_REDIRECT_LATER:
            redirect_at = self._late_fix_time(died_at, rng)
            target_path = self._fresh_path(
                Disposition.DIES, [self._factory.directory()], used_paths, rng, False
            )
            site.add_page(Page(path_query=target_path, created_at=died_at))
            return Page(
                path_query=path_query,
                created_at=created_at,
                fate=PageFate.MOVED,
                died_at=died_at,
                moved_to=site.url_for(target_path),
                redirect_added_at=redirect_at,
            )

        if disposition is Disposition.REVIVED:
            return Page(
                path_query=path_query,
                created_at=created_at,
                fate=PageFate.DELETED,
                died_at=died_at,
                revived_at=self._late_fix_time(died_at, rng),
            )

        # DIES / QUERY_DEEP on a stays-up site: plain deletion.
        return Page(
            path_query=path_query,
            created_at=created_at,
            fate=PageFate.DELETED,
            died_at=died_at,
        )

    def _prompt_moved_page(
        self,
        plan: SitePlan,
        link: LinkPlan,
        path_query: str,
        created_at: SimTime,
        dns_dies: SimTime | None,
        site: Site,
        used_paths: set[str],
        rng: Stream,
    ) -> Page:
        """A page that moved with a working redirect, which later broke.

        Half the time the move predates the wiki posting (the user
        posted a URL that already redirected — also how §5.1's
        pre-posting copies arise). The redirect's end is the site's
        DNS lapse on abandoned sites, or an explicit removal during a
        later restructuring on sites that stay up.
        """
        posted = link.posted_at
        config = self._config
        last_sweep = config.sweep_times[-1]
        redirect_end_cap = (
            dns_dies.days - 60.0
            if dns_dies is not None
            else last_sweep.days - 90.0
        )
        latest_move = min(redirect_end_cap - 120.0, posted.days + 500.0)
        earliest_move = created_at.days + 15.0
        if rng.chance(0.6):
            move_days = _clamp(
                posted.days - rng.uniform(60.0, 700.0),
                earliest_move,
                max(earliest_move, latest_move),
            )
        else:
            move_days = _clamp(
                posted.days + rng.uniform(30.0, 500.0),
                earliest_move,
                max(earliest_move, latest_move),
            )
        move_at = SimTime(move_days)
        removed_at = None
        if dns_dies is None:
            removed_days = _clamp(
                move_at.days + rng.uniform(400.0, 1800.0),
                move_at.days + 90.0,
                last_sweep.days - 90.0,
            )
            removed_at = SimTime(removed_days)
        target_path = self._fresh_path(
            Disposition.DIES, [self._factory.directory()], used_paths, rng, False
        )
        site.add_page(Page(path_query=target_path, created_at=move_at))
        return Page(
            path_query=path_query,
            created_at=created_at,
            fate=PageFate.MOVED,
            died_at=move_at,
            moved_to=site.url_for(target_path),
            redirect_added_at=move_at,
            redirect_removed_at=removed_at,
        )

    def _dead_from(
        self,
        plan: SitePlan,
        link: LinkPlan,
        page: Page,
        dns_dies: SimTime | None,
        site: Site,
    ) -> SimTime | None:
        """Ground truth: when GETs for the link started failing."""
        disposition = link.disposition
        if disposition is Disposition.STAYS_ALIVE:
            return None
        if disposition is Disposition.TYPO:
            return link.posted_at
        if plan.kind is SiteKind.FLAKY:
            return link.posted_at
        if plan.kind in (SiteKind.GEO_403, SiteKind.GEO_TIMEOUT):
            return site.state.geo_from
        if plan.kind is SiteKind.OUTAGE:
            return site.state.outages[0].start if site.state.outages else None
        if disposition is Disposition.MOVED_PROMPT_REDIRECT:
            # The redirect works until the DNS lapses or it is removed.
            if page.redirect_removed_at is not None:
                return page.redirect_removed_at
            return dns_dies
        if plan.kind.abandoned:
            if page.died_at is not None:
                return page.died_at
            return dns_dies
        return page.died_at

    def _late_fix_time(self, died_at: SimTime, rng: Stream) -> SimTime | None:
        """A revival/redirect instant that lands after IABot has had a
        sweep to mark the link, but before the study probes it.

        ``None`` when the page died too close to the study for a fix
        to fit — the link then simply stays dead (quota shortfall, not
        an error).
        """
        config = self._config
        sweep = first_sweep_after(died_at, config.sweep_times)
        # The bot's rolling pass may take a full cycle of shards to
        # reach this article, so leave room for marking before fixing.
        full_pass_days = config.sweep_interval_days * config.sweep_shards
        earliest = died_at.days + 60.0
        if sweep is not None:
            earliest = max(earliest, sweep.days + full_pass_days * 1.1)
        candidate = max(earliest, died_at.days + rng.uniform(900.0, 1700.0))
        candidate = min(candidate, config.study_time.days - 20.0)
        if candidate < earliest:
            return None
        return SimTime(candidate)

    def _build_typo_link(
        self,
        plan: SitePlan,
        link: LinkPlan,
        site: Site,
        directories: list[str],
        used_paths: set[str],
        created_at: SimTime,
        crawl_rate: float,
        rng: Stream,
    ) -> None:
        """A real page plus a mangled URL that never existed."""
        real_path = self._fresh_path(
            Disposition.DIES, directories, used_paths, rng, False
        )
        real_page = Page(path_query=real_path, created_at=created_at)
        site.add_page(real_page)
        real_url = site.url_for(real_path)
        if crawl_rate > 0:
            self._built.seeds.append(
                CrawlSeed(
                    url=real_url,
                    available_from=self._discovery_time(real_page, rng),
                    rate_per_year=crawl_rate,
                )
            )
        for _ in range(50):
            mangled = self._factory.typo(parse_url(real_url))
            path_query = mangled.path + (
                f"?{mangled.query}" if mangled.query else ""
            )
            if path_query not in used_paths:
                used_paths.add(path_query)
                link.url = str(mangled)
                break
        else:
            raise RuntimeError("could not produce a fresh typo URL")
        self._built.truth[link.url] = TruthRecord(
            url=link.url,
            disposition=Disposition.TYPO,
            site_kind=plan.kind,
            hostname=site.hostname,
            ranking=plan.ranking,
            posted_at=link.posted_at,
            dead_from=link.posted_at,
        )
        # The mangled URL itself: the archive either attempts it late
        # (storing 404s) or never hears of it.
        config = self._config
        if not config.crawl_policy.crawlable(link.url):
            return
        if rng.chance(config.typo_never_attempted_prob):
            return
        self._fixed_uniform_captures(
            link.url,
            start=link.posted_at.days + 30.0,
            end=config.study_time.days,
            count=1 + rng.poisson(1.0),
            rng=rng,
        )

    def _discovery_time(self, page: Page, rng: Stream) -> SimTime:
        """When the archive frontier learns the page's URL exists."""
        return page.created_at.plus_days(profiles.draw_discovery_lag_days(rng))

    # -- archive attention profiles -------------------------------------------------------

    def _schedule_link_captures(
        self,
        plan: SitePlan,
        link: LinkPlan,
        page: Page,
        site: Site,
        dns_dies: SimTime | None,
        crawl_rate: float,
        rng: Stream,
    ) -> None:
        """Decide when the archive attempts this wiki-linked URL.

        Profiles (probabilities in the config): captured while the URL
        still worked, captured only after it broke, or never attempted.
        Event-feed (WNRT/EventStream) captures are scheduled separately
        by the replay assembler.
        """
        config = self._config
        if not config.crawl_policy.crawlable(link.url):
            return

        if link.disposition is Disposition.STAYS_ALIVE:
            if crawl_rate > 0:
                self._built.seeds.append(
                    CrawlSeed(
                        url=link.url,
                        available_from=self._discovery_time(page, rng),
                        rate_per_year=crawl_rate * config.link_page_crawl_factor,
                    )
                )
            return

        alive_window, broken_window = self._capture_windows(
            plan, link, page, site, dns_dies
        )

        roll = rng.random()
        if roll < config.link_never_attempted_prob:
            return
        captured_alive = roll >= (
            config.link_never_attempted_prob + config.link_broken_only_prob
        )
        if plan.obscure:
            # The organic frontier never learned this site exists, so
            # nothing was captured while it worked; often nothing was
            # captured at all (the §5.2 hostname-level coverage gaps),
            # otherwise only later wiki-driven attempts occur.
            if rng.chance(config.obscure_never_prob):
                return
            captured_alive = False

        if captured_alive and alive_window is not None:
            self._fixed_uniform_captures(
                link.url,
                start=alive_window[0],
                end=alive_window[1],
                count=1 + rng.poisson(config.alive_captures_mean),
                rng=rng,
            )
        if broken_window is not None:
            start, end = broken_window
            years = max(end - start, 0.0) / 365.2425
            count = rng.poisson(config.broken_capture_rate_per_year * years)
            if not captured_alive:
                count += 1  # broken-only links get at least one attempt
            self._fixed_uniform_captures(
                link.url, start=start, end=end, count=count, rng=rng
            )

    def _capture_windows(
        self,
        plan: SitePlan,
        link: LinkPlan,
        page: Page,
        site: Site,
        dns_dies: SimTime | None,
    ) -> tuple[tuple[float, float] | None, tuple[float, float] | None]:
        """(alive, broken) capture-attempt windows in days, or None."""
        study = self._config.study_time.days
        created = page.created_at.days + 10.0

        if plan.kind is SiteKind.FLAKY:
            # Attempts happen but nearly all fail at the transport
            # level; scheduling a couple keeps the behaviour honest.
            return (created, study), None
        if plan.kind in (SiteKind.GEO_403, SiteKind.GEO_TIMEOUT):
            onset = site.state.geo_from
            onset_days = onset.days if onset is not None else study
            broken = (
                (onset_days, study)
                if plan.kind is SiteKind.GEO_403
                else None  # timeouts leave no archive trace
            )
            return (created, onset_days), broken
        if plan.kind is SiteKind.OUTAGE:
            onset = site.state.outages[0].start.days
            return (created, onset), (onset, study)

        if link.disposition is Disposition.MOVED_PROMPT_REDIRECT:
            assert page.died_at is not None
            if page.redirect_removed_at is not None:
                redirect_end = page.redirect_removed_at.days
            elif dns_dies is not None:
                redirect_end = dns_dies.days
            else:
                redirect_end = study
            # The "broken" window here is the redirect era: captures in
            # it are the valid 3xx copies of §4.2.
            return (created, page.died_at.days), (page.died_at.days, redirect_end)

        if plan.kind.abandoned:
            assert dns_dies is not None
            page_dead = (
                page.died_at.days if page.died_at is not None else dns_dies.days
            )
            return (created, page_dead), (page_dead, dns_dies.days)

        assert page.died_at is not None
        return (created, page.died_at.days), (page.died_at.days, study)

    def _fixed_uniform_captures(
        self, url: str, start: float, end: float, count: int, rng: Stream
    ) -> None:
        if count <= 0 or end <= start:
            return
        for _ in range(count):
            self._built.fixed_captures.append(
                (url, SimTime(rng.uniform(start, end)))
            )

    # -- extra pages -------------------------------------------------------------------------

    def _build_extra_pages(
        self,
        plan: SitePlan,
        site: Site,
        directories: list[str],
        used_paths: set[str],
        crawl_rate: float,
        rng: Stream,
    ) -> None:
        count = min(
            profiles.draw_extra_pages(rng, plan.ranking),
            self._config.max_extra_pages_per_site,
        )
        for _ in range(count):
            directory = (
                rng.choice(directories)
                if rng.chance(0.8)
                else self._factory.directory()
            )
            style = "numeric" if rng.chance(0.4) else "slug"
            candidate = f"{directory}{self._factory.leaf(style=style)}"
            if candidate in used_paths:
                continue
            used_paths.add(candidate)
            created = site.created_at.plus_days(rng.log_uniform(30.0, 2500.0))
            if rng.chance(0.25):
                page = Page(
                    path_query=candidate,
                    created_at=created,
                    fate=PageFate.DELETED,
                    died_at=created.plus_days(rng.lognormal_days(900.0, 0.8)),
                )
            else:
                page = Page(path_query=candidate, created_at=created)
            site.add_page(page)
            if crawl_rate > 0:
                self._built.seeds.append(
                    CrawlSeed(
                        url=site.url_for(candidate),
                        available_from=self._discovery_time(page, rng),
                        rate_per_year=crawl_rate,
                    )
                )
