"""Dataset export/import — release the study data like the paper would.

Serialises a collected dataset (the link records) and, optionally, the
per-link archived-copy census to newline-delimited JSON and CSV, and
loads them back. The JSON round-trip is lossless for
:class:`~repro.dataset.records.LinkRecord`; CSV is the
spreadsheet-friendly view.
"""

from __future__ import annotations

import csv
import io
import json

from ..clock import SimTime
from ..errors import DatasetError
from .records import Dataset, LinkRecord

_JSON_FIELDS = (
    "url",
    "article_title",
    "posted_at",
    "marked_at",
    "marked_by",
    "site_ranking",
)

CSV_HEADER = (
    "url",
    "article_title",
    "posted_date",
    "marked_date",
    "marked_by",
    "site_ranking",
    "hostname",
    "domain",
)


def record_to_dict(record: LinkRecord) -> dict:
    """A JSON-safe dict for one record."""
    return {
        "url": record.url,
        "article_title": record.article_title,
        "posted_at": record.posted_at.days,
        "marked_at": record.marked_at.days,
        "marked_by": record.marked_by,
        "site_ranking": record.site_ranking,
    }


def record_from_dict(payload: dict) -> LinkRecord:
    """Inverse of :func:`record_to_dict`; validates field presence."""
    missing = [field for field in _JSON_FIELDS if field not in payload]
    if missing:
        raise DatasetError(f"record payload missing fields: {missing}")
    return LinkRecord(
        url=payload["url"],
        article_title=payload["article_title"],
        posted_at=SimTime(float(payload["posted_at"])),
        marked_at=SimTime(float(payload["marked_at"])),
        marked_by=payload["marked_by"],
        site_ranking=payload["site_ranking"],
    )


def dumps_jsonl(dataset: Dataset) -> str:
    """The dataset as newline-delimited JSON (one record per line),
    preceded by a metadata line."""
    lines = [
        json.dumps(
            {
                "kind": "repro-dataset",
                "version": 1,
                "description": dataset.description,
                "records": len(dataset),
            }
        )
    ]
    for record in dataset.records:
        lines.append(json.dumps(record_to_dict(record), sort_keys=True))
    return "\n".join(lines) + "\n"


def loads_jsonl(text: str) -> Dataset:
    """Inverse of :func:`dumps_jsonl`, with header validation."""
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines:
        raise DatasetError("empty dataset export")
    header = json.loads(lines[0])
    if header.get("kind") != "repro-dataset":
        raise DatasetError("not a repro dataset export")
    records = [record_from_dict(json.loads(line)) for line in lines[1:]]
    declared = header.get("records")
    if declared is not None and declared != len(records):
        raise DatasetError(
            f"export declares {declared} records but contains {len(records)}"
        )
    return Dataset(records=records, description=header.get("description", ""))


def dumps_csv(dataset: Dataset) -> str:
    """The dataset as CSV with derived hostname/domain columns."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(CSV_HEADER)
    for record in dataset.records:
        writer.writerow(
            [
                record.url,
                record.article_title,
                record.posted_at.isoformat(),
                record.marked_at.isoformat(),
                record.marked_by,
                record.site_ranking if record.site_ranking is not None else "",
                record.hostname,
                record.domain,
            ]
        )
    return buffer.getvalue()


def save_dataset(dataset: Dataset, path: str) -> None:
    """Write the dataset to ``path`` (.jsonl or .csv by extension)."""
    if path.endswith(".csv"):
        payload = dumps_csv(dataset)
    elif path.endswith(".jsonl"):
        payload = dumps_jsonl(dataset)
    else:
        raise DatasetError("path must end with .jsonl or .csv")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(payload)


def load_dataset(path: str) -> Dataset:
    """Read a ``.jsonl`` export back."""
    if not path.endswith(".jsonl"):
        raise DatasetError("only .jsonl exports can be loaded back")
    with open(path, "r", encoding="utf-8") as handle:
        return loads_jsonl(handle.read())
