"""Link records: what the collector knows about each studied link.

A :class:`LinkRecord` holds exactly the fields §2.4 extracts — URL,
article, date added, date marked, marker username — plus derived URL
structure (hostname, registrable domain, directory) that the analyses
group by. Nothing here comes from generator ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..clock import SimTime
from ..urls.parse import parse_url
from ..urls.psl import default_psl


@dataclass(frozen=True, slots=True)
class LinkRecord:
    """One permanently-dead link in the study dataset."""

    url: str
    article_title: str
    posted_at: SimTime
    marked_at: SimTime
    marked_by: str
    site_ranking: int | None = None

    @property
    def hostname(self) -> str:
        """Hostname per the paper's definition (lowercased, no port)."""
        return parse_url(self.url).host_lower

    @property
    def domain(self) -> str:
        """Registrable domain via the Public Suffix List."""
        return default_psl().registrable_domain(self.hostname)

    @property
    def directory(self) -> str:
        """URL prefix until the last '/'."""
        return parse_url(self.url).directory


@dataclass
class Dataset:
    """A collection of link records plus provenance."""

    records: list[LinkRecord] = field(default_factory=list)
    description: str = ""

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def urls(self) -> list[str]:
        """Every record's URL, in dataset order."""
        return [record.url for record in self.records]

    def domains(self) -> dict[str, int]:
        """URL count per registrable domain (Figure 3a's quantity)."""
        counts: dict[str, int] = {}
        for record in self.records:
            counts[record.domain] = counts.get(record.domain, 0) + 1
        return counts

    def hostnames(self) -> set[str]:
        """Distinct hostnames across the dataset."""
        return {record.hostname for record in self.records}

    def posting_years(self) -> list[float]:
        """Fractional posting year per record (Figure 3c's quantity)."""
        return [record.posted_at.fractional_year() for record in self.records]

    def rankings(self) -> list[int]:
        """Site rankings where known (Figure 3b's quantity)."""
        return [
            record.site_ranking
            for record in self.records
            if record.site_ranking is not None
        ]
