"""Universe planning: which sites exist, which links live where.

Planning is the first of three world-generation stages (plan → build →
replay). It decides, for every external link the synthetic Wikipedia
will ever carry:

- which site hosts it (domain sizes follow Figure 3a's power law);
- the site's *kind* (how the site, and therefore its dead URLs,
  behave — see :class:`SiteKind`);
- the link's *disposition* (how its individual lifecycle plays out —
  see :class:`Disposition`);
- when it is posted to Wikipedia (Figure 3c's profile).

Mixture weights live in :class:`~repro.dataset.worldgen.WorldConfig`;
the planner only enforces compatibility (e.g. a revived page needs a
site that stays up) and fills quotas deterministically from the named
RNG streams.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..clock import SimTime
from ..rng import RngRegistry
from . import profiles


class SiteKind(enum.Enum):
    """How a site behaves over time, especially towards dead URLs.

    Sites are not static: they redesign, switch CMSes, get abandoned,
    and get squatted. The kinds below are behaviour *timelines*; the
    combination of a timeline with IABot's check date and the study's
    probe date is what produces the paper's populations (a site that
    404s in 2018 and blanket-redirects in 2022 yields a marked link
    that "works" today).
    """

    HARD404 = "hard404"
    """Stays up; missing URLs always answer an honest 404."""

    REDIRECT_ERA = "redirect_era"
    """Stays up; for a few years in the past, missing URLs redirected
    to the homepage (a CMS phase), then back to honest 404s. Source of
    most of the §4.2 erroneous 3xx archived copies."""

    BECOMES_SOFT404 = "becomes_soft404"
    """Honest 404s until a late redesign; afterwards missing URLs
    return 200 with an error page (§3's soft-404s at study time)."""

    BECOMES_REDIRECT_HOME = "becomes_redirect_home"
    """Honest 404s until a late redesign; afterwards missing URLs
    redirect to the homepage."""

    BECOMES_REDIRECT_LOGIN = "becomes_redirect_login"
    """Honest 404s until the site put everything behind a login."""

    BECOMES_OFFSITE = "becomes_offsite"
    """Honest 404s until the brand was sold; afterwards everything
    redirects to an unrelated site (cf. baku2017.com -> goalku.com)."""

    ABANDONED = "abandoned"            # DNS registration lapses
    ABANDONED_PARKED = "abandoned_parked"  # ...and a squatter re-registers
    FLAKY = "flaky"                    # chronic connection timeouts
    GEO_403 = "geo_403"                # geo-blocked with an explicit 403
    GEO_TIMEOUT = "geo_timeout"        # geo-blocked by dropping connections
    OUTAGE = "outage"                  # long 503 outage late in life

    @property
    def stays_up(self) -> bool:
        """Whether the site keeps serving (something) through the
        study period."""
        return self in (
            SiteKind.HARD404,
            SiteKind.REDIRECT_ERA,
            SiteKind.BECOMES_SOFT404,
            SiteKind.BECOMES_REDIRECT_HOME,
            SiteKind.BECOMES_REDIRECT_LOGIN,
            SiteKind.BECOMES_OFFSITE,
        )

    @property
    def abandoned(self) -> bool:
        """Whether the site's DNS registration eventually lapses."""
        return self in (SiteKind.ABANDONED, SiteKind.ABANDONED_PARKED)


class Disposition(enum.Enum):
    """One link's lifecycle script."""

    STAYS_ALIVE = "stays_alive"
    """Never breaks. IABot leaves it alone; it pads the wiki with the
    realistic majority of working references."""

    DIES = "dies"
    """The generic broken link: the page is deleted (on sites that
    stay up) or the whole site goes away (on abandoned/impaired
    sites)."""

    MOVED_REDIRECT_LATER = "moved_redirect_later"
    """Page moves and errors for years; the site adds a redirect to
    the new URL only after IABot has marked the link. The §3
    "permanently dead links that work again" mechanism (79% of the
    functional ones redirect first)."""

    REVIVED = "revived"
    """Page is deleted, marked dead, then restored at the original URL
    (the §3 functional links that do not redirect)."""

    MOVED_PROMPT_REDIRECT = "moved_prompt_redirect"
    """Page moves early with a working redirect; archive captures show
    initial 3xx status, so IABot ignores them (§4.2). The redirect
    later stops working — the site dies, or a further restructuring
    drops it — leaving those valid redirect copies as the only
    record."""

    TYPO = "typo"
    """The posted URL never existed — a one-edit mangling of a real
    page's URL (§5.1 same-day-erroneous copies, §5.2 edit-distance
    typo detection)."""

    QUERY_DEEP = "query_deep"
    """A deep link with many query parameters that web-archive crawl
    frontiers refuse (§5.2's never-archived URLs), which then dies."""

    @property
    def dying(self) -> bool:
        """Whether the link eventually breaks."""
        return self is not Disposition.STAYS_ALIVE


#: Site kinds compatible with each special disposition.
_DISPOSITION_SITE_KINDS: dict[Disposition, tuple[SiteKind, ...]] = {
    Disposition.MOVED_REDIRECT_LATER: (SiteKind.HARD404, SiteKind.REDIRECT_ERA),
    Disposition.REVIVED: (SiteKind.HARD404, SiteKind.REDIRECT_ERA),
    Disposition.MOVED_PROMPT_REDIRECT: (
        SiteKind.ABANDONED,
        SiteKind.ABANDONED_PARKED,
        SiteKind.HARD404,
        SiteKind.REDIRECT_ERA,
    ),
    Disposition.TYPO: (SiteKind.HARD404, SiteKind.REDIRECT_ERA),
    Disposition.QUERY_DEEP: (
        SiteKind.HARD404,
        SiteKind.REDIRECT_ERA,
        SiteKind.ABANDONED,
    ),
    Disposition.STAYS_ALIVE: (
        SiteKind.HARD404,
        SiteKind.REDIRECT_ERA,
        SiteKind.BECOMES_SOFT404,
        SiteKind.BECOMES_REDIRECT_HOME,
        SiteKind.BECOMES_REDIRECT_LOGIN,
        SiteKind.BECOMES_OFFSITE,
    ),
}


@dataclass
class LinkPlan:
    """One planned external link (site assignment comes via the parent
    :class:`SitePlan`)."""

    index: int
    disposition: Disposition
    posted_at: SimTime
    url: str = ""                  # filled by the builder
    isolated_directory: bool = False  # QUERY_DEEP: no archived siblings


@dataclass
class SitePlan:
    """One planned site and the links it will host."""

    index: int
    kind: SiteKind
    ranking: int
    links: list[LinkPlan] = field(default_factory=list)
    obscure: bool = False  # never organically crawled
    domain_sibling_of: int | None = None
    """Index of an earlier site whose registrable domain this site
    shares (a different subdomain) — the paper's dataset has ~12% more
    hostnames than domains."""

    @property
    def max_posted(self) -> SimTime:
        """Latest posting instant among the site's links."""
        return max(link.posted_at for link in self.links)

    @property
    def min_posted(self) -> SimTime:
        """Earliest posting instant among the site's links."""
        return min(link.posted_at for link in self.links)


def plan_universe(config, rngs: RngRegistry) -> list[SitePlan]:
    """Produce the full site/link plan for a config.

    Deterministic given the registry's master seed.
    """
    site_rng = rngs.stream("plan.sites")
    link_rng = rngs.stream("plan.links")
    timing_rng = rngs.stream("plan.timing")

    # Whole-site impairments (flakiness, geo-blocks, outages) are a
    # small-site phenomenon; a large domain drawing one would swing the
    # dataset composition wildly between seeds.
    small_site_only = (
        SiteKind.FLAKY,
        SiteKind.GEO_403,
        SiteKind.GEO_TIMEOUT,
        SiteKind.OUTAGE,
        SiteKind.ABANDONED_PARKED,
    )
    large_site_weights = tuple(
        (kind, weight)
        for kind, weight in config.site_kind_weights
        if kind not in small_site_only
    )

    # 1. Domain sizes and site kinds.
    plans: list[SitePlan] = []
    remaining = config.n_links
    link_index = 0
    while remaining > 0:
        size = profiles.draw_domain_size(site_rng, remaining)
        weights = (
            large_site_weights if size > 12 else config.site_kind_weights
        )
        kind = site_rng.weighted_choice(weights)
        sibling_of = None
        if plans and site_rng.chance(config.shared_domain_prob):
            sibling_of = site_rng.randrange(len(plans))
        plan = SitePlan(
            index=len(plans),
            kind=kind,
            ranking=profiles.draw_site_ranking(site_rng),
            obscure=site_rng.chance(config.obscure_site_prob),
            domain_sibling_of=sibling_of,
        )
        for _ in range(size):
            plan.links.append(
                LinkPlan(
                    index=link_index,
                    disposition=Disposition.DIES,
                    posted_at=profiles.draw_posting_time(
                        timing_rng, config.last_posting
                    ),
                )
            )
            link_index += 1
        plans.append(plan)
        remaining -= size

    # 2. Fill special-disposition quotas from compatible sites.
    dying_total = round(config.n_links * (1.0 - config.stays_alive_frac))
    quotas: list[tuple[Disposition, int]] = [
        (Disposition.TYPO, round(dying_total * config.typo_frac)),
        (
            Disposition.MOVED_REDIRECT_LATER,
            round(dying_total * config.moved_redirect_later_frac),
        ),
        (Disposition.REVIVED, round(dying_total * config.revived_frac)),
        (
            Disposition.MOVED_PROMPT_REDIRECT,
            round(dying_total * config.moved_prompt_redirect_frac),
        ),
        (Disposition.QUERY_DEEP, round(dying_total * config.query_deep_frac)),
        (Disposition.STAYS_ALIVE, config.n_links - dying_total),
    ]
    assignable = [
        (plan, link) for plan in plans for link in plan.links
    ]
    link_rng.shuffle(assignable)
    cursor = 0
    for disposition, quota in quotas:
        compatible_kinds = _DISPOSITION_SITE_KINDS[disposition]
        filled = 0
        index = 0
        while filled < quota and index < len(assignable):
            plan, link = assignable[index]
            if (
                link.disposition is Disposition.DIES
                and plan.kind in compatible_kinds
            ):
                link.disposition = disposition
                if disposition is Disposition.QUERY_DEEP:
                    link.isolated_directory = link_rng.chance(
                        config.isolated_directory_prob
                    )
                filled += 1
            index += 1
        cursor += filled

    return plans
