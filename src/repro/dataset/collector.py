"""The §2.4 data collection pipeline.

Reproduces the paper's three collection steps against the simulated
Wikipedia:

1. fetch the category "Articles with permanently dead external links"
   (alphabetically ordered) and parse the current revision of each
   article, extracting URLs marked permanently dead;
2. fetch each article's full edit history and mine, per URL, the date
   it was added, the date it was marked, and the marking username;
3. join in public Alexa-style site rankings.

Each article's history is walked exactly once (all URLs mined in the
same pass), since parsing old revisions dominates collection cost.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..clock import SimTime
from ..wiki.api import WikiApi
from ..wiki.encyclopedia import Encyclopedia, PERMADEAD_CATEGORY
from ..urls.parse import parse_url
from ..errors import UrlError
from .records import Dataset, LinkRecord


@dataclass(frozen=True, slots=True)
class CollectedLink:
    """One permanently dead URL with its mined history."""

    url: str
    article_title: str
    posted_at: SimTime
    marked_at: SimTime
    marked_by: str


class Collector:
    """Collects permanently dead links from an encyclopedia."""

    def __init__(
        self,
        encyclopedia: Encyclopedia,
        site_rankings: dict[str, int] | None = None,
    ) -> None:
        self._api = WikiApi(encyclopedia)
        self._rankings = site_rankings if site_rankings is not None else {}

    @property
    def api_requests(self) -> int:
        """MediaWiki-style API requests issued so far."""
        return self._api.request_count

    def category_titles(self) -> tuple[str, ...]:
        """The category listing, alphabetical, drained through the
        paginated categorymembers endpoint (as the paper crawled it)."""
        return self._api.all_category_members(PERMADEAD_CATEGORY)

    def collect(self, article_limit: int | None = None) -> list[CollectedLink]:
        """Crawl the first ``article_limit`` category articles (or all).

        The paper's primary dataset crawls the first 10,000 articles in
        alphabetical order; its representativeness check uses all of
        them (``article_limit=None``).
        """
        titles = self.category_titles()
        if article_limit is not None:
            titles = titles[:article_limit]
        collected: list[CollectedLink] = []
        seen_urls: set[str] = set()
        for title in titles:
            for link in self._mine_article(title):
                if link.url in seen_urls:
                    continue
                seen_urls.add(link.url)
                collected.append(link)
        return collected

    def to_dataset(
        self, collected: list[CollectedLink], description: str = ""
    ) -> Dataset:
        """Attach rankings and wrap as a :class:`Dataset`."""
        records = []
        for link in collected:
            ranking = None
            try:
                hostname = parse_url(link.url).host_lower
            except UrlError:
                hostname = ""
            if hostname:
                ranking = self._rankings.get(hostname)
            records.append(
                LinkRecord(
                    url=link.url,
                    article_title=link.article_title,
                    posted_at=link.posted_at,
                    marked_at=link.marked_at,
                    marked_by=link.marked_by,
                    site_ranking=ranking,
                )
            )
        return Dataset(records=records, description=description)

    # -- history mining ----------------------------------------------------------

    def mine_article(self, title: str) -> list[CollectedLink]:
        """Mine one article's permanently dead links (public, for the
        live pipeline's per-article re-mining cache)."""
        return self._mine_article(title)

    def _mine_article(self, title: str) -> list[CollectedLink]:
        """All permanently dead URLs in the article's current revision,
        with dates mined from one pass over the history."""
        history = self._api.all_revisions(title)
        current = history[-1].link_refs()
        wanted = {ref.url for ref in current if ref.is_permanently_dead}
        if not wanted:
            return []
        first_seen: dict[str, SimTime] = {}
        first_marked: dict[str, tuple[SimTime, str]] = {}
        for revision in history:
            remaining_seen = wanted - first_seen.keys()
            remaining_marked = wanted - first_marked.keys()
            if not remaining_seen and not remaining_marked:
                break
            for ref in revision.link_refs():
                if ref.url not in wanted:
                    continue
                if ref.url not in first_seen:
                    first_seen[ref.url] = revision.timestamp
                if ref.is_marked_dead and ref.url not in first_marked:
                    first_marked[ref.url] = (revision.timestamp, revision.user)
        links = []
        for url in wanted:
            if url not in first_seen or url not in first_marked:
                continue  # malformed history; skip defensively
            marked_at, marked_by = first_marked[url]
            links.append(
                CollectedLink(
                    url=url,
                    article_title=title,
                    posted_at=first_seen[url],
                    marked_at=marked_at,
                    marked_by=marked_by,
                )
            )
        links.sort(key=lambda link: link.url)
        return links
