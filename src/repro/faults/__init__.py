"""Deterministic, seeded fault injection for the simulated backends.

The paper's headline §4.1 finding — 11% of "permanently dead" links
had archived copies IABot never saw — is *caused* by transient
infrastructure failure: availability lookups timing out under load.
This package makes that failure regime a first-class, replayable axis
of the simulation instead of a single hardcoded timeout:

- :class:`FaultPlan` / :class:`FaultSpec` — declarative, seeded
  description of what breaks (DNS SERVFAILs, connection timeouts,
  archive 5xx bursts, latency spikes, rate-limit windows), how often,
  and how persistently;
- the injectors (:class:`FaultyDns`, :class:`FaultyOrigin`,
  :class:`FaultyCdxApi`, :class:`FaultyAvailabilityApi`) — wrappers
  presenting the exact interfaces of the components they sabotage;
- composition helpers (:func:`faulty_fetcher`, :func:`faulty_cdx`,
  :func:`faulty_availability`) — one-call wiring for studies.

Paired with :mod:`repro.retry`, the invariant the differential test
tier enforces: a transient-only plan plus a retry budget of
``plan.required_retries()`` yields a study report byte-identical to
the fault-free run; with retries disabled, degradation is confined to
the Figure-4 outcome buckets the faults map onto.
"""

from .inject import (
    FaultChannel,
    FaultyAvailabilityApi,
    FaultyCdxApi,
    FaultyDns,
    FaultyOrigin,
    faulty_availability,
    faulty_cdx,
    faulty_fetcher,
)
from .plan import FaultPlan, FaultPlanError, FaultSpec

__all__ = [
    "FaultChannel",
    "FaultPlan",
    "FaultPlanError",
    "FaultSpec",
    "FaultyAvailabilityApi",
    "FaultyCdxApi",
    "FaultyDns",
    "FaultyOrigin",
    "faulty_availability",
    "faulty_cdx",
    "faulty_fetcher",
]
