"""Fault injectors: the simulated backends, wrapped and sabotaged.

Each wrapper presents the *same* interface as the component it wraps —
:class:`FaultyDns` resolves like a :class:`~repro.net.dns.DnsTable`,
:class:`FaultyOrigin` serves like an
:class:`~repro.net.fetch.OriginServer`, :class:`FaultyCdxApi` and
:class:`FaultyAvailabilityApi` answer like the archive APIs — so the
whole study pipeline runs unmodified on top of them.

Determinism is the load-bearing design decision. A fault decision is a
pure function of ``(plan seed, channel name, operation key, attempt
index)``: the channel derives a named stream seed via
:func:`repro.rng.derive_seed` (names like ``faults.dns``), then hashes
the operation key through it. No injector consults shared sequential
RNG state, so the fault pattern a key experiences is independent of
how many other operations ran before it or which worker process runs
it — which is what lets the differential harness compare serial,
sharded, retried, and retry-less runs of the same plan.

*Transience* is per key: a faulted key fails its first ``depth``
attempts (``depth`` drawn in ``1..max_repeats``) and then clears, so a
retry budget of ``plan.required_retries()`` provably masks every
transient channel. Attempt indices are tracked per injector instance;
forked workers start fresh, which keeps first-contact decisions
identical across process topologies.
"""

from __future__ import annotations

import hashlib

from ..archive.availability import AvailabilityApi, AvailabilityResult
from ..archive.cdx import CdxApi, CdxQuery
from ..archive.snapshot import Snapshot
from ..backends.core import FaultGate, FaultLayer, Op
from ..clock import SimTime
from ..errors import (
    ArchiveTimeout,
    ArchiveUnavailable,
    CdxRateLimited,
    DnsServfail,
    TransientConnectionTimeout,
)
from ..net.dns import DnsRecord, DnsTable
from ..net.fetch import DEFAULT_MAX_REDIRECTS, Fetcher, OriginServer
from ..net.http import HttpRequest, HttpResponse
from ..retry import RetryPolicy
from ..rng import derive_seed
from .plan import FaultPlan, FaultSpec

_UNIT_DENOM = float(2**64)


class FaultChannel:
    """Deterministic per-key fault decisions for one channel.

    ``should_fault(key)`` is called once per attempt at the wrapped
    operation; it bumps the key's attempt counter and reports whether
    this attempt is sabotaged. ``injected`` counts faults actually
    raised (for accounting and tests).
    """

    def __init__(self, plan_seed: int, name: str, spec: FaultSpec) -> None:
        self.name = name
        self.spec = spec
        self._stream_seed = derive_seed(plan_seed, f"faults.{name}")
        self._attempts: dict[str, int] = {}
        self.injected = 0

    def _unit(self, key: str, salt: str) -> float:
        digest = hashlib.sha256(
            f"{self._stream_seed}:{salt}:{key}".encode("utf-8")
        ).digest()
        return int.from_bytes(digest[:8], "big") / _UNIT_DENOM

    def depth(self, key: str) -> int:
        """How many leading attempts at ``key`` this channel faults.

        ``0`` for unfaulted keys; effectively unbounded for permanent
        channels. Pure — safe to call for prediction in tests.
        """
        if not self.spec.active or self._unit(key, "hit") >= self.spec.rate:
            return 0
        if self.spec.permanent:
            return 1 << 30
        span = self.spec.max_repeats
        return 1 + min(int(self._unit(key, "depth") * span), span - 1)

    def should_fault(self, key: str) -> bool:
        """Record one attempt at ``key``; True when it must fail."""
        if not self.spec.active:
            return False
        attempt = self._attempts.get(key, 0)
        self._attempts[key] = attempt + 1
        if attempt < self.depth(key):
            self.injected += 1
            return True
        return False


class FaultyDns:
    """A DNS table whose resolver transiently SERVFAILs.

    Fault keys are the hostname being resolved, so every URL on a
    flagged host shares the blip — like a real resolver cache entry
    going bad — and the decision replays identically wherever the
    first lookup happens.
    """

    def __init__(self, inner: DnsTable, plan: FaultPlan) -> None:
        self._inner = inner
        self.channel = FaultChannel(plan.seed, "dns", plan.dns_servfail)
        self._stack = FaultLayer(
            Op("dns.resolve", lambda req: inner.resolve(req[0], req[1])),
            gates=(
                FaultGate(
                    channel=self.channel,
                    key_fn=lambda req: req[0].lower(),
                    exc_fn=lambda req: DnsServfail(req[0]),
                ),
            ),
        )

    def resolve(self, hostname: str, at: SimTime) -> DnsRecord:
        """Resolve like the wrapped table, unless sabotaged."""
        return self._stack.call((hostname, at))

    def hostnames(self) -> list[str]:
        return self._inner.hostnames()

    def records_for(self, hostname: str) -> tuple[DnsRecord, ...]:
        return self._inner.records_for(hostname)


class FaultyOrigin:
    """An origin fabric whose connections transiently time out.

    Fault keys are the requested URL string, so one flaky page does
    not condemn its whole site and decisions replay identically
    whichever worker fetches the page first.
    """

    def __init__(self, inner: OriginServer, plan: FaultPlan) -> None:
        self._inner = inner
        self.channel = FaultChannel(plan.seed, "connect", plan.connect_timeout)
        self._stack = FaultLayer(
            Op("origin.handle", lambda req: inner.handle(*req)),
            gates=(
                FaultGate(
                    channel=self.channel,
                    key_fn=lambda req: str(req[1].url),
                    exc_fn=lambda req: TransientConnectionTimeout(
                        req[1].url.host_lower
                    ),
                ),
            ),
        )

    def handle(
        self, address: str, request: HttpRequest, at: SimTime
    ) -> HttpResponse:
        """Serve like the wrapped fabric, unless sabotaged."""
        return self._stack.call((address, request, at))


def _cdx_fault_key(req: tuple[str, CdxQuery]) -> str:
    """Channel key for one CDX operation (``query:…`` / ``urls:…``)."""
    return f"{req[0]}:{req[1]!r}"


class FaultyCdxApi:
    """A CDX server with 5xx bursts and rate-limit windows.

    Presents the full read interface (``query``, ``archived_urls``,
    ``query_count``), so the memoizing
    :class:`~repro.backends.stacks.CdxBackend` — which owns the retry
    policy — stacks directly on top.
    """

    def __init__(self, inner: CdxApi, plan: FaultPlan) -> None:
        self._inner = inner
        self._retry_after_ms = plan.cdx_retry_after_ms
        self.rate_limit_channel = FaultChannel(
            plan.seed, "cdx.rate_limit", plan.cdx_rate_limit
        )
        self.error_channel = FaultChannel(plan.seed, "cdx.error", plan.cdx_error)
        # Gate order matters: the rate-limit channel's attempt counter
        # always advances, the error channel's only when no rate-limit
        # fired — same short-circuit the hand-written _gate had.
        key_fn = _cdx_fault_key
        self._stack = FaultLayer(
            Op(
                "cdx",
                lambda req: (
                    inner.query(req[1])
                    if req[0] == "query"
                    else inner.archived_urls(req[1])
                ),
            ),
            gates=(
                FaultGate(
                    channel=self.rate_limit_channel,
                    key_fn=key_fn,
                    exc_fn=lambda req: CdxRateLimited(
                        key_fn(req), retry_after_ms=self._retry_after_ms
                    ),
                ),
                FaultGate(
                    channel=self.error_channel,
                    key_fn=key_fn,
                    exc_fn=lambda req: ArchiveUnavailable(key_fn(req)),
                ),
            ),
        )

    @property
    def query_count(self) -> int:
        """Queries answered by the wrapped API (faulted attempts excluded)."""
        return self._inner.query_count

    @property
    def injected(self) -> int:
        """Total faults raised across both channels."""
        return self.rate_limit_channel.injected + self.error_channel.injected

    def query(self, request: CdxQuery) -> tuple[Snapshot, ...]:
        """Rows from the wrapped API, gated by the fault channels."""
        return self._stack.call(("query", request))

    def archived_urls(self, request: CdxQuery) -> tuple[str, ...]:
        """Collapsed URLs from the wrapped API, gated by the channels."""
        return self._stack.call(("urls", request))


class FaultyAvailabilityApi:
    """An Availability API with 5xx bursts and latency spikes.

    A spiked lookup pays ``plan.availability_spike_ms`` on top of the
    policy's own latency draw; bounded callers then see
    :class:`~repro.errors.ArchiveTimeout` exactly as they would under
    real load. Timeout enforcement moves into this wrapper (the inner
    lookup runs patient) so the spike participates in the comparison.
    """

    def __init__(self, inner: AvailabilityApi, plan: FaultPlan) -> None:
        self._inner = inner
        self._spike_ms = plan.availability_spike_ms
        self.error_channel = FaultChannel(
            plan.seed, "availability.error", plan.availability_error
        )
        self.spike_channel = FaultChannel(
            plan.seed, "availability.spike", plan.availability_spike
        )
        self._timeouts = 0

    @property
    def lookup_count(self) -> int:
        """Lookups that reached the wrapped API."""
        return self._inner.lookup_count

    @property
    def timeout_count(self) -> int:
        """Bounded lookups this wrapper timed out (spiked or not)."""
        return self._timeouts

    @property
    def injected(self) -> int:
        """Total faults raised across both channels."""
        return self.error_channel.injected + self.spike_channel.injected

    @property
    def policy(self):
        """The wrapped API's latency policy (read-through)."""
        return self._inner.policy

    def lookup(
        self,
        url: str,
        around: SimTime,
        timeout_ms: float | None = None,
        before: SimTime | None = None,
    ) -> AvailabilityResult:
        """Look up like the wrapped API, spiked and gated."""
        if self.error_channel.should_fault(url):
            raise ArchiveUnavailable(url)
        spike = (
            self._spike_ms if self.spike_channel.should_fault(url) else 0.0
        )
        result = self._inner.lookup(url, around, timeout_ms=None, before=before)
        latency = result.latency_ms + spike
        if timeout_ms is not None and latency > timeout_ms:
            self._timeouts += 1
            raise ArchiveTimeout(url, timeout_ms)
        return AvailabilityResult(snapshot=result.snapshot, latency_ms=latency)


# -- composition helpers -----------------------------------------------------------


def faulty_fetcher(
    web,
    plan: FaultPlan,
    retry_policy: RetryPolicy | None = None,
    max_redirects: int = DEFAULT_MAX_REDIRECTS,
) -> Fetcher:
    """A live-web GET client whose DNS and connections misbehave.

    ``web`` is anything with a ``dns`` table that also implements the
    origin protocol (in practice :class:`~repro.web.world.LiveWeb`).
    The returned fetcher owns its injector state, so two fetchers from
    the same plan replay the same faults independently.
    """
    return Fetcher(
        FaultyDns(web.dns, plan),
        FaultyOrigin(web, plan),
        max_redirects=max_redirects,
        retry_policy=retry_policy,
    )


def faulty_cdx(cdx: CdxApi, plan: FaultPlan) -> FaultyCdxApi | CdxApi:
    """Wrap a CDX API under ``plan``, or pass it through untouched.

    Returns the raw API when no CDX channel is active, so callers can
    apply a plan unconditionally without paying a wrapper layer.
    """
    return FaultyCdxApi(cdx, plan) if plan.cdx_active else cdx


def faulty_availability(
    api: AvailabilityApi, plan: FaultPlan
) -> FaultyAvailabilityApi | AvailabilityApi:
    """Wrap an Availability API under ``plan``, or pass it through."""
    return FaultyAvailabilityApi(api, plan) if plan.availability_active else api
