"""Declarative fault plans: what breaks, how often, how persistently.

A :class:`FaultPlan` is the complete, replayable description of one
chaos regime: per-channel :class:`FaultSpec` rates for transient DNS
SERVFAILs and connection timeouts on the live web, and 5xx bursts,
latency spikes, and rate-limit windows on the archive APIs. Every
decision the injectors make is a pure function of the plan's seed and
the operation's identity (see :mod:`repro.faults.inject`), so two runs
under the same plan inject byte-identical faults — the property the
differential test harness is built on.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

from ..errors import ReproError


class FaultPlanError(ReproError):
    """Raised when a fault plan is internally inconsistent."""


@dataclass(frozen=True)
class FaultSpec:
    """One fault channel's behaviour.

    Attributes:
        rate: probability (per operation key) that the key is faulted
            at all. ``0`` disables the channel.
        max_repeats: for a faulted key, the fault repeats on its first
            1..max_repeats attempts (depth drawn deterministically per
            key), then clears — the definition of *transient* here. A
            retry budget of at least ``max_repeats`` fully masks the
            channel.
        permanent: the fault never clears for a faulted key, however
            often it is retried (an outage, not a blip). Permanent
            channels are what make a plan non-transient.
    """

    rate: float = 0.0
    max_repeats: int = 2
    permanent: bool = False

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise FaultPlanError(f"fault rate must be in [0, 1], got {self.rate}")
        if self.max_repeats < 1:
            raise FaultPlanError("max_repeats must be >= 1")

    @property
    def active(self) -> bool:
        """Whether this channel can ever fire."""
        return self.rate > 0.0


_OFF = FaultSpec(rate=0.0)


@dataclass(frozen=True)
class FaultPlan:
    """Seeded chaos configuration for every injectable backend.

    Channels:
        dns_servfail: transient resolver failures during live fetches.
        connect_timeout: transient connection timeouts during live
            fetches.
        availability_error: Wayback Availability API 5xx responses.
        availability_spike: latency spikes added to availability
            lookups (``availability_spike_ms`` each), which push
            bounded lookups over their caller's timeout.
        cdx_error: CDX server 5xx responses.
        cdx_rate_limit: CDX rate-limit windows (HTTP 429 carrying
            ``cdx_retry_after_ms``).
    """

    seed: int = 0
    dns_servfail: FaultSpec = field(default_factory=lambda: _OFF)
    connect_timeout: FaultSpec = field(default_factory=lambda: _OFF)
    availability_error: FaultSpec = field(default_factory=lambda: _OFF)
    availability_spike: FaultSpec = field(default_factory=lambda: _OFF)
    availability_spike_ms: float = 30_000.0
    cdx_error: FaultSpec = field(default_factory=lambda: _OFF)
    cdx_rate_limit: FaultSpec = field(default_factory=lambda: _OFF)
    cdx_retry_after_ms: float = 1_000.0

    # -- introspection -----------------------------------------------------------

    def specs(self) -> dict[str, FaultSpec]:
        """Every channel spec by name, active or not."""
        return {
            f.name: getattr(self, f.name)
            for f in fields(self)
            if isinstance(getattr(self, f.name), FaultSpec)
        }

    @property
    def active(self) -> bool:
        """Whether any channel can fire under this plan."""
        return any(spec.active for spec in self.specs().values())

    @property
    def net_active(self) -> bool:
        """Whether any live-web (DNS/connect) channel can fire."""
        return self.dns_servfail.active or self.connect_timeout.active

    @property
    def cdx_active(self) -> bool:
        """Whether any CDX channel can fire."""
        return self.cdx_error.active or self.cdx_rate_limit.active

    @property
    def availability_active(self) -> bool:
        """Whether any availability channel can fire."""
        return self.availability_error.active or self.availability_spike.active

    @property
    def transient_only(self) -> bool:
        """Whether every active channel eventually clears.

        Transient-only plans are the masking regime: with a deep
        enough retry budget the study report is provably identical to
        a fault-free run.
        """
        return not any(
            spec.permanent for spec in self.specs().values() if spec.active
        )

    def required_retries(self) -> int:
        """The retry depth that fully masks this plan's transients.

        Fetch operations face DNS and connect faults in *separate*
        retry loops, so their depths do not stack; one CDX query can
        hit a rate-limit window and then a 5xx burst inside a single
        retried call, so those depths do.
        """
        transient = [
            spec
            for spec in self.specs().values()
            if spec.active and not spec.permanent
        ]
        if not transient:
            return 0
        per_call = [
            self.dns_servfail.max_repeats if self.dns_servfail.active else 0,
            self.connect_timeout.max_repeats if self.connect_timeout.active else 0,
            (self.cdx_error.max_repeats if self.cdx_error.active else 0)
            + (self.cdx_rate_limit.max_repeats if self.cdx_rate_limit.active else 0),
            (self.availability_error.max_repeats
             if self.availability_error.active else 0)
            + (self.availability_spike.max_repeats
               if self.availability_spike.active else 0),
        ]
        return max(per_call)

    def describe(self) -> str:
        """One-line human-readable digest (for logs and reports)."""
        parts = [
            f"{name}={spec.rate:g}" + ("!" if spec.permanent else "")
            for name, spec in self.specs().items()
            if spec.active
        ]
        body = ", ".join(parts) if parts else "no active channels"
        return f"FaultPlan(seed={self.seed}: {body})"

    # -- canned regimes ----------------------------------------------------------

    @classmethod
    def transient_net(
        cls, rate: float, seed: int = 0, max_repeats: int = 2
    ) -> "FaultPlan":
        """Transient DNS + connect faults only (the Figure-4 regime)."""
        spec = FaultSpec(rate=rate, max_repeats=max_repeats)
        return cls(seed=seed, dns_servfail=spec, connect_timeout=spec)

    @classmethod
    def transient_archive(
        cls, rate: float, seed: int = 0, max_repeats: int = 2
    ) -> "FaultPlan":
        """Transient CDX 5xx + rate-limit faults only."""
        spec = FaultSpec(rate=rate, max_repeats=max_repeats)
        return cls(seed=seed, cdx_error=spec, cdx_rate_limit=spec)

    @classmethod
    def transient_everywhere(
        cls, rate: float, seed: int = 0, max_repeats: int = 2
    ) -> "FaultPlan":
        """Transient faults on every study-facing channel."""
        spec = FaultSpec(rate=rate, max_repeats=max_repeats)
        return cls(
            seed=seed,
            dns_servfail=spec,
            connect_timeout=spec,
            cdx_error=spec,
            cdx_rate_limit=spec,
        )
