"""Simulated time for the measurement study.

The paper's analysis is fundamentally temporal: links are added to
Wikipedia, stop working, get crawled by the Wayback Machine, and are
marked permanently dead — all at different points over a ~20-year span.
We model time as **days since 2000-01-01** (the simulation epoch),
stored as a float so sub-day ordering (e.g. "archived the same day the
link was posted, but after it broke") is expressible.

:class:`SimTime` is an immutable value type; :class:`SimClock` is a
monotonic clock that simulation components share.
"""

from __future__ import annotations

import datetime as _dt
import functools
from dataclasses import dataclass

from .errors import ClockError

#: The calendar date corresponding to simulated time zero.
EPOCH = _dt.date(2000, 1, 1)

_DAYS_PER_YEAR = 365.2425


@functools.total_ordering
@dataclass(frozen=True, slots=True)
class SimTime:
    """A point in simulated time, measured in days since :data:`EPOCH`."""

    days: float

    def __post_init__(self) -> None:
        if not isinstance(self.days, (int, float)):
            raise ClockError(f"SimTime days must be numeric, got {type(self.days)!r}")
        object.__setattr__(self, "days", float(self.days))

    # -- construction helpers -------------------------------------------------

    @classmethod
    def from_date(cls, date: _dt.date) -> "SimTime":
        """Build a SimTime from a calendar date (midnight)."""
        return cls(float((date - EPOCH).days))

    @classmethod
    def from_ymd(cls, year: int, month: int, day: int = 1) -> "SimTime":
        """Build a SimTime from year/month/day integers."""
        return cls.from_date(_dt.date(year, month, day))

    @classmethod
    def from_year(cls, year: float) -> "SimTime":
        """Build a SimTime from a (possibly fractional) calendar year."""
        whole = int(year)
        frac = year - whole
        start = cls.from_date(_dt.date(whole, 1, 1))
        return cls(start.days + frac * _DAYS_PER_YEAR)

    # -- conversions -----------------------------------------------------------

    def to_date(self) -> _dt.date:
        """The calendar date containing this instant."""
        return EPOCH + _dt.timedelta(days=int(self.days))

    @property
    def year(self) -> int:
        """Calendar year of this instant."""
        return self.to_date().year

    def fractional_year(self) -> float:
        """Calendar year as a float, for plotting CDFs over time."""
        date = self.to_date()
        start = SimTime.from_date(_dt.date(date.year, 1, 1))
        return date.year + (self.days - start.days) / _DAYS_PER_YEAR

    def isoformat(self) -> str:
        """ISO date string of the day containing this instant."""
        return self.to_date().isoformat()

    # -- arithmetic ------------------------------------------------------------

    def plus_days(self, days: float) -> "SimTime":
        """A new instant ``days`` later (negative moves earlier)."""
        return SimTime(self.days + days)

    def minus_days(self, days: float) -> "SimTime":
        """A new instant ``days`` earlier."""
        return SimTime(self.days - days)

    def days_until(self, other: "SimTime") -> float:
        """Signed number of days from this instant to ``other``."""
        return other.days - self.days

    def days_since(self, other: "SimTime") -> float:
        """Signed number of days elapsed since ``other``."""
        return self.days - other.days

    def same_day(self, other: "SimTime") -> bool:
        """Whether both instants fall on the same calendar day."""
        return int(self.days) == int(other.days)

    # -- ordering ---------------------------------------------------------------

    def __lt__(self, other: object) -> bool:
        if not isinstance(other, SimTime):
            return NotImplemented
        return self.days < other.days

    def __repr__(self) -> str:
        return f"SimTime({self.days:.3f}, {self.isoformat()})"


#: Convenient aliases used throughout the simulation.
STUDY_TIME = SimTime.from_ymd(2022, 3, 15)
RANDOM_SAMPLE_TIME = SimTime.from_ymd(2022, 9, 15)
WAYBACK_START = SimTime.from_ymd(2001, 10, 1)
WIKIPEDIA_START = SimTime.from_ymd(2004, 1, 1)
WNRT_START = SimTime.from_ymd(2013, 1, 1)
EVENTSTREAM_START = SimTime.from_ymd(2018, 6, 1)


class SimClock:
    """A monotonic simulated clock shared by simulation components.

    The clock only moves forward; attempting to rewind raises
    :class:`~repro.errors.ClockError`. Components that need "what time
    is it" semantics (bots, crawlers) hold a reference to the clock,
    while pure functions take an explicit ``at: SimTime`` argument.
    """

    def __init__(self, start: SimTime | None = None) -> None:
        self._now = start if start is not None else SimTime(0.0)

    @property
    def now(self) -> SimTime:
        """The current simulated instant."""
        return self._now

    def advance(self, days: float) -> SimTime:
        """Move the clock forward by ``days`` and return the new instant."""
        if days < 0:
            raise ClockError(f"cannot advance clock by negative days ({days})")
        self._now = self._now.plus_days(days)
        return self._now

    def advance_to(self, instant: SimTime) -> SimTime:
        """Move the clock forward to ``instant``.

        Raises :class:`~repro.errors.ClockError` if ``instant`` is in
        the past, because simulation components assume events are
        processed in order.
        """
        if instant < self._now:
            raise ClockError(
                f"cannot rewind clock from {self._now} to {instant}"
            )
        self._now = instant
        return self._now

    def __repr__(self) -> str:
        return f"SimClock(now={self._now})"
