"""The encyclopedia: all articles, categories, and the event stream.

The category the paper crawls — "Articles with permanently dead
external links" — is not stored anywhere on the real Wikipedia either;
it is *derived* from article wikitext (a ``{{dead link}}`` annotation
with a bot attribution files the article there). We derive it the same
way, with an incremental cache maintained on every edit.
"""

from __future__ import annotations

from ..clock import SimTime
from ..errors import ArticleNotFound, WikiError
from .article import Article, Revision
from .events import (
    EventLog,
    LinkMarkedDeadEvent,
    LinkPostedEvent,
    LinkRemovedEvent,
)

#: The category listing the paper crawled in March 2022 [31].
PERMADEAD_CATEGORY = "Articles with permanently dead external links"


class Encyclopedia:
    """Title-indexed articles with derived categories and link events."""

    def __init__(self) -> None:
        self._articles: dict[str, Article] = {}
        self._permadead_members: set[str] = set()
        self.events = EventLog()

    # -- article management -----------------------------------------------------

    def create_article(
        self, title: str, at: SimTime, user: str, wikitext: str
    ) -> Article:
        """Create an article with its first revision."""
        if title in self._articles:
            raise WikiError(f"article {title!r} already exists")
        article = Article(title=title)
        self._articles[title] = article
        self._apply_edit(article, at, user, wikitext, comment="created page")
        return article

    def edit_article(
        self, title: str, at: SimTime, user: str, wikitext: str, comment: str = ""
    ) -> Revision:
        """Append a revision to an existing article."""
        article = self.article(title)
        return self._apply_edit(article, at, user, wikitext, comment)

    def article(self, title: str) -> Article:
        """Look up an article by exact title."""
        try:
            return self._articles[title]
        except KeyError:
            raise ArticleNotFound(title) from None

    def titles(self) -> tuple[str, ...]:
        """All article titles in alphabetical order (the order the
        category listing presents them in, which §2.4 relies on)."""
        return tuple(sorted(self._articles))

    def __len__(self) -> int:
        return len(self._articles)

    # -- categories ----------------------------------------------------------------

    def articles_in_category(self, category: str) -> tuple[str, ...]:
        """Alphabetical titles of category members.

        Only the permanently-dead-links category is materialised; it is
        the only one the study reads.
        """
        if category != PERMADEAD_CATEGORY:
            raise WikiError(f"unknown category {category!r}")
        return tuple(sorted(self._permadead_members))

    # -- internals -------------------------------------------------------------------

    def _apply_edit(
        self, article: Article, at: SimTime, user: str, wikitext: str, comment: str
    ) -> Revision:
        previous_refs = (
            article.latest.link_refs() if article.revisions else []
        )
        previous_urls = {ref.url for ref in previous_refs}
        previously_marked = {
            ref.url for ref in previous_refs if ref.is_marked_dead
        }
        revision = article.edit(at, user, wikitext, comment)
        current_urls: set[str] = set()
        newly_marked: list[str] = []
        for ref in revision.link_refs():
            if ref.url not in previous_urls:
                self.events.append(
                    LinkPostedEvent(
                        url=ref.url, article_title=article.title, posted_at=at
                    )
                )
            if (
                ref.is_marked_dead
                and ref.url not in previously_marked
                and ref.url not in newly_marked
            ):
                newly_marked.append(ref.url)
            current_urls.add(ref.url)
        # Mark events after all posts of the edit: a URL posted already
        # annotated yields posted-then-marked, in that order.
        for url in newly_marked:
            self.events.append(
                LinkMarkedDeadEvent(
                    url=url,
                    article_title=article.title,
                    marked_at=at,
                    marked_by=user,
                )
            )
        for url in sorted(previous_urls - current_urls):
            self.events.append(
                LinkRemovedEvent(
                    url=url, article_title=article.title, removed_at=at
                )
            )
        self._refresh_category(article)
        return revision

    def _refresh_category(self, article: Article) -> None:
        # Any user's {{dead link}} annotation files the article here
        # (§2.4: "any Wikipedia user can annotate any link"); filtering
        # to IABot-marked links happens later, via history mining.
        is_member = any(
            ref.is_permanently_dead for ref in article.latest.link_refs()
        )
        if is_member:
            self._permadead_members.add(article.title)
        else:
            self._permadead_members.discard(article.title)
