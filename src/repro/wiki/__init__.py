"""A simulated English Wikipedia.

Articles hold wikitext with citation templates and external links;
every edit appends an immutable revision, so the full edit history the
paper mines (§2.4 — "we fetched the entire edit history of each
article") is first-class. The encyclopedia maintains the category
index (notably "Articles with permanently dead external links") and a
link-posted event stream that feeds the archive's triggered crawler.
"""

from .api import WikiApi
from .article import Article, Revision
from .encyclopedia import Encyclopedia, PERMADEAD_CATEGORY
from .events import (
    LinkEvent,
    LinkMarkedDeadEvent,
    LinkPostedEvent,
    LinkRemovedEvent,
)
from .templates import (
    DEAD_LINK_TEMPLATE,
    IABOT_USERNAME,
    build_archive_url,
    parse_archive_url,
)
from .wikitext import LinkRef, Template, extract_link_refs, parse_templates

__all__ = [
    "Article",
    "DEAD_LINK_TEMPLATE",
    "Encyclopedia",
    "IABOT_USERNAME",
    "LinkEvent",
    "LinkMarkedDeadEvent",
    "LinkPostedEvent",
    "LinkRef",
    "LinkRemovedEvent",
    "PERMADEAD_CATEGORY",
    "Revision",
    "Template",
    "WikiApi",
    "build_archive_url",
    "extract_link_refs",
    "parse_archive_url",
    "parse_templates",
]
