"""A MediaWiki-style query API over the encyclopedia.

The paper's collector did not hold Python references to article
objects — it paged through ``action=query`` endpoints: category
members (alphabetical, with continuation tokens), page wikitext, and
full revision histories. This facade reproduces those access patterns,
including pagination limits, so the collection pipeline exercises the
same mechanics (and the same ordering guarantees §2.4 relies on).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..clock import SimTime
from ..errors import WikiError
from .article import Revision
from .encyclopedia import Encyclopedia
from .events import LinkEvent, LinkPostedEvent

#: MediaWiki's default maximum batch size for most list queries.
DEFAULT_BATCH_LIMIT = 500


@dataclass(frozen=True, slots=True)
class CategoryMembersPage:
    """One page of category members plus the continuation token."""

    titles: tuple[str, ...]
    continue_token: str | None


@dataclass(frozen=True, slots=True)
class EventsPage:
    """One page of the lifecycle event feed plus the resume cursor.

    ``next_cursor`` is always valid to resume from, including when the
    page is empty (the feed caught up); ``more`` distinguishes "drained
    for now" from "another page is already waiting".
    """

    events: tuple[LinkEvent, ...]
    next_cursor: int
    more: bool


@dataclass(frozen=True, slots=True)
class RevisionsPage:
    """One page of a page's revision history (oldest first)."""

    revisions: tuple[Revision, ...]
    continue_token: str | None


class WikiApi:
    """Read-only query endpoints, MediaWiki flavoured."""

    def __init__(self, encyclopedia: Encyclopedia) -> None:
        self._enc = encyclopedia
        self.request_count = 0

    # -- category members (list=categorymembers) --------------------------------

    def category_members(
        self,
        category: str,
        limit: int = DEFAULT_BATCH_LIMIT,
        continue_token: str | None = None,
    ) -> CategoryMembersPage:
        """Alphabetical category members, paginated.

        The continuation token is the last title of the previous page
        (MediaWiki uses a sortkey; same semantics for our purposes).
        """
        self.request_count += 1
        limit = self._clamp_limit(limit)
        members = self._enc.articles_in_category(category)
        start = 0
        if continue_token is not None:
            # Titles strictly after the token.
            while start < len(members) and members[start] <= continue_token:
                start += 1
        batch = members[start: start + limit]
        next_token = (
            batch[-1] if start + limit < len(members) and batch else None
        )
        return CategoryMembersPage(titles=tuple(batch), continue_token=next_token)

    def all_category_members(self, category: str) -> tuple[str, ...]:
        """Convenience: drain the pagination."""
        titles: list[str] = []
        token: str | None = None
        while True:
            page = self.category_members(category, continue_token=token)
            titles.extend(page.titles)
            token = page.continue_token
            if token is None:
                return tuple(titles)

    # -- page content (prop=revisions&rvprop=content, latest) ----------------------

    def page_wikitext(self, title: str) -> str:
        """The current revision's wikitext."""
        self.request_count += 1
        return self._enc.article(title).wikitext

    # -- revision history (prop=revisions, rvdir=newer) -------------------------------

    def revisions(
        self,
        title: str,
        limit: int = DEFAULT_BATCH_LIMIT,
        continue_token: str | None = None,
    ) -> RevisionsPage:
        """A page's history oldest-first, paginated by revision id."""
        self.request_count += 1
        limit = self._clamp_limit(limit)
        history = self._enc.article(title).revisions
        start = 0
        if continue_token is not None:
            try:
                after_id = int(continue_token)
            except ValueError:
                raise WikiError(f"bad revisions continue token {continue_token!r}")
            while start < len(history) and history[start].revision_id <= after_id:
                start += 1
        batch = history[start: start + limit]
        next_token = (
            str(batch[-1].revision_id)
            if start + limit < len(history) and batch
            else None
        )
        return RevisionsPage(revisions=tuple(batch), continue_token=next_token)

    def all_revisions(self, title: str) -> tuple[Revision, ...]:
        """Convenience: drain the history pagination."""
        revisions: list[Revision] = []
        token: str | None = None
        while True:
            page = self.revisions(title, continue_token=token)
            revisions.extend(page.revisions)
            token = page.continue_token
            if token is None:
                return tuple(revisions)

    # -- recent changes flavoured helpers --------------------------------------------

    def link_posted_events_since(self, since: SimTime):
        """Link-posted events at or after ``since`` (EventStream style).

        Boundary semantics are load-bearing and pinned by tests:
        ``since`` is **inclusive** (an event exactly at ``since`` is
        returned — resuming from the last seen timestamp re-delivers
        that instant rather than dropping equal-time siblings), and
        events with equal timestamps keep their **emission order** (the
        log is append-only; filtering never reorders).
        """
        self.request_count += 1
        return tuple(
            event
            for event in self._enc.events.events()
            if isinstance(event, LinkPostedEvent)
            and not event.posted_at < since
        )

    def events_since(
        self, cursor: int = 0, limit: int = DEFAULT_BATCH_LIMIT
    ) -> EventsPage:
        """The lifecycle event feed from an integer cursor.

        Timestamp-based resumption (``link_posted_events_since``) is
        lossy at the boundary instant; the cursor is exact — it is the
        count of events already consumed, so consecutive drains from
        the returned ``next_cursor`` partition the log with no gap and
        no overlap, at any page size.
        """
        self.request_count += 1
        limit = self._clamp_limit(limit)
        events, next_cursor = self._enc.events.events_since(cursor, limit)
        return EventsPage(
            events=events,
            next_cursor=next_cursor,
            more=next_cursor < self._enc.events.cursor,
        )

    @staticmethod
    def _clamp_limit(limit: int) -> int:
        if limit < 1:
            raise WikiError("limit must be >= 1")
        return min(limit, DEFAULT_BATCH_LIMIT)
