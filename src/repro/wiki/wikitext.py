"""Wikitext parsing: templates and external link references.

We implement the subset of wikitext the study actually reads —
``{{template |k=v |...}}`` markup with brace nesting, ``{{cite web}}``
citations, ``{{dead link}}`` annotations, and bare bracketed external
links ``[http://url title]`` — rather than the full MediaWiki grammar
(a documented non-goal in DESIGN.md).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from ..errors import WikiError

_BRACKET_LINK_RE = re.compile(r"\[(https?://[^\s\]]+)(?:\s+([^\]]*))?\]")


@dataclass(frozen=True)
class Template:
    """A parsed ``{{name |k=v |flag}}`` occurrence.

    Positional (unnamed) parameters are stored under keys "1", "2", …
    like MediaWiki does.
    """

    name: str
    params: tuple[tuple[str, str], ...] = ()
    start: int = -1
    end: int = -1

    def get(self, key: str, default: str = "") -> str:
        """The value of parameter ``key`` (last occurrence wins)."""
        for param_key, value in self.params:
            if param_key == key:
                return value
        return default

    def has(self, key: str) -> bool:
        """Whether parameter ``key`` is present."""
        return any(param_key == key for param_key, _ in self.params)

    @property
    def normalized_name(self) -> str:
        """Template name, trimmed and lowercased."""
        return self.name.strip().lower()

    def render(self) -> str:
        """Back to wikitext form."""
        parts = [self.name]
        position = 1
        for key, value in self.params:
            if key == str(position):
                parts.append(value)
                position += 1
            else:
                parts.append(f"{key}={value}")
        return "{{" + " |".join(parts) + "}}"


def make_template(name: str, **params: str) -> Template:
    """Build a template from keyword parameters (underscores become
    hyphens, since wikitext parameter names use ``archive-url`` style)."""
    pairs = tuple(
        (key.replace("_", "-"), value) for key, value in params.items()
    )
    return Template(name=name, params=pairs)


def parse_templates(text: str) -> list[Template]:
    """All top-level templates in ``text``, in document order.

    Handles nested braces (a nested template stays embedded in its
    parent's parameter value; only top-level occurrences are returned,
    which is what the link-reference extractor needs).
    """
    templates: list[Template] = []
    index = 0
    length = len(text)
    while index < length - 1:
        if text[index: index + 2] != "{{":
            index += 1
            continue
        depth = 0
        end = index
        while end < length - 1:
            pair = text[end: end + 2]
            if pair == "{{":
                depth += 1
                end += 2
            elif pair == "}}":
                depth -= 1
                end += 2
                if depth == 0:
                    break
            else:
                end += 1
        if depth != 0:
            raise WikiError(f"unbalanced template braces at offset {index}")
        body = text[index + 2: end - 2]
        templates.append(_parse_template_body(body, index, end))
        index = end
    return templates


def _parse_template_body(body: str, start: int, end: int) -> Template:
    parts = _split_top_level(body, "|")
    name = parts[0].strip()
    params: list[tuple[str, str]] = []
    position = 1
    for part in parts[1:]:
        if "=" in part:
            key, value = part.split("=", 1)
            params.append((key.strip(), value.strip()))
        else:
            params.append((str(position), part.strip()))
            position += 1
    return Template(name=name, params=tuple(params), start=start, end=end)


def _split_top_level(body: str, separator: str) -> list[str]:
    """Split on ``separator`` outside nested ``{{ }}`` groups."""
    parts: list[str] = []
    depth = 0
    current: list[str] = []
    index = 0
    while index < len(body):
        pair = body[index: index + 2]
        if pair == "{{":
            depth += 1
            current.append(pair)
            index += 2
        elif pair == "}}":
            depth -= 1
            current.append(pair)
            index += 2
        elif body[index] == separator and depth == 0:
            parts.append("".join(current))
            current = []
            index += 1
        else:
            current.append(body[index])
            index += 1
    parts.append("".join(current))
    return parts


@dataclass(frozen=True)
class LinkRef:
    """One external link reference found in an article.

    Attributes:
        url: the external URL.
        title: citation title or bracket-link caption.
        cite: the enclosing citation template, if the link came from
            one (None for bare bracket links).
        dead_link: the ``{{dead link}}`` template annotating this
            reference, if any.
        archive_url: archived-copy URL when the reference was patched.
        span: (start, end) character offsets of the whole reference in
            the wikitext, covering the citation plus any annotation.
    """

    url: str
    title: str = ""
    cite: Template | None = None
    dead_link: Template | None = None
    archive_url: str | None = None
    span: tuple[int, int] = (-1, -1)

    @property
    def is_marked_dead(self) -> bool:
        """Whether a {{dead link}} annotation follows the reference."""
        return self.dead_link is not None

    @property
    def is_permanently_dead(self) -> bool:
        """Marked dead with no archived copy — the paper's subject.

        On the real Wikipedia a reference renders as "permanent dead
        link" when it carries a ``{{dead link}}`` annotation and no
        ``archive-url``.
        """
        return self.dead_link is not None and self.archive_url is None

    @property
    def marked_by(self) -> str:
        """Username recorded in the dead-link annotation's bot param.

        Empty when unmarked or when a human added the annotation
        without a bot attribution; the authoritative marker identity
        comes from edit-history mining, this is a convenience.
        """
        return self.dead_link.get("bot") if self.dead_link else ""


def extract_link_refs(text: str) -> list[LinkRef]:
    """All external link references in ``text``, in document order.

    Recognises citation templates with a ``url`` parameter and bare
    bracketed links; in both cases an immediately following
    ``{{dead link}}`` template annotates the reference.
    """
    templates = parse_templates(text)
    refs: list[LinkRef] = []
    consumed_dead: set[int] = set()

    for index, template in enumerate(templates):
        name = template.normalized_name
        if name.startswith("cite") and template.has("url"):
            dead, dead_end = _following_dead_link(templates, index, text)
            if dead is not None:
                consumed_dead.add(id(dead))
            refs.append(
                LinkRef(
                    url=template.get("url"),
                    title=template.get("title"),
                    cite=template,
                    dead_link=dead,
                    archive_url=template.get("archive-url") or None,
                    span=(template.start, dead_end if dead else template.end),
                )
            )

    for match in _BRACKET_LINK_RE.finditer(text):
        if _inside_any_template(match.start(), templates):
            continue
        end = match.end()
        # A bare link may be annotated by {{webarchive}} (a patch) and
        # {{dead link}} (a marking), in that order, directly after it.
        webarchive = _template_at(templates, end, text, "webarchive")
        if webarchive is not None:
            end = webarchive.end
        dead = _dead_link_at(templates, end, text)
        if dead is not None:
            consumed_dead.add(id(dead))
            end = dead.end
        refs.append(
            LinkRef(
                url=match.group(1),
                title=(match.group(2) or "").strip(),
                dead_link=dead,
                archive_url=webarchive.get("url") if webarchive else None,
                span=(match.start(), end),
            )
        )

    refs.sort(key=lambda ref: ref.span[0])
    return refs


def _following_dead_link(
    templates: list[Template], index: int, text: str
) -> tuple[Template | None, int]:
    """A ``{{dead link}}`` right after template ``index``, if present."""
    this_end = templates[index].end
    dead = _dead_link_at(templates, this_end, text)
    if dead is None:
        return None, this_end
    return dead, dead.end


def _dead_link_at(
    templates: list[Template], offset: int, text: str
) -> Template | None:
    """The dead-link template starting at ``offset`` (whitespace allowed)."""
    return _template_at(templates, offset, text, "dead link")


def _template_at(
    templates: list[Template], offset: int, text: str, name: str
) -> Template | None:
    """The ``name`` template directly after ``offset`` (whitespace allowed)."""
    for template in templates:
        if template.normalized_name != name:
            continue
        between = text[offset: template.start]
        if template.start >= offset and between.strip() == "":
            return template
    return None


def _inside_any_template(offset: int, templates: list[Template]) -> bool:
    return any(t.start <= offset < t.end for t in templates)
