"""Articles and their append-only revision histories.

MediaWiki stores every revision's full wikitext; so do we, because the
paper's collector mines the history to recover, for each permanently
dead link, (1) when it was added, (2) when it was marked, and (3) who
marked it (§2.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..clock import SimTime
from ..errors import RevisionError
from .wikitext import LinkRef, extract_link_refs


@dataclass(frozen=True, slots=True)
class Revision:
    """One immutable article revision."""

    revision_id: int
    timestamp: SimTime
    user: str
    comment: str
    wikitext: str

    def link_refs(self) -> list[LinkRef]:
        """Parsed external-link references in this revision's text."""
        return extract_link_refs(self.wikitext)


@dataclass
class Article:
    """A titled article with a full edit history."""

    title: str
    _revisions: list[Revision] = field(default_factory=list)

    def edit(
        self, at: SimTime, user: str, wikitext: str, comment: str = ""
    ) -> Revision:
        """Append a revision; timestamps must be non-decreasing."""
        if self._revisions and at < self._revisions[-1].timestamp:
            raise RevisionError(
                f"revision at {at} predates latest revision of {self.title!r}"
            )
        revision = Revision(
            revision_id=len(self._revisions) + 1,
            timestamp=at,
            user=user,
            comment=comment,
            wikitext=wikitext,
        )
        self._revisions.append(revision)
        return revision

    @property
    def revisions(self) -> tuple[Revision, ...]:
        """Full history, oldest first."""
        return tuple(self._revisions)

    @property
    def latest(self) -> Revision:
        """The current revision."""
        if not self._revisions:
            raise RevisionError(f"article {self.title!r} has no revisions")
        return self._revisions[-1]

    @property
    def wikitext(self) -> str:
        """Current article text."""
        return self.latest.wikitext

    def link_refs(self) -> list[LinkRef]:
        """Parsed references in the current revision."""
        return self.latest.link_refs()

    # -- history mining ------------------------------------------------------------

    def first_revision_with_url(self, url: str) -> Revision | None:
        """The revision that introduced ``url`` (the paper's date-added).

        Matches on reference URL equality, not raw substring, so a URL
        mentioned in prose or inside an archive-url parameter does not
        count as the link being present.
        """
        for revision in self._revisions:
            if any(ref.url == url for ref in revision.link_refs()):
                return revision
        return None

    def first_revision_marking_dead(self, url: str) -> Revision | None:
        """The revision where ``url``'s reference first carries a
        dead-link annotation (the paper's date-marked; its author is
        the marker username)."""
        for revision in self._revisions:
            for ref in revision.link_refs():
                if ref.url == url and ref.is_marked_dead:
                    return revision
        return None
