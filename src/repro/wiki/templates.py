"""Citation and maintenance template helpers.

Builders for the wikitext idioms the simulation writes and the study
reads: ``{{cite web}}`` references, ``{{dead link}}`` annotations, and
``web.archive.org``-style archived-copy URLs.
"""

from __future__ import annotations

from ..clock import SimTime
from .wikitext import Template, make_template

#: The bot the paper studies. Its username appears both in the edit
#: history (revision author) and in the ``bot=`` parameter of the
#: dead-link annotations it writes.
IABOT_USERNAME = "InternetArchiveBot"

#: Template name used for dead-link annotations.
DEAD_LINK_TEMPLATE = "dead link"

#: Hostname of the simulated Wayback Machine's replay endpoint.
ARCHIVE_HOST = "web.archive.org"

_MONTHS = (
    "January", "February", "March", "April", "May", "June", "July",
    "August", "September", "October", "November", "December",
)


def month_year(at: SimTime) -> str:
    """``March 2022``-style date used in maintenance templates."""
    date = at.to_date()
    return f"{_MONTHS[date.month - 1]} {date.year}"


def cite_web(url: str, title: str) -> Template:
    """A fresh ``{{cite web}}`` reference."""
    return make_template("cite web", url=url, title=title)


def dead_link(at: SimTime, bot: str | None = None) -> Template:
    """A ``{{dead link}}`` annotation.

    With ``bot`` set (IABot's edits), ``fix-attempted=yes`` is included
    — on the real Wikipedia that combination is what renders as
    "permanent dead link" and files the article into the category the
    paper crawls.
    """
    if bot:
        return make_template(
            DEAD_LINK_TEMPLATE,
            date=month_year(at),
            bot=bot,
            fix_attempted="yes",
        )
    return make_template(DEAD_LINK_TEMPLATE, date=month_year(at))


def webarchive(archive_url: str, at: SimTime) -> Template:
    """A ``{{webarchive}}`` template — how bare bracket links get
    patched with an archived copy."""
    return make_template("webarchive", url=archive_url, date=at.isoformat())


def patched_cite(cite: Template, archive_url: str, at: SimTime) -> Template:
    """``cite`` augmented with an archived copy (IABot's patch edit)."""
    extra = (
        ("archive-url", archive_url),
        ("archive-date", at.isoformat()),
        ("url-status", "dead"),
    )
    existing = tuple(
        (key, value)
        for key, value in cite.params
        if key not in ("archive-url", "archive-date", "url-status")
    )
    return Template(name=cite.name, params=existing + extra)


def build_archive_url(url: str, captured_at: SimTime) -> str:
    """``http://web.archive.org/web/<stamp>/<url>`` replay URL."""
    date = captured_at.to_date()
    stamp = f"{date.year:04d}{date.month:02d}{date.day:02d}000000"
    return f"http://{ARCHIVE_HOST}/web/{stamp}/{url}"


def parse_archive_url(archive_url: str) -> tuple[SimTime, str] | None:
    """Inverse of :func:`build_archive_url`; None if not a replay URL."""
    prefix_http = f"http://{ARCHIVE_HOST}/web/"
    prefix_https = f"https://{ARCHIVE_HOST}/web/"
    if archive_url.startswith(prefix_http):
        rest = archive_url[len(prefix_http):]
    elif archive_url.startswith(prefix_https):
        rest = archive_url[len(prefix_https):]
    else:
        return None
    if "/" not in rest:
        return None
    stamp, original = rest.split("/", 1)
    if len(stamp) != 14 or not stamp.isdigit():
        return None
    import datetime as _dt

    try:
        date = _dt.date(int(stamp[:4]), int(stamp[4:6]), int(stamp[6:8]))
    except ValueError:
        return None
    return SimTime.from_date(date), original
