"""The link-posted event stream.

The Internet Archive learned about new Wikipedia external links from
the Wikipedia Near Real Time service (2013-2018) and the Wikipedia
EventStream (2018-). In the simulation, the encyclopedia emits a
:class:`LinkPostedEvent` whenever an edit introduces a URL that the
previous revision of the article did not reference; the archive's
triggered crawler subscribes to this log.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..clock import SimTime


@dataclass(frozen=True, slots=True)
class LinkPostedEvent:
    """A URL newly referenced by an article."""

    url: str
    article_title: str
    posted_at: SimTime


class EventLog:
    """Append-only log of link-posted events."""

    def __init__(self) -> None:
        self._events: list[LinkPostedEvent] = []

    def append(self, event: LinkPostedEvent) -> None:
        """Record one link-posted event."""
        self._events.append(event)

    def events(self) -> tuple[LinkPostedEvent, ...]:
        """All events in emission order."""
        return tuple(self._events)

    def events_for(self, url: str) -> tuple[LinkPostedEvent, ...]:
        """Events for one URL (a URL can be posted on many articles)."""
        return tuple(event for event in self._events if event.url == url)

    def __len__(self) -> int:
        return len(self._events)
