"""The link lifecycle event stream.

The Internet Archive learned about new Wikipedia external links from
the Wikipedia Near Real Time service (2013-2018) and the Wikipedia
EventStream (2018-). In the simulation, the encyclopedia emits a
:class:`LinkPostedEvent` whenever an edit introduces a URL that the
previous revision of the article did not reference; the archive's
triggered crawler subscribes to this log.

The live pipeline (:mod:`repro.live`) widens the vocabulary to the
full link lifecycle: :class:`LinkMarkedDeadEvent` when a reference
first carries a dead-link annotation, and :class:`LinkRemovedEvent`
when an edit drops a URL the previous revision referenced. All three
share the ``url`` / ``article_title`` / ``at`` surface so consumers
can fold them uniformly.

The log itself is append-only and **position-addressed**: an integer
cursor (the count of events already consumed) is an exact, stable
resume point — equal-timestamp events keep their emission order, so
two drains from the same cursor see the same suffix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from ..clock import SimTime

__all__ = [
    "EventLog",
    "LinkEvent",
    "LinkMarkedDeadEvent",
    "LinkPostedEvent",
    "LinkRemovedEvent",
]


@dataclass(frozen=True, slots=True)
class LinkPostedEvent:
    """A URL newly referenced by an article."""

    url: str
    article_title: str
    posted_at: SimTime

    @property
    def at(self) -> SimTime:
        """Uniform timestamp accessor across event kinds."""
        return self.posted_at


@dataclass(frozen=True, slots=True)
class LinkMarkedDeadEvent:
    """A reference first annotated ``{{dead link}}`` on an article."""

    url: str
    article_title: str
    marked_at: SimTime
    marked_by: str

    @property
    def at(self) -> SimTime:
        return self.marked_at


@dataclass(frozen=True, slots=True)
class LinkRemovedEvent:
    """A URL the previous revision referenced and this edit dropped."""

    url: str
    article_title: str
    removed_at: SimTime

    @property
    def at(self) -> SimTime:
        return self.removed_at


LinkEvent = Union[LinkPostedEvent, LinkMarkedDeadEvent, LinkRemovedEvent]


class EventLog:
    """Append-only, position-addressed log of link lifecycle events.

    ``events_for`` answers from a URL-keyed index maintained in
    :meth:`append` (the live pipeline polls it per dirty URL, so the
    old full-log scan would be O(log x dirty) per generation);
    :meth:`verify_index` is the micro-assertion that the index and a
    fresh scan agree, for tests and paranoid callers.
    """

    def __init__(self) -> None:
        self._events: list[LinkEvent] = []
        self._by_url: dict[str, list[int]] = {}

    def append(self, event: LinkEvent) -> None:
        """Record one event and index it by URL."""
        position = len(self._events)
        self._events.append(event)
        self._by_url.setdefault(event.url, []).append(position)
        assert self._events[self._by_url[event.url][-1]] is event

    def events(self) -> tuple[LinkEvent, ...]:
        """All events in emission order."""
        return tuple(self._events)

    def events_for(self, url: str) -> tuple[LinkEvent, ...]:
        """Events for one URL (a URL can be posted on many articles).

        Answered from the URL index — emission order is preserved
        because positions are appended in emission order.
        """
        return tuple(
            self._events[position] for position in self._by_url.get(url, ())
        )

    def events_since(
        self, cursor: int, limit: int | None = None
    ) -> tuple[tuple[LinkEvent, ...], int]:
        """Events from ``cursor`` onward, and the next cursor.

        ``cursor`` is the count of events already consumed (0 = from
        the beginning). Returns at most ``limit`` events; the second
        element is the cursor to resume from, ``cursor + len(batch)``.
        """
        if cursor < 0 or cursor > len(self._events):
            raise ValueError(
                f"cursor {cursor} out of range [0, {len(self._events)}]"
            )
        end = len(self._events) if limit is None else min(
            len(self._events), cursor + limit
        )
        return tuple(self._events[cursor:end]), end

    @property
    def cursor(self) -> int:
        """The cursor positioned after the last event appended."""
        return len(self._events)

    def verify_index(self) -> None:
        """Assert the URL index agrees with a full-log scan."""
        scanned: dict[str, list[int]] = {}
        for position, event in enumerate(self._events):
            scanned.setdefault(event.url, []).append(position)
        assert scanned == self._by_url, "EventLog URL index out of sync"
        for url in scanned:
            assert self.events_for(url) == tuple(
                event for event in self._events if event.url == url
            ), f"indexed answer for {url!r} disagrees with scan"

    def __len__(self) -> int:
        return len(self._events)
