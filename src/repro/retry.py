"""Retry with capped exponential backoff, on a virtual clock.

Real measurement pipelines live in a flakiness regime — resolver
SERVFAILs, archive 5xx bursts, rate-limit windows — and whether they
retry decides whether transient infrastructure failure is (mis)read as
link deadness. This module is the one retry implementation every
client shares: :class:`RetryPolicy` describes a capped-exponential
backoff schedule with a hard total-delay budget, and
:func:`call_with_retry` drives it around any callable.

Nothing here sleeps. Backoff delays are accumulated into
:class:`RetryCounters` (the *virtual* clock) so a study run under
heavy fault injection completes in milliseconds of wall time while
still accounting for every millisecond a real client would have
waited. Delays are deterministic: jitter is derived by hashing the
policy seed, the operation key, and the attempt number through
:func:`repro.rng.derive_seed`, never by consuming shared RNG state —
so a retry schedule is a pure function of ``(policy, key)`` and
replays identically at any worker count.

The zero-retry default (``max_retries=0``) is byte-for-byte the
pre-retry behaviour: the operation runs once and any exception
propagates untouched.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, TypeVar

from .errors import ReproError
from .rng import derive_seed

T = TypeVar("T")

#: 2**64, the denominator turning a hashed 64-bit draw into a unit float.
_UNIT_DENOM = float(2**64)


def is_transient(exc: BaseException) -> bool:
    """Whether an exception is safe to retry.

    Library errors carry a ``transient`` class attribute (see
    :class:`repro.errors.ReproError`); anything else is permanent.
    """
    return isinstance(exc, ReproError) and bool(exc.transient)


@dataclass
class RetryCounters:
    """Mutable accounting for one client's retry activity.

    Attributes:
        retries: individual retry attempts performed.
        giveups: operations abandoned with the fault still standing
            (budget or attempt limit exhausted).
        backoff_ms: total *virtual* backoff delay accumulated — what a
            real client would have spent sleeping.
    """

    retries: int = 0
    giveups: int = 0
    backoff_ms: float = 0.0

    def merge(self, other: "RetryCounters") -> None:
        """Fold another counter set into this one."""
        self.retries += other.retries
        self.giveups += other.giveups
        self.backoff_ms += other.backoff_ms


@dataclass(frozen=True)
class RetryPolicy:
    """A capped-exponential, budgeted backoff schedule.

    Attempt ``i`` (zero-based) waits
    ``min(base_delay_ms * multiplier**i, max_delay_ms)``, shrunk by up
    to ``jitter`` (a fraction in ``[0, 1]``) using a deterministic
    per-``(key, attempt)`` draw. Retrying stops when ``max_retries``
    attempts have been used *or* the next delay would push the total
    virtual wait past ``budget_ms``, whichever bites first.

    ``max_retries=0`` disables retrying entirely — the documented way
    to reproduce pre-retry behaviour exactly.
    """

    max_retries: int = 0
    base_delay_ms: float = 100.0
    multiplier: float = 2.0
    max_delay_ms: float = 5_000.0
    budget_ms: float = 60_000.0
    jitter: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.base_delay_ms < 0 or self.max_delay_ms < 0:
            raise ValueError("delays must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        if self.budget_ms < 0:
            raise ValueError("budget_ms must be non-negative")

    @property
    def enabled(self) -> bool:
        """Whether this policy ever retries."""
        return self.max_retries > 0

    def delay_ms(self, key: str, attempt: int) -> float:
        """The backoff delay before retry number ``attempt`` of ``key``."""
        raw = min(
            self.base_delay_ms * self.multiplier**attempt, self.max_delay_ms
        )
        if self.jitter:
            unit = derive_seed(self.seed, f"retry:{key}:{attempt}") / _UNIT_DENOM
            raw *= 1.0 - self.jitter * unit
        return raw

    def schedule(self, key: str) -> tuple[float, ...]:
        """Every delay this policy would grant for ``key``, in order.

        The schedule already honours the budget: its sum never exceeds
        ``budget_ms`` and its length never exceeds ``max_retries``.
        """
        delays: list[float] = []
        spent = 0.0
        for attempt in range(self.max_retries):
            delay = self.delay_ms(key, attempt)
            if spent + delay > self.budget_ms:
                break
            delays.append(delay)
            spent += delay
        return tuple(delays)


def call_with_retry(
    op: Callable[[], T],
    policy: RetryPolicy | None,
    key: str,
    counters: RetryCounters,
    retryable: Callable[[BaseException], bool] | None = None,
) -> T:
    """Run ``op`` under ``policy``, retrying retryable failures.

    Args:
        op: the zero-argument operation (usually a lambda closing over
            the real call).
        policy: the backoff schedule; ``None`` or a disabled policy
            means "call once, propagate everything".
        key: stable identity of the logical operation — it seeds the
            jitter, so the same key replays the same schedule.
        counters: where retries, giveups, and virtual backoff land.
        retryable: predicate deciding which exceptions to retry;
            defaults to :func:`is_transient`.

    Raises:
        whatever ``op`` last raised, once the policy is exhausted or
        the failure is not retryable.
    """
    if policy is None or not policy.enabled:
        return op()
    check = retryable if retryable is not None else is_transient
    attempt = 0
    spent_ms = 0.0
    while True:
        try:
            return op()
        except Exception as exc:
            if not check(exc):
                raise
            if attempt >= policy.max_retries:
                counters.giveups += 1
                raise
            delay = policy.delay_ms(key, attempt)
            if spent_ms + delay > policy.budget_ms:
                counters.giveups += 1
                raise
            spent_ms += delay
            counters.retries += 1
            counters.backoff_ms += delay
            attempt += 1


#: A sensible default for masking the fault plans the test tiers use:
#: deep enough for stacked per-channel faults, generous budget, no
#: jitter (schedules then need no seed coordination across clients).
DEFAULT_MASKING_POLICY = RetryPolicy(
    max_retries=6,
    base_delay_ms=100.0,
    multiplier=2.0,
    max_delay_ms=2_000.0,
    budget_ms=60_000.0,
)


__all__ = [
    "DEFAULT_MASKING_POLICY",
    "RetryCounters",
    "RetryPolicy",
    "call_with_retry",
    "is_transient",
]
