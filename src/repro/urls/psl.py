"""Public Suffix List matching.

The paper maps each URL's hostname to its registrable domain using the
Public Suffix List (via python-publicsuffix2). We implement the PSL
algorithm itself — longest-match over suffix rules, with wildcard
(``*.ck``) and exception (``!www.ck``) rules — over a bundled rule set
that covers the suffixes our synthetic web generator emits plus the
common real-world ones that appear in the paper's examples.

Algorithm (https://publicsuffix.org/list/):

1. Split the hostname into labels.
2. Find all rules that match; a rule matches when its labels equal the
   tail of the hostname's labels (``*`` matches any single label).
3. If an exception rule matches, the public suffix is that rule minus
   its leftmost label. Otherwise the prevailing rule is the matching
   rule with the most labels (default rule: ``*``... no — default is
   the rightmost label alone).
4. The registrable domain is the public suffix plus one more label.
"""

from __future__ import annotations

from functools import lru_cache

from ..errors import UrlError

#: Bundled rules. A deliberately curated subset of the real PSL: every
#: suffix the synthetic URL generator can produce, plus suffixes from
#: URLs the paper cites (e.g. parliament.tas.gov.au, nli.org.il,
#: main-spitze.de, lnr.fr, baltimoresun.com, znaci.net).
BUNDLED_RULES = """
// generic
com
org
net
edu
gov
mil
int
info
biz
name
museum
// country-code basics
de
fr
il
org.il
ac.il
gov.il
net.il
uk
co.uk
org.uk
ac.uk
gov.uk
au
com.au
net.au
org.au
edu.au
gov.au
tas.gov.au
nsw.gov.au
vic.gov.au
jp
co.jp
ne.jp
or.jp
ac.jp
cn
com.cn
net.cn
org.cn
ru
su
nl
it
es
se
no
fi
dk
pl
cz
at
ch
be
eu
ca
us
in
co.in
org.in
net.in
br
com.br
org.br
nz
co.nz
org.nz
govt.nz
mx
com.mx
ar
com.ar
za
co.za
kr
co.kr
tw
com.tw
hk
com.hk
sg
com.sg
ie
pt
gr
hu
ro
tr
com.tr
ua
com.ua
// wildcard + exception examples (kept to exercise the algorithm)
ck
*.ck
!www.ck
*.kawasaki.jp
!city.kawasaki.jp
"""


def _parse_rules(text: str) -> frozenset[str]:
    rules = set()
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("//"):
            continue
        rules.add(line.lower())
    return frozenset(rules)


class PublicSuffixList:
    """PSL matcher over a set of rules.

    Instances are immutable; :func:`default_psl` returns a shared
    instance built from :data:`BUNDLED_RULES`.
    """

    def __init__(self, rules: frozenset[str] | None = None) -> None:
        self._rules = rules if rules is not None else _parse_rules(BUNDLED_RULES)
        self._exceptions = frozenset(
            rule[1:] for rule in self._rules if rule.startswith("!")
        )
        self._plain = frozenset(
            rule for rule in self._rules if not rule.startswith("!")
        )

    @classmethod
    def from_text(cls, text: str) -> "PublicSuffixList":
        """Build from PSL-format text (``//`` comments, one rule per line)."""
        return cls(_parse_rules(text))

    def public_suffix(self, hostname: str) -> str:
        """The public suffix of ``hostname`` per the PSL algorithm."""
        labels = self._labels(hostname)
        # Exception rules win and strip their leftmost label.
        for start in range(len(labels)):
            candidate = ".".join(labels[start:])
            if candidate in self._exceptions:
                return ".".join(labels[start + 1:])
        # Otherwise, the longest matching plain/wildcard rule prevails.
        best_len = 0
        for start in range(len(labels)):
            tail = labels[start:]
            candidate = ".".join(tail)
            wildcard = ".".join(["*"] + tail[1:]) if tail else ""
            if candidate in self._plain or wildcard in self._plain:
                best_len = max(best_len, len(tail))
        if best_len == 0:
            best_len = 1  # default rule: "*" — the rightmost label
        return ".".join(labels[-best_len:])

    def registrable_domain(self, hostname: str) -> str:
        """Public suffix plus one label; the paper's "domain" of a URL.

        If the hostname *is* a public suffix (no extra label exists),
        the hostname itself is returned so every URL maps somewhere.
        """
        labels = self._labels(hostname)
        suffix = self.public_suffix(hostname)
        suffix_len = len(suffix.split(".")) if suffix else 0
        if len(labels) <= suffix_len:
            return hostname.lower().rstrip(".")
        return ".".join(labels[-(suffix_len + 1):])

    @staticmethod
    def _labels(hostname: str) -> list[str]:
        host = hostname.lower().rstrip(".")
        if not host:
            raise UrlError("empty hostname")
        if host.startswith("."):
            raise UrlError(f"hostname starts with '.': {hostname!r}")
        labels = host.split(".")
        if any(not label for label in labels):
            raise UrlError(f"hostname has an empty label: {hostname!r}")
        return labels


@lru_cache(maxsize=1)
def default_psl() -> PublicSuffixList:
    """The shared PSL built from the bundled rules."""
    return PublicSuffixList()


def registrable_domain(hostname: str) -> str:
    """Module-level convenience wrapper over :func:`default_psl`."""
    return default_psl().registrable_domain(hostname)
