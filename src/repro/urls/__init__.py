"""URL parsing, classification, and generation utilities.

The paper's methodology is URL-centric: hostnames are extracted as "the
portion of the URL between the protocol and the first '/'", hostnames
map to registrable domains via the Public Suffix List, directory
prefixes ("same prefix until the last '/'") drive both the archived-
redirect validation (§4.2) and the spatial coverage analysis (§5.2),
and typo detection uses edit distance over full URLs (§5.2).
"""

from .editdist import edit_distance, within_distance
from .parse import ParsedUrl, directory_prefix, hostname_of, parse_url
from .psl import PublicSuffixList, default_psl, registrable_domain

__all__ = [
    "ParsedUrl",
    "PublicSuffixList",
    "default_psl",
    "directory_prefix",
    "edit_distance",
    "hostname_of",
    "parse_url",
    "registrable_domain",
    "within_distance",
]
