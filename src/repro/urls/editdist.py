"""Edit distance over URL strings, for typo detection (§5.2).

The paper deems a permanently dead link a potential typo *"if there
exists only one archived URL with an edit distance of exactly 1"* under
the same domain. We implement Levenshtein distance (insert / delete /
substitute, unit costs) with a banded early-exit variant so scanning a
domain's archived URL inventory stays fast.
"""

from __future__ import annotations


def edit_distance(a: str, b: str) -> int:
    """Levenshtein distance between two strings.

    Classic two-row dynamic program; O(len(a) * len(b)) time,
    O(min(len)) space.
    """
    if a == b:
        return 0
    if len(a) < len(b):
        a, b = b, a
    if not b:
        return len(a)
    previous = list(range(len(b) + 1))
    for i, char_a in enumerate(a, start=1):
        current = [i]
        for j, char_b in enumerate(b, start=1):
            cost = 0 if char_a == char_b else 1
            current.append(
                min(
                    previous[j] + 1,      # deletion from a
                    current[j - 1] + 1,   # insertion into a
                    previous[j - 1] + cost,  # substitution
                )
            )
        previous = current
    return previous[-1]


def within_distance(a: str, b: str, limit: int) -> bool:
    """Whether ``edit_distance(a, b) <= limit``, with early exit.

    Uses the banded variant: cells farther than ``limit`` from the
    diagonal can never contribute to a result <= limit, so each row
    only evaluates a 2*limit+1 window and the scan aborts as soon as a
    whole row exceeds the limit.
    """
    if abs(len(a) - len(b)) > limit:
        return False
    if a == b:
        return True
    if limit <= 0:
        return False
    if len(a) < len(b):
        a, b = b, a
    big = limit + 1
    previous = [j if j <= limit else big for j in range(len(b) + 1)]
    for i, char_a in enumerate(a, start=1):
        lo = max(1, i - limit)
        hi = min(len(b), i + limit)
        current = [big] * (len(b) + 1)
        if lo == 1:
            current[0] = i if i <= limit else big
        for j in range(lo, hi + 1):
            cost = 0 if char_a == b[j - 1] else 1
            current[j] = min(
                previous[j] + 1,
                current[j - 1] + 1,
                previous[j - 1] + cost,
            )
        if min(current[lo - 1: hi + 1]) > limit:
            return False
        previous = current
    return previous[len(b)] <= limit


def unique_neighbor(target: str, candidates: list[str], distance: int = 1) -> str | None:
    """The single candidate at exactly ``distance`` from ``target``, if unique.

    Returns ``None`` when zero or more than one candidate lies at the
    requested distance — the paper's criterion for flagging a typo only
    when the correction is unambiguous.
    """
    found: str | None = None
    for candidate in candidates:
        if candidate == target:
            continue
        if not within_distance(target, candidate, distance):
            continue
        if edit_distance(target, candidate) != distance:
            continue
        if found is not None:
            return None
        found = candidate
    return found
