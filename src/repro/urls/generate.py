"""Synthetic URL and hostname generation.

The world generator needs realistic-looking URLs: hostnames over a mix
of TLD/public-suffix choices, directory hierarchies, article-style
slugs, numeric page identifiers, and query-parameter-heavy deep links
(the kind §5.2 shows are hard to archive). It also needs to *mutate* a
URL into a plausible human typo (the §5 finding that ~2% of permanently
dead links never worked).
"""

from __future__ import annotations

from ..rng import Stream
from .parse import ParsedUrl

_WORDS = (
    "news", "sports", "archive", "story", "article", "report", "local",
    "world", "politics", "science", "music", "film", "history", "art",
    "events", "results", "index", "page", "view", "media", "press",
    "culture", "review", "profile", "team", "match", "season", "album",
    "artist", "city", "region", "health", "tech", "travel", "guide",
    "photo", "gallery", "paper", "journal", "record", "library",
)

_BRAND_SYLLABLES = (
    "alba", "bren", "cor", "dura", "esto", "fina", "gram", "hales",
    "ingo", "jura", "kino", "lumo", "mira", "nor", "opta", "pres",
    "quin", "rada", "sola", "tern", "ulto", "vera", "wick", "xeno",
    "yond", "zeta", "mar", "vel", "tan", "rio", "sun", "sky",
)

_SUFFIX_WEIGHTS = (
    ("com", 42.0),
    ("org", 14.0),
    ("net", 7.0),
    ("co.uk", 6.0),
    ("de", 5.0),
    ("fr", 4.0),
    ("gov.au", 2.0),
    ("edu", 3.0),
    ("org.il", 1.0),
    ("info", 2.0),
    ("it", 2.0),
    ("nl", 2.0),
    ("com.au", 2.0),
    ("co.nz", 1.0),
    ("se", 1.0),
    ("jp", 1.0),
    ("ru", 1.0),
    ("pl", 1.0),
    ("es", 2.0),
    ("ca", 1.0),
)

_SUBDOMAIN_WEIGHTS = (
    ("www", 55.0),
    ("", 25.0),
    ("news", 6.0),
    ("archive", 4.0),
    ("en", 4.0),
    ("m", 3.0),
    ("old", 3.0),
)

_QUERY_KEYS = (
    "id", "page", "view", "article", "ref", "lang", "cat", "item",
    "Source", "Skin", "BaseHref", "EntityId", "ViewMode", "From",
)

_TYPO_ALPHABET = "abcdefghijklmnopqrstuvwxyz0123456789-_."


class UrlFactory:
    """Generates hostnames, paths, and typo mutations from one RNG stream."""

    def __init__(self, rng: Stream) -> None:
        self._rng = rng
        self._issued_hosts: set[str] = set()

    # -- hostnames -------------------------------------------------------------

    def brand(self) -> str:
        """A pronounceable site brand, e.g. ``mirapres``."""
        syllables = self._rng.randint(2, 3)
        return "".join(self._rng.choice(_BRAND_SYLLABLES) for _ in range(syllables))

    def hostname(self) -> str:
        """A fresh, unique hostname like ``www.mirapres.co.uk``."""
        for _ in range(1000):
            brand = self.brand()
            suffix = self._rng.weighted_choice(_SUFFIX_WEIGHTS)
            sub = self._rng.weighted_choice(_SUBDOMAIN_WEIGHTS)
            host = f"{brand}.{suffix}" if not sub else f"{sub}.{brand}.{suffix}"
            registered = f"{brand}.{suffix}"
            if registered not in self._issued_hosts:
                self._issued_hosts.add(registered)
                return host
        raise RuntimeError("hostname space exhausted; increase syllable pool")

    def sibling_hostname(self, hostname: str) -> str:
        """A different subdomain of the same registered domain."""
        parts = hostname.split(".")
        base = ".".join(parts[1:]) if len(parts) > 2 else hostname
        for _ in range(100):
            sub = self._rng.weighted_choice(_SUBDOMAIN_WEIGHTS)
            candidate = f"{sub}.{base}" if sub else base
            if candidate != hostname:
                return candidate
        return f"alt.{base}"

    # -- paths ------------------------------------------------------------------

    def slug(self, words: int | None = None) -> str:
        """A hyphenated article slug, e.g. ``local-match-results``."""
        count = words if words is not None else self._rng.randint(2, 5)
        return "-".join(self._rng.choice(_WORDS) for _ in range(count))

    def directory(self, depth: int | None = None) -> str:
        """A directory path like ``/news/2011/`` (always slash-terminated)."""
        levels = depth if depth is not None else self._rng.randint(1, 3)
        parts = []
        for _ in range(levels):
            if self._rng.chance(0.3):
                parts.append(str(self._rng.randint(1998, 2021)))
            else:
                parts.append(self._rng.choice(_WORDS))
        return "/" + "/".join(parts) + "/"

    def leaf(self, style: str = "slug") -> str:
        """A page leaf name in one of several styles.

        ``slug``    hyphenated words plus ``.html``
        ``numeric`` a numeric identifier, e.g. ``9204093.htm``
        ``asp``     a script name (query params added separately)
        """
        if style == "numeric":
            return f"{self._rng.randint(100000, 9999999)}.htm"
        if style == "asp":
            return self._rng.choice(("ArticleWin.asp", "Default.asp", "view.php", "story.jsp"))
        ext = self._rng.choice((".html", ".htm", ""))
        return f"{self.slug()}{ext}"

    def query_string(self, params: int | None = None) -> str:
        """A query string with the given number of parameters."""
        count = params if params is not None else self._rng.randint(2, 6)
        keys = self._rng.sample(_QUERY_KEYS, min(count, len(_QUERY_KEYS)))
        pairs = []
        for key in keys:
            if self._rng.chance(0.5):
                value = str(self._rng.randint(1, 99999))
            else:
                value = self._rng.choice(_WORDS)
            pairs.append(f"{key}={value}")
        return "&".join(pairs)

    # -- typos --------------------------------------------------------------------

    def typo(self, url: ParsedUrl) -> ParsedUrl:
        """Mutate ``url`` by one edit, the way a human mangles a pasted link.

        Edits only the path/query (hostname typos would change which
        site the request reaches, which is not the §5 failure mode the
        paper describes). The result is at edit distance exactly 1 from
        the original full URL string.
        """
        tail = url.path + (f"?{url.query}" if url.query else "")
        body = tail[1:]  # keep the leading '/' intact
        if not body:
            body = "x"
            op = "insert"
        else:
            op = self._rng.weighted_choice(
                (("delete", 4.0), ("substitute", 3.0), ("insert", 3.0))
            )
        index = self._rng.randrange(len(body)) if body else 0
        if op == "delete":
            mutated = body[:index] + body[index + 1:]
            if not mutated:
                mutated = body + self._rng.choice(_TYPO_ALPHABET)
        elif op == "substitute":
            replacement = self._rng.choice(_TYPO_ALPHABET)
            while replacement == body[index]:
                replacement = self._rng.choice(_TYPO_ALPHABET)
            mutated = body[:index] + replacement + body[index + 1:]
        else:
            mutated = body[:index] + self._rng.choice(_TYPO_ALPHABET) + body[index:]
        new_tail = "/" + mutated
        if "?" in new_tail:
            path, query = new_tail.split("?", 1)
        else:
            path, query = new_tail, ""
        if not path:
            path = "/"
        return ParsedUrl(
            scheme=url.scheme, hostname=url.hostname, path=path, query=query
        )

    def reorder_query(self, url: ParsedUrl) -> ParsedUrl | None:
        """The same URL with its query parameters in a different order.

        ``None`` when the URL has fewer than two parameters (no
        distinct ordering exists). Servers treat both orderings as the
        same resource; web archives do not (§5.2, implication b).
        """
        from .parse import QueryArgs

        pairs = list(QueryArgs.parse(url.query).pairs)
        if len(pairs) < 2:
            return None
        for _ in range(20):
            shuffled = pairs[:]
            self._rng.shuffle(shuffled)
            if shuffled != pairs:
                query = "&".join(f"{key}={value}" for key, value in shuffled)
                return ParsedUrl(
                    scheme=url.scheme,
                    hostname=url.hostname,
                    path=url.path,
                    query=query,
                )
        return None

    def random_leaf_probe(self, url: ParsedUrl, length: int = 25) -> ParsedUrl:
        """The §3 soft-404 probe URL: leaf replaced by random characters.

        *"we obtain a new URL u' which is identical to u except that the
        suffix in u following the last occurrence of '/' is replaced by
        a randomly generated string of 25 characters."*
        """
        alphabet = "abcdefghijklmnopqrstuvwxyz0123456789"
        random_leaf = "".join(self._rng.choice(alphabet) for _ in range(length))
        return url.with_leaf(random_leaf)
