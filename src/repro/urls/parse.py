"""URL parsing exactly as the paper defines it.

Section 2.4: *"We extract the hostname from any particular URL as the
portion of the URL between the protocol (i.e., 'http://' or 'https://')
and the first '/' thereafter."* Directory membership (§4.2, §5.2) is
defined as *"share the same URL prefix until the last '/'"*.

We implement a small, strict parser rather than using ``urllib`` so
that the semantics match the paper's definitions precisely and so that
malformed URLs (the typos in §5) behave the same way they do on the
live web: as requestable-but-broken strings.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import UrlError

_SCHEMES = ("http", "https")


@dataclass(frozen=True, slots=True)
class ParsedUrl:
    """A decomposed URL.

    Attributes:
        scheme: ``http`` or ``https``.
        hostname: everything between ``://`` and the first ``/`` (may
            include a port; the paper's definition keeps it).
        path: from the first ``/`` up to but excluding ``?``; always
            begins with ``/``.
        query: everything after the first ``?`` (empty if none).
    """

    scheme: str
    hostname: str
    path: str = "/"
    query: str = ""

    def __post_init__(self) -> None:
        if self.scheme not in _SCHEMES:
            raise UrlError(f"unsupported scheme {self.scheme!r}")
        if not self.hostname:
            raise UrlError("empty hostname")
        if not self.path.startswith("/"):
            raise UrlError(f"path must start with '/', got {self.path!r}")

    @property
    def host_lower(self) -> str:
        """Hostname lowercased, port stripped — for DNS and PSL lookups."""
        host = self.hostname.lower()
        if ":" in host:
            host = host.split(":", 1)[0]
        return host

    @property
    def directory(self) -> str:
        """The URL prefix up to and including the last '/' of the path.

        This is the paper's directory notion: two URLs are "in the same
        directory" iff their prefixes until the last '/' are equal.
        The query string never contributes to the directory.
        """
        last_slash = self.path.rfind("/")
        return f"{self.scheme}://{self.hostname}{self.path[: last_slash + 1]}"

    @property
    def leaf(self) -> str:
        """Everything after the last '/' of the path, plus the query.

        This is the part replaced by a random string when probing for
        soft-404s (§3).
        """
        last_slash = self.path.rfind("/")
        tail = self.path[last_slash + 1:]
        if self.query:
            return f"{tail}?{self.query}"
        return tail

    @property
    def site_root(self) -> str:
        """``scheme://hostname/`` — the site's homepage URL."""
        return f"{self.scheme}://{self.hostname}/"

    def with_leaf(self, leaf: str) -> "ParsedUrl":
        """A sibling URL in the same directory with a different leaf."""
        query = ""
        path_leaf = leaf
        if "?" in leaf:
            path_leaf, query = leaf.split("?", 1)
        last_slash = self.path.rfind("/")
        return ParsedUrl(
            scheme=self.scheme,
            hostname=self.hostname,
            path=self.path[: last_slash + 1] + path_leaf,
            query=query,
        )

    def __str__(self) -> str:
        url = f"{self.scheme}://{self.hostname}{self.path}"
        if self.query:
            url += f"?{self.query}"
        return url


def parse_url(url: str) -> ParsedUrl:
    """Parse ``url`` into a :class:`ParsedUrl`.

    Raises :class:`~repro.errors.UrlError` for strings without an
    ``http(s)://`` prefix or without a hostname. Everything else —
    including URLs with typos in the path or query — parses fine, just
    as a browser would happily issue a request for them.
    """
    if not isinstance(url, str):
        raise UrlError(f"url must be a string, got {type(url)!r}")
    lowered = url.lower()
    for scheme in _SCHEMES:
        prefix = f"{scheme}://"
        if lowered.startswith(prefix):
            rest = url[len(prefix):]
            break
    else:
        raise UrlError(f"url must start with http:// or https://: {url!r}")
    if not rest:
        raise UrlError(f"url has no hostname: {url!r}")
    slash = rest.find("/")
    if slash == -1:
        hostname, path_and_query = rest, "/"
    else:
        hostname, path_and_query = rest[:slash], rest[slash:]
    if not hostname:
        raise UrlError(f"url has no hostname: {url!r}")
    if "?" in path_and_query:
        path, query = path_and_query.split("?", 1)
    else:
        path, query = path_and_query, ""
    return ParsedUrl(scheme=scheme, hostname=hostname, path=path, query=query)


def hostname_of(url: str) -> str:
    """The paper's hostname extraction, lowercased and without a port."""
    return parse_url(url).host_lower


def directory_prefix(url: str) -> str:
    """The paper's directory prefix: everything until the last '/'."""
    return parse_url(url).directory


def normalize(url: str) -> str:
    """Canonical string form: lowercased scheme+hostname, path untouched.

    Paths and queries are case-sensitive on the live web, so only the
    authority is normalised.
    """
    parsed = parse_url(url)
    return str(
        ParsedUrl(
            scheme=parsed.scheme,
            hostname=parsed.hostname.lower(),
            path=parsed.path,
            query=parsed.query,
        )
    )


@dataclass(frozen=True, slots=True)
class QueryArgs:
    """A parsed query string, preserving order and duplicates.

    Section 5.2 observes that URLs with many query parameters are hard
    to archive because parameters may appear in any order; this type
    supports order-insensitive comparison for the implication analysis.
    """

    pairs: tuple[tuple[str, str], ...] = field(default_factory=tuple)

    @classmethod
    def parse(cls, query: str) -> "QueryArgs":
        """Split a raw query string into ordered key/value pairs."""
        if not query:
            return cls(())
        pairs = []
        for part in query.split("&"):
            if not part:
                continue
            if "=" in part:
                key, value = part.split("=", 1)
            else:
                key, value = part, ""
            pairs.append((key, value))
        return cls(tuple(pairs))

    def canonical(self) -> tuple[tuple[str, str], ...]:
        """Order-insensitive canonical form (sorted pairs)."""
        return tuple(sorted(self.pairs))

    def __len__(self) -> int:
        return len(self.pairs)

    def equivalent(self, other: "QueryArgs") -> bool:
        """True if both hold the same pairs regardless of order."""
        return self.canonical() == other.canonical()
