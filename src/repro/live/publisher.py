"""Content-hash-versioned index generations and their lifecycle.

:class:`GenerationPublisher` turns each incremental build into a
:class:`~repro.service.index.LinkStatusIndex` generation: a frozen,
content-addressed snapshot (the index ``version`` is a hash of its
measurements, so two builds that measured the same world state publish
the *same* generation id). Publishing never touches a serving loop —
the serving tiers swap generations themselves via their ``swaps=``
schedules, copy-on-write; the publisher owns sequencing, retention,
and the freshness telemetry:

- ``live.generation.seq`` (gauge) — monotonic publish counter;
- ``live.generation.lag_days`` (gauge) + histogram — how stale the
  previous generation got before this one replaced it (the
  index-freshness SLO grades these via
  :func:`repro.obs.slo.events_from_generations`);
- ``live.dirty.size`` (histogram) — per-generation dirty-set size;
- ``live.rebuild.wall_ms`` (histogram) — delta-build wall cost.

Retention is bounded: the newest ``retain`` generations stay pinned
(a swap schedule needs the old generation alive until its in-flight
requests finish), older ones retire — their versions are recorded and
their indexes released.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..clock import SimTime
from ..errors import LiveError
from ..obs.metrics import MetricsRegistry
from ..service.index import LinkStatusEntry, LinkStatusIndex
from ..service.reconfig import GenerationDelta, snapshot_wire_bytes
from .incremental import LiveStudyResult

__all__ = ["Generation", "GenerationPublisher", "UrlGenerationState"]

#: Histogram bounds for dirty-set sizes (powers of two, small end).
DIRTY_SIZE_BOUNDS: tuple[float, ...] = (0, 1, 2, 4, 8, 16, 32, 64, 128, 256)

#: Histogram bounds for delta wire size (bytes, canonical JSON).
DELTA_BYTES_BOUNDS: tuple[float, ...] = (
    256, 1_024, 4_096, 16_384, 65_536, 262_144, 1_048_576,
)

#: Histogram bounds for delta-rebuild wall cost (real ms).
REBUILD_WALL_BOUNDS_MS: tuple[float, ...] = (
    1, 5, 10, 25, 50, 100, 250, 500, 1_000, 2_500, 5_000,
)


@dataclass(frozen=True, slots=True)
class Generation:
    """One published index generation."""

    seq: int
    version: str
    built_at: SimTime
    index: LinkStatusIndex
    dirty_size: int
    events_consumed: int
    #: Days the previous generation served before this one landed
    #: (0 for the first) — the freshness-SLO latency dimension.
    lag_days: float
    rebuild_wall_ms: float

    def summary(self) -> str:
        return (
            f"gen {self.seq} {self.version} at {self.built_at}: "
            f"{len(self.index)} entries, dirty={self.dirty_size}, "
            f"lag={self.lag_days:.1f}d, "
            f"rebuild={self.rebuild_wall_ms:.1f}ms"
        )


@dataclass(frozen=True, slots=True)
class UrlGenerationState:
    """One URL's status as one retained generation published it."""

    seq: int
    version: str
    built_at: SimTime
    #: ``None`` when the generation did not cover the URL (sampled
    #: out, or removed from the corpus by then).
    entry: LinkStatusEntry | None

    @property
    def bucket(self) -> str | None:
        return self.entry.bucket if self.entry is not None else None

    def summary(self) -> str:
        if self.entry is None:
            return f"gen {self.seq} {self.version} at {self.built_at}: (not covered)"
        return (
            f"gen {self.seq} {self.version} at {self.built_at}: "
            f"{self.entry.bucket} -> {self.entry.advice}"
        )


class GenerationPublisher:
    """Sequences incremental builds into retained index generations."""

    def __init__(
        self,
        metrics: MetricsRegistry | None = None,
        retain: int = 2,
    ) -> None:
        if retain < 1:
            raise LiveError("must retain at least the current generation")
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.retain = retain
        self.generations: list[Generation] = []
        #: Versions released from retention, oldest first.
        self.retired: list[str] = []
        self._seq = 0

    @property
    def current(self) -> Generation | None:
        """The newest published generation (what a swap installs)."""
        return self.generations[-1] if self.generations else None

    def publish(self, result: LiveStudyResult) -> Generation:
        """Snapshot one build into a generation; retire old ones.

        Sequence numbers are strictly monotonic across the publisher's
        lifetime; ``built_at`` must move forward (the incremental
        engine already enforces it per-engine, this re-checks at the
        publishing boundary where multiple engines could converge).
        """
        previous = self.current
        if previous is not None and not (previous.built_at < result.built_at):
            raise LiveError(
                f"generation built at {result.built_at} does not "
                f"post-date the current one at {previous.built_at}"
            )
        index = LinkStatusIndex.build(result.report)
        lag_days = (
            result.built_at.days - previous.built_at.days
            if previous is not None
            else 0.0
        )
        self._seq += 1
        generation = Generation(
            seq=self._seq,
            version=index.version,
            built_at=result.built_at,
            index=index,
            dirty_size=result.dirty.size,
            events_consumed=result.events_consumed,
            lag_days=lag_days,
            rebuild_wall_ms=result.rebuild_wall_ms,
        )
        self.generations.append(generation)
        while len(self.generations) > self.retain:
            retired = self.generations.pop(0)
            self.retired.append(retired.version)
            self.metrics.counter("live.generations.retired").inc()
        self.metrics.counter("live.generations.published").inc()
        self.metrics.gauge("live.generation.seq").set(float(self._seq))
        self.metrics.gauge("live.generation.lag_days").set(lag_days)
        self.metrics.histogram(
            "live.generation.lag_days.dist"
        ).observe(lag_days)
        self.metrics.histogram(
            "live.dirty.size", DIRTY_SIZE_BOUNDS
        ).observe(float(result.dirty.size))
        self.metrics.histogram(
            "live.rebuild.wall_ms", REBUILD_WALL_BOUNDS_MS
        ).observe(result.rebuild_wall_ms)
        return generation

    def build_delta(
        self,
        base: Generation | None = None,
        target: Generation | None = None,
    ) -> GenerationDelta:
        """Diff two retained generations into a verified wire delta.

        Defaults to the most recent publish step: the previous
        retained generation → the current one, which is the delta a
        replica fleet applies (via
        :class:`~repro.service.reconfig.DeltaApply`) to follow the
        publisher without re-shipping the full snapshot. The returned
        delta is content-addressed and verified at build time:
        applying it reproduces the target's content-hash version
        exactly, or :meth:`GenerationDelta.between` raises.
        """
        if target is None:
            target = self.current
        if base is None and len(self.generations) >= 2:
            base = self.generations[-2]
        if base is None or target is None:
            raise LiveError(
                "delta needs two retained generations; "
                f"have {len(self.generations)}"
            )
        delta = GenerationDelta.between(base.index, target.index)
        self.metrics.counter("live.deltas.built").inc()
        self.metrics.histogram(
            "live.delta.bytes", DELTA_BYTES_BOUNDS
        ).observe(float(delta.wire_bytes()))
        self.metrics.gauge("live.delta.savings_ratio").set(
            1.0 - delta.wire_bytes() / snapshot_wire_bytes(target.index)
        )
        return delta

    def history(
        self, url: str, n: int | None = None
    ) -> tuple[UrlGenerationState, ...]:
        """How one URL's status moved over the last ``n`` retained
        generations (all retained when ``n`` is None), oldest first.

        Reads only what retention already pins — no index rebuilds,
        no event-log replay — so it is O(retained) lookups. A
        generation that did not cover the URL contributes a state
        with ``entry=None`` rather than vanishing from the timeline:
        "sampled out at generation 3" is signal, not absence.
        """
        if n is not None and n < 1:
            raise LiveError("history needs at least one generation")
        window = self.generations if n is None else self.generations[-n:]
        return tuple(
            UrlGenerationState(
                seq=generation.seq,
                version=generation.version,
                built_at=generation.built_at,
                entry=generation.index.lookup(url),
            )
            for generation in window
        )
