"""Probe-time semantics for incremental studies.

The whole byte-match contract of :mod:`repro.live` reduces to one
definition: *when was each URL last measured?* A from-scratch study at
instant ``T`` and an incrementally maintained one agree byte-for-byte
exactly when they agree on that map, because every per-record
measurement is a pure function of ``(record, probe instant)`` once the
CDX horizon is frozen at the probe instant
(:class:`~repro.archive.cdx.AsOfCdx`).

The map itself is a pure function of the event history, so it is
independent of *how* the event feed was consumed — one cursor drain or
fifty, the same instants come out:

    probe_time(url, T) = max(epoch(T), last_event_touch(url, T))

``epoch(T)`` is the most recent re-probe boundary at or before ``T``
(a :class:`ReprobePolicy` anchored at the study baseline — generation
zero at the baseline probes everything at the baseline, i.e. *is* the
classic batch study), and ``last_event_touch`` is the instant of the
URL's latest lifecycle event at or before ``T`` (a posting, marking,
or removal invalidates whatever was measured before it).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..clock import SimTime
from ..errors import LiveError

__all__ = ["ReprobePolicy", "last_touch_map", "probe_time_map"]


@dataclass(frozen=True, slots=True)
class ReprobePolicy:
    """How often a quiescent URL is re-measured.

    ``every_days`` spaces re-probe epochs from the study baseline:
    epoch boundaries sit at ``baseline + k * every_days``. Between
    boundaries, a URL with no lifecycle events keeps its cached
    measurement; at each boundary the whole population falls due.
    """

    every_days: float = 30.0

    def __post_init__(self) -> None:
        if self.every_days <= 0:
            raise LiveError("reprobe interval must be positive")

    def epoch(self, baseline: SimTime, at: SimTime) -> SimTime:
        """The most recent epoch boundary at or before ``at``."""
        if at < baseline:
            raise LiveError("cannot compute an epoch before the baseline")
        periods = math.floor((at.days - baseline.days) / self.every_days)
        return SimTime(baseline.days + periods * self.every_days)


def last_touch_map(events, at: SimTime) -> dict[str, SimTime]:
    """Each URL's latest lifecycle-event instant at or before ``at``.

    ``events`` is any iterable of link lifecycle events in emission
    order (the append-only log's order); later events overwrite
    earlier ones, so equal-timestamp events resolve to the last
    emitted — the same answer an incremental consumer gets by folding
    the feed one cursor page at a time.
    """
    touched: dict[str, SimTime] = {}
    for event in events:
        if at < event.at:
            continue
        touched[event.url] = event.at
    return touched


def probe_time_map(
    events,
    urls,
    baseline: SimTime,
    at: SimTime,
    policy: ReprobePolicy,
) -> dict[str, SimTime]:
    """The probe instant of every URL in ``urls`` for a build at ``at``.

    Pure function of the full event history — the from-scratch
    reference study uses this directly, and the golden differential
    tests assert the incremental engine's cursor-folded bookkeeping
    lands on the identical map at any cursor schedule.
    """
    epoch = policy.epoch(baseline, at)
    touched = last_touch_map(events, at)
    times: dict[str, SimTime] = {}
    for url in urls:
        touch = touched.get(url)
        times[url] = touch if touch is not None and epoch < touch else epoch
    return times
