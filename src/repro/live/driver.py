"""Driving a generated world forward past its study instant.

World generation replays history *up to* the study instant and stops.
The live pipeline needs the story to continue: bots keep sweeping,
crawlers keep capturing, editors keep adding, removing, and annotating
references. :class:`WorldDriver` is that continuation — a thin,
deterministic conductor over the world's own actors (the same
:class:`~repro.iabot.bot.InternetArchiveBot`, the same
:class:`~repro.archive.crawler.ArchiveCrawler`, the same
:meth:`~repro.wiki.encyclopedia.Encyclopedia.edit_article` that
generated history), with one hard rule the incremental engine's
correctness rests on: **the clock only moves forward**. Every action
must post-date the previous one, so everything appended to the event
log or the snapshot store lands strictly after any prior build — which
is exactly the invariant that keeps cached outcomes valid
(:mod:`repro.live.incremental`).
"""

from __future__ import annotations

from ..clock import SimTime
from ..errors import LiveError
from ..rng import derive_seed
from ..wiki.templates import dead_link
from ..wiki.wikitext import LinkRef

__all__ = ["WorldDriver"]


def _plain_ref(ref: LinkRef) -> str:
    if ref.cite is not None:
        return ref.cite.render()
    if ref.title:
        return f"[{ref.url} {ref.title}]"
    return f"[{ref.url}]"


class WorldDriver:
    """Deterministic forward evolution of one generated world."""

    def __init__(self, world) -> None:
        self._world = world
        self.now: SimTime = world.study_time
        self._sweep_cursor = 0

    def _advance(self, at: SimTime) -> SimTime:
        if not (self.now < at):
            raise LiveError(
                f"world time must move forward: now {self.now}, "
                f"requested {at}"
            )
        self.now = at
        return at

    # -- the world's own actors ----------------------------------------------------

    def sweep(self, at: SimTime):
        """One bot sweep over the next article shard (rolling pass).

        Uses the same stable title→shard assignment the historical
        replay used, cycling shards across calls — after
        ``sweep_shards`` sweeps every article has been visited once.
        Marks newly dead links (emitting marked events), patches what
        the archive can cover.
        """
        self._advance(at)
        shards = self._world.config.sweep_shards
        shard = self._sweep_cursor % shards
        self._sweep_cursor += 1
        titles = tuple(
            title
            for title in self._world.encyclopedia.titles()
            if derive_seed(0, f"shard:{title}") % shards == shard
        )
        return self._world.bot.run_sweep(at, titles=titles)

    def capture(self, url: str, at: SimTime):
        """One archive capture attempt (may refuse: robots, dead)."""
        self._advance(at)
        return self._world.crawler.capture(url, at)

    # -- editorial actions ---------------------------------------------------------

    def add_link(self, title: str, url: str, at: SimTime) -> None:
        """An editor appends a bare reference to an existing article."""
        self._advance(at)
        encyclopedia = self._world.encyclopedia
        body = encyclopedia.article(title).wikitext
        body += f"* [{url} later addition]\n"
        encyclopedia.edit_article(
            title, at, self._editor(url), body, comment="added reference"
        )

    def mark_dead(self, title: str, url: str, at: SimTime) -> bool:
        """A human annotates one unmarked reference as dead.

        Returns False when the article holds no unmarked, unpatched
        reference to ``url`` (nothing to annotate).
        """
        self._advance(at)
        encyclopedia = self._world.encyclopedia
        article = encyclopedia.article(title)
        text = article.wikitext
        for ref in article.link_refs():
            if ref.url != url or ref.is_marked_dead or ref.archive_url:
                continue
            replacement = _plain_ref(ref) + dead_link(at).render()
            new_text = text[: ref.span[0]] + replacement + text[ref.span[1]:]
            encyclopedia.edit_article(
                title, at, self._editor(url), new_text,
                comment="tagging dead link",
            )
            return True
        return False

    def remove_link(self, title: str, url: str, at: SimTime) -> bool:
        """An editor deletes a reference outright (emits a removal).

        Cuts the reference's whole bullet line when the reference is
        the line's only content; otherwise cuts just the reference
        span. Returns False when the article has no reference to
        ``url``.
        """
        self._advance(at)
        encyclopedia = self._world.encyclopedia
        article = encyclopedia.article(title)
        text = article.wikitext
        for ref in article.link_refs():
            if ref.url != url:
                continue
            start, end = ref.span
            line_start = text.rfind("\n", 0, start) + 1
            line_end = text.find("\n", end)
            line_end = len(text) if line_end == -1 else line_end + 1
            prefix = text[line_start:start]
            suffix = text[end:line_end]
            if prefix.strip() in ("", "*") and suffix.strip() == "":
                new_text = text[:line_start] + text[line_end:]
            else:
                new_text = text[:start] + text[end:]
            encyclopedia.edit_article(
                title, at, self._editor(url), new_text,
                comment="removed reference",
            )
            return True
        return False

    # -- discovery helpers ---------------------------------------------------------

    def permadead_refs(self) -> tuple[tuple[str, str], ...]:
        """Every (title, url) currently rendering "permanent dead link".

        Title-then-url ordered, so callers picking "the k-th one" are
        deterministic across runs.
        """
        found: list[tuple[str, str]] = []
        encyclopedia = self._world.encyclopedia
        for title in encyclopedia.titles():
            for ref in encyclopedia.article(title).link_refs():
                if ref.is_permanently_dead:
                    found.append((title, ref.url))
        return tuple(sorted(found))

    @staticmethod
    def _editor(url: str) -> str:
        return f"Curator{derive_seed(311, url) % 311}"
