"""Incremental studies: re-measure only what the world changed.

:class:`IncrementalStudy` maintains a study result across a *moving*
world. Instead of re-running the full §2.4→§5 pipeline every time the
wiki edits, the archive crawls, or a re-probe epoch passes, it:

1. drains the wiki's lifecycle event feed from its cursor
   (:meth:`~repro.wiki.api.WikiApi.events_since`) and folds the events
   into a last-touch map and a dirty-article set;
2. refreshes the collection incrementally — only event-touched
   articles and category-membership changes are re-mined, everything
   else replays from the per-article cache — then re-samples exactly
   as the batch pipeline would;
3. computes the dirty URL set (new to the sample, re-probe due —
   which includes every event-touched URL — or carrying changed
   record metadata) and runs *only those* through the ordinary
   :class:`~repro.exec.StudyExecutor`, with each record's probe
   instant pinned by :func:`~repro.live.feed.probe_time_map` and its
   CDX horizon frozen there (``bound_archive``);
4. folds cached outcomes for clean records together with the fresh
   ones, in record order, and assembles the report through the same
   :func:`~repro.analysis.study.assemble_report` parent phases a batch
   study uses — with a fresh seeded RNG registry per generation, so
   the soft-404 stream draws identically to a from-scratch run.

The contract (pinned by the golden differential tests in
``tests/test_live.py``): the report of every generation is
byte-identical — same index ``version`` hash, same wire answers — to
:func:`reference_study` run from scratch at the same sim instant,
whatever the cursor schedule and whatever the worker count.

Why cached outcomes stay valid while the world grows: every event and
capture appended after a build happens strictly later than that build
(the :class:`~repro.live.driver.WorldDriver` enforces it; this engine
asserts it), and a clean record's CDX queries are clamped to its probe
instant — so nothing added since can appear inside a cached record's
horizon. The parent-phase aggregations (§3 soft-404 screening, §4
splits, §5 temporal/spatial/typos) query the *current* store on both
sides and are recomputed in full each generation — they are cheap
joins over per-record results, and caching them would entangle the
RNG stream with history.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..analysis.study import Study, assemble_report
from ..backends.stacks import BackendStack
from ..clock import SimTime
from ..dataset.collector import CollectedLink, Collector
from ..dataset.records import LinkRecord
from ..dataset.sampler import sample_iabot_marked
from ..errors import LiveError
from ..exec import StudyExecutor, StudyStats
from ..faults import FaultPlan
from ..obs.trace import Tracer
from ..retry import RetryPolicy
from ..rng import RngRegistry
from ..wiki.api import WikiApi
from .feed import ReprobePolicy, probe_time_map

__all__ = [
    "DirtySet",
    "IncrementalStudy",
    "LiveStudyResult",
    "reference_study",
]


@dataclass(frozen=True, slots=True)
class DirtySet:
    """What one generation actually had to re-measure.

    ``new`` joined the sample this generation; ``reprobe_due`` were
    already sampled but their probe instant moved (an epoch boundary
    passed, or a lifecycle event touched them — any touch since the
    last build strictly advances the probe instant); ``changed`` kept
    their probe instant but their mined record metadata differs
    (defensive — history is append-only, so this is rare); ``removed``
    left the sample and had their cached outcomes evicted.
    """

    new: tuple[str, ...] = ()
    reprobe_due: tuple[str, ...] = ()
    changed: tuple[str, ...] = ()
    removed: tuple[str, ...] = ()

    @property
    def size(self) -> int:
        """URLs re-executed this generation (removals cost nothing)."""
        return len(self.new) + len(self.reprobe_due) + len(self.changed)

    def summary(self) -> str:
        return (
            f"dirty={self.size} (new={len(self.new)}, "
            f"reprobe={len(self.reprobe_due)}, changed={len(self.changed)}) "
            f"removed={len(self.removed)}"
        )


@dataclass(frozen=True)
class LiveStudyResult:
    """One generation's report plus its incremental accounting."""

    report: object
    built_at: SimTime
    ordinal: int
    dirty: DirtySet
    events_consumed: int
    cursor: int
    sample_size: int
    rebuild_wall_ms: float

    def summary(self) -> str:
        return (
            f"gen#{self.ordinal} at {self.built_at}: "
            f"{self.sample_size} records, {self.dirty.summary()}, "
            f"{self.events_consumed} events consumed "
            f"(cursor={self.cursor}), rebuilt in "
            f"{self.rebuild_wall_ms:.1f} ms"
        )


class IncrementalStudy:
    """A study kept current against a forward-moving world."""

    def __init__(
        self,
        world,
        sample_size: int | None = None,
        article_limit: int | None = None,
        seed: int = 20220315,
        policy: ReprobePolicy | None = None,
        faults: FaultPlan | None = None,
        retry_policy: RetryPolicy | None = None,
    ) -> None:
        self._world = world
        self._api = WikiApi(world.encyclopedia)
        self._collector = Collector(world.encyclopedia, world.site_rankings)
        stack = BackendStack(faults=faults, retry_policy=retry_policy)
        self._fetcher = stack.fetcher(world)
        self._cdx = stack.cdx(world.cdx)
        self._retry_policy = retry_policy
        self._seed = seed
        self._k = (
            sample_size
            if sample_size is not None
            else world.config.target_sample
        )
        self._article_limit = article_limit
        self._baseline: SimTime = world.study_time
        self._policy = policy if policy is not None else ReprobePolicy()
        # -- incremental state -------------------------------------------------------
        self._cursor = 0
        self._touched: dict[str, SimTime] = {}
        self._mined: dict[str, list[CollectedLink]] = {}
        self._members: tuple[str, ...] = ()
        #: url -> (record, probe instant, outcome) from the last build.
        self._outcomes: dict[str, tuple[LinkRecord, SimTime, object]] = {}
        self._last_built: SimTime | None = None
        self._ordinal = -1

    @property
    def cursor(self) -> int:
        """Events consumed so far (the feed resume point)."""
        return self._cursor

    @property
    def last_built(self) -> SimTime | None:
        return self._last_built

    # -- event consumption ---------------------------------------------------------

    def _consume_events(self, at: SimTime) -> tuple[int, set[str]]:
        """Drain the feed up to its current cursor; fold touches.

        Returns ``(events consumed, dirty article titles)``. Enforces
        the store-growth invariant: every event must post-date the
        previous build (otherwise a cached outcome could be stale) and
        must not post-date this build's instant (the world must not
        have been driven past the point we are measuring at).
        """
        consumed = 0
        dirty_articles: set[str] = set()
        while True:
            page = self._api.events_since(self._cursor)
            for event in page.events:
                if self._last_built is not None and not (
                    self._last_built < event.at
                ):
                    raise LiveError(
                        f"event at {event.at} does not post-date the "
                        f"previous build at {self._last_built}; cached "
                        "outcomes cannot be trusted"
                    )
                if at < event.at:
                    raise LiveError(
                        f"event at {event.at} post-dates the build "
                        f"instant {at}; drive the build forward instead"
                    )
                self._touched[event.url] = event.at
                dirty_articles.add(event.article_title)
                consumed += 1
            self._cursor = page.next_cursor
            if not page.more:
                return consumed, dirty_articles

    # -- incremental collection ----------------------------------------------------

    def _collect(self, dirty_articles: set[str]) -> list[CollectedLink]:
        """Re-mine only what moved; replay the rest from cache.

        Reproduces :meth:`~repro.dataset.collector.Collector.collect`
        exactly: alphabetical category members, ``article_limit``
        slice, cross-article URL dedup in title order. An article is
        re-mined when an event touched it or when it entered/left the
        sliced member set (leaving matters on re-entry: the cache
        entry may predate edits made while it was outside).
        """
        members = self._collector.category_titles()
        if self._article_limit is not None:
            members = members[: self._article_limit]
        membership_change = set(members) ^ set(self._members)
        for title in members:
            if (
                title not in self._mined
                or title in dirty_articles
                or title in membership_change
            ):
                self._mined[title] = self._collector.mine_article(title)
        self._members = members
        collected: list[CollectedLink] = []
        seen: set[str] = set()
        for title in members:
            for link in self._mined[title]:
                if link.url in seen:
                    continue
                seen.add(link.url)
                collected.append(link)
        return collected

    # -- the build -----------------------------------------------------------------

    def build(
        self,
        at: SimTime,
        executor: StudyExecutor | None = None,
        tracer: Tracer | None = None,
    ) -> LiveStudyResult:
        """Bring the study current to sim instant ``at``.

        Generation zero (nothing cached) measures everything — at the
        baseline it *is* the classic batch study. Later generations
        re-execute only the dirty set and fold.
        """
        wall_start = time.perf_counter()
        if self._last_built is not None and not (self._last_built < at):
            raise LiveError(
                f"builds must move forward: last {self._last_built}, "
                f"requested {at}"
            )
        if at < self._baseline:
            raise LiveError("cannot build before the study baseline")
        executor = executor if executor is not None else StudyExecutor(workers=1)
        if self._retry_policy is not None and executor.retry_policy is None:
            import dataclasses as _dc

            executor = _dc.replace(executor, retry_policy=self._retry_policy)

        consumed, dirty_articles = self._consume_events(at)
        collected = self._collect(dirty_articles)
        sampled = sample_iabot_marked(collected, self._k, seed=self._seed)
        dataset = self._collector.to_dataset(sampled, description="our dataset")
        records = dataset.records

        # Dirty-set computation against the probe-time map.
        epoch = self._policy.epoch(self._baseline, at)
        probe_map: dict[str, SimTime] = {}
        new: list[str] = []
        reprobe: list[str] = []
        changed: list[str] = []
        for record in records:
            touch = self._touched.get(record.url)
            p = touch if touch is not None and epoch < touch else epoch
            probe_map[record.url] = p
            cached = self._outcomes.get(record.url)
            if cached is None:
                new.append(record.url)
            elif cached[1] != p:
                reprobe.append(record.url)
            elif cached[0] != record:
                changed.append(record.url)
        sampled_urls = {record.url for record in records}
        removed = tuple(sorted(set(self._outcomes) - sampled_urls))
        for url in removed:
            del self._outcomes[url]
        dirty = DirtySet(
            new=tuple(new),
            reprobe_due=tuple(reprobe),
            changed=tuple(changed),
            removed=removed,
        )
        dirty_urls = set(new) | set(reprobe) | set(changed)

        # Delta execution: only dirty records run the sharded stage.
        dirty_records = [r for r in records if r.url in dirty_urls]
        stats = StudyStats(workers=executor.resolved_workers)
        with stats.phase("probe+census", tracer=tracer):
            stage = executor.execute(
                dirty_records, self._fetcher, self._cdx, at, stats, tracer,
                at_overrides=probe_map, bound_archive=True,
            )
        stats.shards = stage.shards
        stats.registry.counter("live.dirty.executed").inc(len(dirty_records))
        stats.registry.counter("live.clean.folded").inc(
            len(records) - len(dirty_records)
        )

        # Fold: fresh outcomes for dirty records, cached for clean —
        # in record order, seeding the stage's fetch memo with cached
        # probe results so the soft-404 phase's re-fetches hit the
        # memo exactly as they would after a from-scratch stage.
        fresh = {o.record.url: o for o in stage.outcomes}
        merged = []
        for record in records:
            outcome = fresh.get(record.url)
            if outcome is None:
                outcome = self._outcomes[record.url][2]
                stage.fetcher.seed(
                    record.url, probe_map[record.url], outcome.probe.result
                )
            merged.append(outcome)
            self._outcomes[record.url] = (
                record, probe_map[record.url], outcome,
            )

        report = assemble_report(
            dataset=dataset,
            outcomes=merged,
            fetcher=stage.fetcher,
            cdx=stage.cdx,
            at=at,
            rngs=RngRegistry(self._seed),
            stats=stats,
            tracer=tracer,
            at_overrides=probe_map,
        )
        self._last_built = at
        self._ordinal += 1
        return LiveStudyResult(
            report=report,
            built_at=at,
            ordinal=self._ordinal,
            dirty=dirty,
            events_consumed=consumed,
            cursor=self._cursor,
            sample_size=len(records),
            rebuild_wall_ms=(time.perf_counter() - wall_start) * 1000.0,
        )


def reference_study(
    world,
    at: SimTime,
    sample_size: int | None = None,
    article_limit: int | None = None,
    seed: int = 20220315,
    policy: ReprobePolicy | None = None,
    faults: FaultPlan | None = None,
    retry_policy: RetryPolicy | None = None,
) -> Study:
    """The from-scratch study an incremental build must byte-match.

    Collects and samples against the world's *current* state, computes
    the probe-time map from the *full* event log, and configures a
    classic :class:`~repro.analysis.study.Study` in the live posture
    (per-record probe instants, archive horizon frozen at each). The
    world must not have been driven past ``at``.
    """
    policy = policy if policy is not None else ReprobePolicy()
    collector = Collector(world.encyclopedia, world.site_rankings)
    collected = collector.collect(article_limit=article_limit)
    k = sample_size if sample_size is not None else world.config.target_sample
    sampled = sample_iabot_marked(collected, k, seed=seed)
    dataset = collector.to_dataset(sampled, description="our dataset")
    probe_map = probe_time_map(
        world.encyclopedia.events.events(),
        [record.url for record in dataset.records],
        world.study_time,
        at,
        policy,
    )
    stack = BackendStack(faults=faults, retry_policy=retry_policy)
    return Study(
        records=dataset.records,
        fetcher=stack.fetcher(world),
        cdx=stack.cdx(world.cdx),
        at=at,
        rngs=RngRegistry(seed),
        retry_policy=retry_policy,
        at_overrides=probe_map,
        bound_archive=True,
    )
