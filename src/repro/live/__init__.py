"""repro.live — incremental studies and zero-downtime generations.

The batch pipeline measures a frozen instant; this package keeps the
measurement *current* as the world moves. Four pieces:

- :mod:`repro.live.feed` — the probe-time semantics (re-probe epochs +
  event touches) that make "incremental equals from-scratch" a
  well-defined, byte-exact contract;
- :mod:`repro.live.incremental` — :class:`IncrementalStudy`, which
  drains the wiki's event cursor, computes the dirty set, re-executes
  only that through the ordinary executor, and folds;
- :mod:`repro.live.publisher` — :class:`GenerationPublisher`, turning
  each build into a content-hash-versioned
  :class:`~repro.service.index.LinkStatusIndex` generation with
  retention and freshness telemetry;
- :mod:`repro.live.driver` — :class:`WorldDriver`, the deterministic
  forward evolution of a generated world (sweeps, captures, edits)
  that the demos, benchmarks, and tests script.

Serving tiers adopt generations via the ``swaps=`` schedule on
:meth:`LinkStatusService.serve <repro.service.server.
LinkStatusService.serve>` and :meth:`ClusterService.serve
<repro.service.cluster.ClusterService.serve>` — atomically, as
rolling drained cutovers, or as :class:`GenerationPublisher.
build_delta` deltas through the :mod:`repro.service.reconfig` plane.
"""

from .driver import WorldDriver
from .feed import ReprobePolicy, last_touch_map, probe_time_map
from .incremental import (
    DirtySet,
    IncrementalStudy,
    LiveStudyResult,
    reference_study,
)
from .publisher import Generation, GenerationPublisher, UrlGenerationState

__all__ = [
    "DirtySet",
    "Generation",
    "GenerationPublisher",
    "IncrementalStudy",
    "LiveStudyResult",
    "ReprobePolicy",
    "UrlGenerationState",
    "WorldDriver",
    "last_touch_map",
    "probe_time_map",
    "reference_study",
]
