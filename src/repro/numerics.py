"""Numeric backend selection and dual-backend primitive kernels.

The analysis tier's columnar kernels (:mod:`repro.analysis.columnar`,
:mod:`repro.textsim.shingles`, :mod:`repro.reporting.cdf`) all run on
one of two interchangeable numeric backends:

- ``numpy`` — vectorised array kernels, used automatically when numpy
  is importable (install the extra: ``pip install 'repro[numpy]'``);
- ``stdlib`` — pure-Python fallbacks over ``array``/``bytes``/ints,
  used when numpy is absent so a clean ``pip install repro`` works
  end-to-end (the archive crawler's MinHash sketching included).

The backend is selected **once at import time**; every kernel pair is
proven value-identical by the differential tests, so the choice affects
wall time only — never a single byte of any report.

Environment override::

    REPRO_ANALYSIS_BACKEND=stdlib   # force the pure-Python kernels
    REPRO_ANALYSIS_BACKEND=numpy    # require numpy (error if missing)

This module sits below both ``repro.textsim`` and ``repro.analysis``
on purpose: it imports nothing from ``repro``, so either side can use
it without creating an import cycle.
"""

from __future__ import annotations

import os
from bisect import bisect_right
from typing import Iterable, Sequence

__all__ = [
    "BACKEND",
    "BACKEND_ENV",
    "backend_name",
    "force_backend",
    "get_numpy",
    "is_sorted",
    "ks_distance",
    "sorted_floats",
]

#: Environment variable that forces a backend choice at import time.
BACKEND_ENV = "REPRO_ANALYSIS_BACKEND"

_STDLIB_NAMES = ("stdlib", "python", "pure")


def _select():
    forced = os.environ.get(BACKEND_ENV, "").strip().lower()
    if forced and forced != "numpy" and forced not in _STDLIB_NAMES:
        raise ValueError(
            f"{BACKEND_ENV} must be 'stdlib' or 'numpy', got {forced!r}"
        )
    if forced in _STDLIB_NAMES:
        return None
    try:
        import numpy
    except ImportError:
        if forced == "numpy":
            raise ImportError(
                f"{BACKEND_ENV}=numpy but numpy is not installed; "
                "install the extra: pip install 'repro[numpy]'"
            ) from None
        return None
    return numpy


_np = _select()

#: Backend selected at import time ("numpy" or "stdlib"). Snapshot of
#: the import-time decision; :func:`backend_name` reflects any later
#: :func:`force_backend` override.
BACKEND: str = "numpy" if _np is not None else "stdlib"


def get_numpy():
    """The active numpy module, or ``None`` on the stdlib backend."""
    return _np


def backend_name() -> str:
    """Name of the currently active backend."""
    return "numpy" if _np is not None else "stdlib"


def force_backend(name: str) -> str:
    """Switch the active backend at runtime; returns the prior name.

    Exists for the differential tests and benchmarks, which prove the
    two backends value-identical inside one process. Production code
    should rely on the import-time selection (or :data:`BACKEND_ENV`).
    """
    global _np
    prior = backend_name()
    name = name.strip().lower()
    if name in _STDLIB_NAMES:
        _np = None
    elif name == "numpy":
        import numpy  # raises ImportError if the extra is missing

        _np = numpy
    else:
        raise ValueError(f"unknown backend {name!r}")
    return prior


# -- float-sample kernels (ECDF construction, KS distance) -----------------------


def sorted_floats(sample: Iterable[float]) -> tuple[float, ...]:
    """``sample`` as a sorted tuple of floats (ECDF backing storage).

    Value-identical across backends: both produce the ascending
    multiset of ``float(v)`` for every ``v`` in ``sample``.
    """
    if _np is None:
        return tuple(sorted(float(v) for v in sample))
    arr = _np.asarray(list(sample), dtype=_np.float64)
    arr.sort()
    return tuple(arr.tolist())


def is_sorted(values: Sequence[float]) -> bool:
    """Whether ``values`` is non-decreasing."""
    if len(values) < 2:
        return True
    if _np is None:
        return not any(b < a for a, b in zip(values, values[1:]))
    arr = _np.asarray(values, dtype=_np.float64)
    return bool((arr[1:] >= arr[:-1]).all())


def ks_distance(
    a_values: Sequence[float], b_values: Sequence[float]
) -> float:
    """Kolmogorov-Smirnov statistic between two *sorted* samples.

    ``max |F_a(x) - F_b(x)|`` over the union grid of both samples —
    exactly the per-grid-point bisect formulation, vectorised. Either
    sample being empty is the caller's special case (see
    :meth:`repro.reporting.cdf.Ecdf.ks_distance`).
    """
    n_a, n_b = len(a_values), len(b_values)
    if _np is None:
        grid = sorted(set(a_values) | set(b_values))
        return max(
            abs(
                bisect_right(a_values, x) / n_a
                - bisect_right(b_values, x) / n_b
            )
            for x in grid
        )
    a = _np.asarray(a_values, dtype=_np.float64)
    b = _np.asarray(b_values, dtype=_np.float64)
    grid = _np.unique(_np.concatenate((a, b)))
    f_a = _np.searchsorted(a, grid, side="right") / n_a
    f_b = _np.searchsorted(b, grid, side="right") / n_b
    return float(_np.abs(f_a - f_b).max())
