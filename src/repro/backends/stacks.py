"""The study's concrete backend stacks, assembled from the layer kernel.

Three backends carry the whole measurement pipeline — the live-web
fetch (§3 probes, soft-404 re-fetches), the CDX index (§4.2 sibling
validation, §5.2 coverage census), and the Availability API (IABot's
bounded lookups). This module lifts each onto the
:mod:`repro.backends.core` layers:

- :class:`FetchBackend` — ``cache -> trace -> retry -> Fetcher``,
  memoized on ``(url, at)``: a fetch over the simulated web is a pure
  function of the URL and the instant, so replaying an entry is
  indistinguishable from re-fetching.
- :class:`CdxBackend` — ``cache -> trace -> retry -> CdxApi`` with
  *scope normalization* as the backend's request-rewrite: a DIRECTORY /
  HOST / DOMAIN query is keyed on the derived scope (the directory,
  the hostname, the registrable domain), with ``exclude_self`` applied
  as a post-filter above the cache. Two links in the same directory
  therefore share one backend query even though their ``CdxQuery.url``
  fields differ — which is exactly where the paper's repetition lives.
- :class:`BackendStack` — the deterministic builder: one
  (fault plan, retry policy) pair assembles every stack the study
  needs, replacing the ad-hoc wrapper branching PRs 1-3 accumulated.

Both facades present the read interfaces of the backends they wrap
(``fetch``/``query``/``archived_urls`` plus hit/miss/retry counters),
so every analysis accepts them in place of the raw clients.
"""

from __future__ import annotations

from dataclasses import replace as dataclass_replace
from dataclasses import dataclass

from ..archive.cdx import CdxApi, CdxQuery, MatchType
from ..clock import SimTime
from ..faults.inject import faulty_cdx, faulty_fetcher
from ..faults.plan import FaultPlan
from ..net.fetch import FetchResult, Fetcher
from ..obs.metrics import MetricsRegistry
from ..obs.trace import Tracer
from ..retry import RetryCounters, RetryPolicy
from ..urls.parse import ParsedUrl, parse_url
from ..urls.psl import default_psl
from .core import (
    MISS,
    CacheLayer,
    Op,
    RetryLayer,
    SpanSpec,
    TraceLayer,
    MetricsLayer,
    validate_stack_order,
)

__all__ = [
    "BackendStack",
    "CdxBackend",
    "FetchBackend",
    "normalize_scope_query",
]

#: Scopes whose candidate set is independent of the query URL itself.
_NORMALIZABLE = (MatchType.DIRECTORY, MatchType.HOST, MatchType.DOMAIN)


def normalize_scope_query(request: CdxQuery) -> CdxQuery | None:
    """A URL-independent base query, or ``None`` when not sharable.

    Limited queries are never normalized: a limit interacts with the
    exclusion filter, so only the verbatim request is safe to memoize.
    Any URL inside a scope derives the same candidate set, and the
    scope's own root URL is one such URL — so it canonically keys the
    memo for every link sharing the scope.
    """
    if request.limit or request.match_type not in _NORMALIZABLE:
        return None
    parsed = parse_url(request.url)
    if request.match_type is MatchType.DIRECTORY:
        scope = parsed.directory
    elif request.match_type is MatchType.HOST:
        scope = f"http://{parsed.host_lower}/"
    else:
        domain = default_psl().registrable_domain(parsed.host_lower)
        scope = f"http://{domain}/"
    return dataclass_replace(request, url=scope, exclude_self=False)


class FetchBackend:
    """The live-web fetch stack: ``cache -> trace -> retry -> base``.

    Replaces the PR-1 ``CachingFetcher``. The §3 soft-404 detector
    re-fetches every 200-status URL the live probe just fetched; with
    the memo (optionally pre-seeded from worker probe results) those
    duplicate fetches never touch the network.

    ``retry_policy`` retries fetch backends that *raise* transiently.
    The standard :class:`~repro.net.fetch.Fetcher` never does — it
    owns its own retry legs and folds failures into the
    :class:`~repro.net.fetch.FetchResult` — so the layer stays inert
    for the common stack; it exists for fetch-shaped backends that
    surface transport errors as exceptions.

    A ``tracer`` records one ``kind="backend.fetch"`` span per memo
    miss — the fetches that actually touched the (simulated) network,
    with the resulting Figure-4 outcome attached. Memo hits are
    deliberately span-free (the trace-below-cache law).
    """

    def __init__(
        self,
        inner: Fetcher,
        retry_policy: RetryPolicy | None = None,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.inner = inner
        self.retry_counters = RetryCounters()
        base = Op("net.fetch", lambda req: inner.fetch(req[0], req[1]))
        retry = RetryLayer(
            base,
            policy=retry_policy,
            key_fn=lambda req: f"fetch:{req[0]}@{req[1].days}",
            counters=self.retry_counters,
        )
        trace = TraceLayer(
            retry,
            tracer,
            SpanSpec(
                kind="backend.fetch",
                name_fn=lambda req: "fetch",
                attrs_fn=lambda req: {"sim": req[1], "url": str(req[0])},
                result_attrs_fn=lambda result: {
                    "outcome": result.outcome.value
                },
            ),
            retry_counters=self.retry_counters,
        )
        self._cache = CacheLayer(
            trace,
            key_fn=lambda req: (str(req[0]), req[1].days),
            metrics=metrics,
            metric_prefix="backend.fetch",
        )
        validate_stack_order(self._cache)

    # -- Fetcher interface -------------------------------------------------------

    @property
    def hits(self) -> int:
        """Fetches answered from the memo."""
        return self._cache.hits

    @property
    def misses(self) -> int:
        """Fetches that reached the wrapped backend."""
        return self._cache.misses

    @property
    def fetch_count(self) -> int:
        """Logical fetches served (memo hits included)."""
        return self._cache.hits + self._cache.misses

    @property
    def hit_rate(self) -> float:
        """Share of fetches answered from the memo."""
        return self._cache.hit_rate

    def fetch(self, url: str | ParsedUrl, at: SimTime) -> FetchResult:
        """Same result as the wrapped fetcher, memoized on ``(url, at)``."""
        return self._cache.call((url, at))

    def seed(self, url: str, at: SimTime, result: FetchResult) -> None:
        """Pre-populate the memo with an already-observed result.

        Used by the parallel executor to hand worker probe results to
        the parent process, so follow-up phases hit instead of
        re-fetching. Seeding counts as neither hit nor miss.
        """
        self._cache.seed((str(url), at.days), result)


class CdxBackend:
    """The CDX stack: ``cache -> trace -> retry -> base``, normalized.

    Replaces the PR-1 ``CachingCdxApi``. Presents the same read
    interface (``query``, ``archived_urls``, ``query_count``), so
    every analysis accepts it in place of the raw API. ``hits`` /
    ``misses`` count memo outcomes; each miss is one backend query.

    This stack is also where archive-side resilience lives: the retry
    layer re-issues backend queries that fail transiently (a
    :class:`~repro.errors.CdxRateLimited` window, a 5xx burst from a
    fault-injected backend), and because the cache sits *above* it, a
    masked transient is also a memo entry — one recovery serves every
    repeat of the query (the cache-above-retry law).
    """

    def __init__(
        self,
        inner: CdxApi,
        retry_policy: RetryPolicy | None = None,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.inner = inner
        self.retry_counters = RetryCounters()
        base = Op(
            "cdx",
            lambda req: (
                inner.query(req[1])
                if req[0] == "query"
                else inner.archived_urls(req[1])
            ),
        )
        retry = RetryLayer(
            base,
            policy=retry_policy,
            key_fn=lambda req: f"cdx.{req[0]}:{req[1]!r}",
            counters=self.retry_counters,
        )
        trace = TraceLayer(
            retry,
            tracer,
            SpanSpec(
                kind="backend.cdx",
                name_fn=lambda req: (
                    "cdx.query" if req[0] == "query" else "cdx.archived_urls"
                ),
                attrs_fn=lambda req: {
                    "url": req[1].url,
                    "match": req[1].match_type.name,
                },
                set_retries=True,
            ),
            retry_counters=self.retry_counters,
        )
        self._cache = CacheLayer(
            trace,
            key_fn=lambda req: req,
            metrics=metrics,
            metric_prefix="backend.cdx",
        )
        validate_stack_order(self._cache)

    # -- CdxApi interface --------------------------------------------------------

    @property
    def hits(self) -> int:
        """Queries answered from the memo."""
        return self._cache.hits

    @property
    def misses(self) -> int:
        """Queries that reached the wrapped backend."""
        return self._cache.misses

    @property
    def query_count(self) -> int:
        """Logical queries served (memo hits included)."""
        return self._cache.hits + self._cache.misses

    @property
    def hit_rate(self) -> float:
        """Share of queries answered from the memo."""
        return self._cache.hit_rate

    def query(self, request: CdxQuery):
        """Same rows as the wrapped API, memoized under the scope key."""
        base = normalize_scope_query(request)
        if base is None:
            return self._cache.call(("query", request))
        rows = self._cache.call(("query", base))
        if request.exclude_self:
            rows = tuple(row for row in rows if row.url != request.url)
        return rows

    def archived_urls(self, request: CdxQuery):
        """Same collapsed URL list as the wrapped API, memoized."""
        base = normalize_scope_query(request)
        if base is None:
            return self._cache.call(("urls", request))
        urls = self._cache.call(("urls", base))
        if request.exclude_self:
            urls = tuple(url for url in urls if url != request.url)
        return urls


@dataclass(frozen=True)
class BackendStack:
    """Deterministic builder: one resilience posture, every stack.

    Holds the study client's two cross-cutting decisions — which fault
    plan sabotages the backends (``None``: a healthy world) and which
    retry policy arms the clients against transients (``None``: the
    paper's retry-less configuration) — and assembles each concrete
    stack from them, in the canonical layer order. This is the single
    replacement for the ad-hoc wrapper branching that used to live in
    ``Study.from_world`` and the exec layer.
    """

    faults: FaultPlan | None = None
    retry_policy: RetryPolicy | None = None

    def fetcher(self, world) -> Fetcher:
        """The live-web probe client for a generated world.

        Under a plan with active net channels the fetcher's DNS and
        origin legs are wrapped in the plan's injectors (world
        generation itself stays fault-free, so the ground truth is
        shared with a clean run — the differential harness depends on
        that); otherwise the world's own fetcher is used, re-armed
        with the retry policy when one is set.
        """
        if self.faults is not None and self.faults.net_active:
            return faulty_fetcher(
                world.web, self.faults, retry_policy=self.retry_policy
            )
        if self.retry_policy is not None:
            return Fetcher(
                world.web.dns, world.web, retry_policy=self.retry_policy
            )
        return world.fetcher()

    def cdx(self, cdx: CdxApi):
        """The (possibly sabotaged) CDX API for a study."""
        return faulty_cdx(cdx, self.faults) if self.faults is not None else cdx

    def availability(self, api):
        """The (possibly sabotaged) Availability API for a study."""
        from ..faults.inject import faulty_availability

        return (
            faulty_availability(api, self.faults)
            if self.faults is not None
            else api
        )

    def fetch_backend(
        self,
        fetcher: Fetcher,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> FetchBackend:
        """A memoizing fetch stack over ``fetcher``, policy applied."""
        return FetchBackend(
            fetcher,
            retry_policy=self.retry_policy,
            tracer=tracer,
            metrics=metrics,
        )

    def cdx_backend(
        self,
        cdx: CdxApi,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> CdxBackend:
        """A memoizing CDX stack over ``cdx``, policy applied."""
        return CdxBackend(
            cdx,
            retry_policy=self.retry_policy,
            tracer=tracer,
            metrics=metrics,
        )
