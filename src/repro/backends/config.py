"""One resilience/observability configuration for every entry point.

``scripts/full_run.py``, ``python -m repro``, and the benchmark
fixtures used to each re-declare the same six knobs (fault plan, fault
rate, fault seed, retry budget, trace path, metrics path) with their
own argparse blocks and env fallbacks. :class:`StackConfig` is the
single home: one frozen dataclass, one ``add_stack_args`` /
``from_args`` pair for CLIs, one ``from_env`` for fixture-style
consumers, and builders that turn the knobs into the live objects
(:class:`~repro.faults.plan.FaultPlan`,
:class:`~repro.retry.RetryPolicy`, :class:`~repro.obs.trace.Tracer`,
a :class:`~repro.backends.stacks.BackendStack`).
"""

from __future__ import annotations

import argparse
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Mapping

from ..faults.plan import FaultPlan
from ..obs.trace import Tracer
from ..retry import DEFAULT_MASKING_POLICY, RetryPolicy
from .stacks import BackendStack

__all__ = ["StackConfig", "PLAN_FACTORIES"]

#: The named transient-fault plans an entry point can request.
PLAN_FACTORIES = {
    "net": FaultPlan.transient_net,
    "archive": FaultPlan.transient_archive,
    "everywhere": FaultPlan.transient_everywhere,
}


@dataclass(frozen=True)
class StackConfig:
    """The six cross-cutting knobs shared by every entry point.

    A rate of 0 means no injection and ``retries=0`` reproduces the
    paper's no-retry clients exactly, so the default config is the
    clean, silent stack — entry points that never expose the flags
    behave as before.
    """

    fault_plan: str = "everywhere"
    fault_rate: float = 0.0
    fault_seed: int = 0
    retries: int = 0
    trace: Path | None = None
    metrics_json: Path | None = None

    # -- construction ------------------------------------------------------------

    @staticmethod
    def add_stack_args(parser: argparse.ArgumentParser) -> None:
        """Register the shared flags (with env-var defaults) on ``parser``."""
        env = os.environ
        parser.add_argument(
            "--fault-plan",
            choices=sorted(PLAN_FACTORIES),
            default=env.get("REPRO_FAULT_PLAN", "everywhere"),
            help="which transient fault channels to activate "
            "(with --fault-rate; REPRO_FAULT_PLAN)",
        )
        parser.add_argument(
            "--fault-rate",
            type=float,
            default=float(env.get("REPRO_FAULT_RATE", "0.0")),
            help="per-key fault probability; 0 disables injection "
            "(REPRO_FAULT_RATE)",
        )
        parser.add_argument(
            "--fault-seed",
            type=int,
            default=int(env.get("REPRO_FAULT_SEED", "0")),
            help="fault plan seed (replayable chaos; REPRO_FAULT_SEED)",
        )
        parser.add_argument(
            "--retries",
            type=int,
            default=int(env.get("REPRO_RETRIES", "0")),
            help="retry budget per operation; 0 reproduces the paper's "
            "no-retry clients exactly (REPRO_RETRIES)",
        )
        parser.add_argument(
            "--trace",
            type=Path,
            default=None,
            metavar="PATH",
            help="append the run's span tree as JSONL "
            "(see scripts/trace_report.py)",
        )
        parser.add_argument(
            "--metrics-json",
            type=Path,
            default=None,
            metavar="PATH",
            help="dump the run's metrics registry as JSON",
        )

    @classmethod
    def from_args(cls, args: argparse.Namespace) -> "StackConfig":
        """The config an ``add_stack_args`` parser produced."""
        return cls(
            fault_plan=args.fault_plan,
            fault_rate=args.fault_rate,
            fault_seed=args.fault_seed,
            retries=args.retries,
            trace=args.trace,
            metrics_json=args.metrics_json,
        )

    @classmethod
    def from_env(
        cls, environ: Mapping[str, str] | None = None
    ) -> "StackConfig":
        """The config for flag-less consumers (benchmark fixtures)."""
        env = os.environ if environ is None else environ
        return cls(
            fault_plan=env.get("REPRO_FAULT_PLAN", "everywhere"),
            fault_rate=float(env.get("REPRO_FAULT_RATE", "0.0")),
            fault_seed=int(env.get("REPRO_FAULT_SEED", "0")),
            retries=int(env.get("REPRO_RETRIES", "0")),
        )

    # -- builders ----------------------------------------------------------------

    def build_faults(self) -> FaultPlan | None:
        """The configured fault plan, or ``None`` when the rate is 0."""
        if self.fault_rate <= 0.0:
            return None
        return PLAN_FACTORIES[self.fault_plan](
            rate=self.fault_rate, seed=self.fault_seed
        )

    def build_retry_policy(self) -> RetryPolicy | None:
        """The configured retry policy, or ``None`` for the no-retry bot.

        A non-zero budget inherits the masking policy's backoff shape
        (capped exponential) with the requested depth.
        """
        if self.retries <= 0:
            return None
        return RetryPolicy(
            max_retries=self.retries,
            base_delay_ms=DEFAULT_MASKING_POLICY.base_delay_ms,
            multiplier=DEFAULT_MASKING_POLICY.multiplier,
            max_delay_ms=DEFAULT_MASKING_POLICY.max_delay_ms,
            budget_ms=DEFAULT_MASKING_POLICY.budget_ms,
        )

    def build_tracer(self) -> Tracer | None:
        """A tracer when a trace path was requested, else ``None``."""
        return Tracer() if self.trace is not None else None

    def build_stack(self) -> BackendStack:
        """The deterministic backend-stack builder for this config."""
        return BackendStack(
            faults=self.build_faults(),
            retry_policy=self.build_retry_policy(),
        )
