"""The backend middleware kernel: one call protocol, composable layers.

Every expensive backend the study touches — the live-web fetch, the
CDX index, the Availability API — is hammered through the same four
cross-cutting concerns: tracing, metrics, exact memoization, and
retry-with-backoff, with deterministic fault injection underneath when
a chaos plan is armed. PRs 1-3 grew a separate hand-written wrapper
family per backend; this module is the single replacement. A backend
is anything satisfying :class:`Backend` — ``call(req) -> resp`` — and
each concern is a :class:`Layer` that wraps a backend and *is* one, so
stacks compose by construction.

Canonical layer order (outermost first)::

    metrics -> cache -> trace -> retry -> fault -> base

and the laws the order encodes (enforced by
:func:`validate_stack_order` and pinned by property tests):

- **cache above retry**: a retry-masked transient is a cache *miss
  exactly once* — the recovery is memoized, so every repeat of the
  request is served without touching the retry loop again;
- **trace below cache**: a span records a call that actually reached
  the backend; memo hits are deliberately span-free (the trace answers
  "where did backend time go", and a hit costs none);
- **retry above fault**: the retry loop must re-enter the fault gate
  so a transient fault can clear on a later attempt;
- **metrics/trace anywhere**: both are observers — permuting them
  never changes a response (a law the property tests replay).

Nothing in this module knows about any concrete backend. Request
identity (cache keys, retry keys, fault keys, span attributes) is
injected per stack as plain functions — see :mod:`repro.backends.stacks`
for the study's three concrete assemblies.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Generic, Protocol, TypeVar, runtime_checkable

from ..obs.metrics import MetricsRegistry
from ..obs.trace import Tracer
from ..retry import RetryCounters, RetryPolicy, call_with_retry

Req = TypeVar("Req")
Resp = TypeVar("Resp")

__all__ = [
    "Backend",
    "CacheLayer",
    "FaultGate",
    "FaultLayer",
    "Layer",
    "MetricsLayer",
    "Op",
    "RetryLayer",
    "SpanSpec",
    "TraceLayer",
    "layer_names",
    "validate_stack_order",
]


@runtime_checkable
class Backend(Protocol[Req, Resp]):
    """Anything that answers one typed request: ``call(req) -> resp``."""

    def call(self, req: Req) -> Resp:
        """Answer one request (may raise; layers decide what that means)."""
        ...


@dataclass
class Op(Generic[Req, Resp]):
    """The base of every stack: a named callable lifted to a Backend."""

    name: str
    fn: Callable[[Req], Resp]
    #: Requests that actually reached this op (the ground-truth count
    #: the cache/retry laws are stated against).
    calls: int = 0

    def call(self, req: Req) -> Resp:
        self.calls += 1
        return self.fn(req)


class Layer(Generic[Req, Resp]):
    """A backend wrapping another backend. Subclasses override call()."""

    #: Short kebab-case layer kind, used by :func:`validate_stack_order`.
    layer_kind = "identity"

    def __init__(self, inner: Backend[Req, Resp]) -> None:
        self.inner = inner

    def call(self, req: Req) -> Resp:
        return self.inner.call(req)


def layer_names(stack: Backend) -> list[str]:
    """Outer-to-inner ``layer_kind`` chain of a composed stack."""
    names: list[str] = []
    current: Any = stack
    while isinstance(current, Layer):
        names.append(current.layer_kind)
        current = current.inner
    names.append("base")
    return names


#: The canonical outer-to-inner order; observers (metrics/trace) may sit
#: anywhere, the behavioural layers must respect this relative order.
_BEHAVIOURAL_ORDER = ("cache", "retry", "fault", "base")


def validate_stack_order(stack: Backend) -> None:
    """Raise ValueError unless the stack respects the canonical order.

    Observer layers (``metrics``, ``trace``) are order-free by law —
    they never change a response — so only the relative order of the
    behavioural layers (cache above retry above fault above base) is
    checked. Duplicate behavioural layers are rejected too: two caches
    or two retry loops in one stack is always a composition mistake.
    """
    behavioural = [
        name
        for name in layer_names(stack)
        if name in _BEHAVIOURAL_ORDER or name not in ("metrics", "trace", "identity")
    ]
    unknown = [n for n in behavioural if n not in _BEHAVIOURAL_ORDER]
    if unknown:
        raise ValueError(f"unknown layer kinds in stack: {unknown}")
    if len(set(behavioural)) != len(behavioural):
        raise ValueError(f"duplicate behavioural layers in stack: {behavioural}")
    ranks = [_BEHAVIOURAL_ORDER.index(name) for name in behavioural]
    if ranks != sorted(ranks):
        raise ValueError(
            "stack violates the canonical layer order "
            f"{' -> '.join(_BEHAVIOURAL_ORDER)}: got {' -> '.join(behavioural)}"
        )


_MISS = object()  # sentinel: distinguishes "absent" from a cached None


class CacheLayer(Layer[Req, Resp]):
    """Exact memoization, optionally bounded (LRU) and aged (TTL).

    The unbounded, TTL-free configuration is the study's exec-layer
    memo: backends there are pure given their request, so replaying an
    entry is indistinguishable from re-calling. ``capacity`` adds LRU
    eviction and ``ttl_ms`` per-entry expiry on a *virtual* clock
    (milliseconds passed by the caller), which is the service-layer
    :class:`~repro.service.cache.ResultCache` configuration — one
    cache implementation, two deployment postures.

    Args:
        inner: the wrapped backend (``None`` for imperative use through
            :meth:`lookup`/:meth:`store` only, as the service does).
        key_fn: request -> hashable cache key (identity when omitted).
        capacity: maximum live entries; ``None`` means unbounded.
        ttl_ms: entry lifetime on the caller's virtual clock; ``None``
            never expires.
        metrics: optional registry mirroring the counters (and a size
            gauge) under ``{metric_prefix}.*``.
    """

    layer_kind = "cache"

    def __init__(
        self,
        inner: Backend[Req, Resp] | None = None,
        key_fn: Callable[[Req], Any] | None = None,
        capacity: int | None = None,
        ttl_ms: float | None = None,
        metrics: MetricsRegistry | None = None,
        metric_prefix: str = "cache",
    ) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        if ttl_ms is not None and ttl_ms <= 0:
            raise ValueError("ttl_ms must be positive (or None)")
        super().__init__(inner)  # type: ignore[arg-type]
        self._key_fn = key_fn if key_fn is not None else lambda req: req
        self.capacity = capacity
        self.ttl_ms = ttl_ms
        self._metrics = metrics
        self._prefix = metric_prefix
        self._entries: OrderedDict[Any, tuple[Any, float]] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.expirations = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Any) -> bool:
        return key in self._entries

    @property
    def hit_rate(self) -> float:
        """Share of lookups served from the memo."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def _count(self, name: str) -> None:
        if self._metrics is not None:
            self._metrics.counter(f"{self._prefix}.{name}").inc()

    # -- imperative interface (the service posture) ------------------------------

    def lookup(self, key: Any, now_ms: float = 0.0) -> Any:
        """The stored value for ``key``, or the module MISS sentinel.

        A hit refreshes the key's LRU position (but not its TTL —
        entries age from their store time, so a hot key still ages out
        on schedule).
        """
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            self._count("misses")
            return _MISS
        value, stored_at = entry
        if self.ttl_ms is not None and now_ms - stored_at >= self.ttl_ms:
            del self._entries[key]
            self.expirations += 1
            self._count("expirations")
            self.misses += 1
            self._count("misses")
            return _MISS
        if self.capacity is not None:
            self._entries.move_to_end(key)
        self.hits += 1
        self._count("hits")
        return value

    def store(self, key: Any, value: Any, now_ms: float = 0.0) -> None:
        """Store ``value`` under ``key`` as of ``now_ms``."""
        if self.capacity is not None and key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = (value, now_ms)
        if self.capacity is not None:
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
                self._count("evictions")
        if self._metrics is not None:
            self._metrics.gauge(f"{self._prefix}.size").set(len(self._entries))

    def seed(self, key: Any, value: Any) -> None:
        """Pre-populate the memo (counts as neither hit nor miss).

        Used by the parallel executor to hand worker probe results to
        the parent process, so follow-up phases hit instead of
        re-calling the backend. An existing entry is never displaced.
        """
        if key not in self._entries:
            self._entries[key] = (value, 0.0)

    # -- backend interface -------------------------------------------------------

    def call(self, req: Req) -> Resp:
        key = self._key_fn(req)
        value = self.lookup(key)
        if value is _MISS:
            value = self.inner.call(req)
            self.store(key, value)
        return value


#: Public alias for the cache-miss sentinel (imperative callers compare
#: against it; the service's ResultCache maps it back to None).
MISS = _MISS


class RetryLayer(Layer[Req, Resp]):
    """The single home of :func:`repro.retry.call_with_retry`.

    Every retried backend call in the tree goes through an instance of
    this layer; no call site hand-rolls the loop any more. ``counters``
    may be shared (the fetcher's DNS and connect legs pool into one
    :class:`RetryCounters`) or private (one per stack).
    """

    layer_kind = "retry"

    def __init__(
        self,
        inner: Backend[Req, Resp],
        policy: RetryPolicy | None = None,
        key_fn: Callable[[Req], str] | None = None,
        retryable: Callable[[BaseException], bool] | None = None,
        counters: RetryCounters | None = None,
    ) -> None:
        super().__init__(inner)
        self.policy = policy
        self._key_fn = key_fn if key_fn is not None else lambda req: str(req)
        self._retryable = retryable
        self.counters = counters if counters is not None else RetryCounters()

    def call(self, req: Req) -> Resp:
        if self.policy is None or not self.policy.enabled:
            # Exactly call_with_retry's disabled path ("call once,
            # propagate everything"), minus the key formatting and
            # closure frames — the no-retry stack's hot path.
            return self.inner.call(req)
        return call_with_retry(
            lambda: self.inner.call(req),
            self.policy,
            key=self._key_fn(req),
            counters=self.counters,
            retryable=self._retryable,
        )


@dataclass(frozen=True)
class SpanSpec:
    """How one backend's calls render as trace spans.

    Attributes:
        kind: the span kind (``"backend.fetch"``, ``"backend.cdx"``, …).
        name_fn: request -> span name.
        attrs_fn: request -> attributes set at span open (``sim`` is
            special-cased into the span's virtual-clock field).
        result_attrs_fn: response -> attributes set at span close.
        set_retries: attach a ``retries`` attribute when the enclosed
            retry layer retried during this call (CDX contract).
    """

    kind: str
    name_fn: Callable[[Any], str]
    attrs_fn: Callable[[Any], dict] | None = None
    result_attrs_fn: Callable[[Any], dict] | None = None
    set_retries: bool = False


class TraceLayer(Layer[Req, Resp]):
    """One span per call that reaches it — place below the cache.

    Books the *virtual* backoff milliseconds the enclosed retry layer
    accumulated during the call onto the span, so a trace report
    attributes waiting where it happened. With ``tracer=None`` the
    layer is a strict pass-through (the untraced hot path contract).
    """

    layer_kind = "trace"

    def __init__(
        self,
        inner: Backend[Req, Resp],
        tracer: Tracer | None,
        spec: SpanSpec,
        retry_counters: RetryCounters | None = None,
    ) -> None:
        super().__init__(inner)
        self.tracer = tracer
        self.spec = spec
        self._retry_counters = retry_counters

    def call(self, req: Req) -> Resp:
        if self.tracer is None:
            return self.inner.call(req)
        spec = self.spec
        attrs = dict(spec.attrs_fn(req)) if spec.attrs_fn is not None else {}
        sim = attrs.pop("sim", None)
        counters = self._retry_counters
        backoff_before = counters.backoff_ms if counters is not None else 0.0
        retries_before = counters.retries if counters is not None else 0
        with self.tracer.span(
            spec.name_fn(req), kind=spec.kind, sim=sim, **attrs
        ) as span:
            resp = self.inner.call(req)
            if counters is not None:
                span.add_virtual_ms(counters.backoff_ms - backoff_before)
                if spec.set_retries:
                    retries = counters.retries - retries_before
                    if retries:
                        span.set(retries=retries)
            if spec.result_attrs_fn is not None:
                span.set(**spec.result_attrs_fn(resp))
            return resp


class MetricsLayer(Layer[Req, Resp]):
    """Counts calls and errors into a registry — an observer, order-free.

    Counters: ``{prefix}.calls`` per call reaching the layer and
    ``{prefix}.errors`` per call that raised through it.
    """

    layer_kind = "metrics"

    def __init__(
        self,
        inner: Backend[Req, Resp],
        metrics: MetricsRegistry | None,
        prefix: str,
    ) -> None:
        super().__init__(inner)
        self.metrics = metrics
        self.prefix = prefix

    def call(self, req: Req) -> Resp:
        if self.metrics is None:
            return self.inner.call(req)
        self.metrics.counter(f"{self.prefix}.calls").inc()
        try:
            return self.inner.call(req)
        except Exception:
            self.metrics.counter(f"{self.prefix}.errors").inc()
            raise


@dataclass(frozen=True)
class FaultGate:
    """One fault channel's sabotage decision for a stack.

    ``channel`` is duck-typed (anything with ``should_fault(key)``, in
    practice :class:`repro.faults.inject.FaultChannel`); ``key_fn``
    derives the channel's operation key from the request and ``exc_fn``
    builds the exception a sabotaged attempt raises.
    """

    channel: Any
    key_fn: Callable[[Any], str]
    exc_fn: Callable[[Any], BaseException]


class FaultLayer(Layer[Req, Resp]):
    """Deterministic sabotage below retry: gates fire before the base.

    Gates are consulted in order on every attempt — the enclosing
    retry layer re-enters this layer, which is what lets a transient
    channel's per-key attempt counter advance and the fault clear.
    """

    layer_kind = "fault"

    def __init__(
        self, inner: Backend[Req, Resp], gates: tuple[FaultGate, ...]
    ) -> None:
        super().__init__(inner)
        self.gates = gates

    def call(self, req: Req) -> Resp:
        for gate in self.gates:
            if gate.channel.should_fault(gate.key_fn(req)):
                raise gate.exc_fn(req)
        return self.inner.call(req)
