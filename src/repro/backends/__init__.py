"""Composable backend middleware: one layer stack for every client.

The study's three backends (live-web fetch, CDX, Availability) share
four cross-cutting concerns — memoization, retry, fault injection, and
observability. :mod:`repro.backends.core` provides each concern as a
typed, order-checked layer over a common ``Backend[Req, Resp]`` call
protocol; :mod:`repro.backends.stacks` assembles the concrete stacks;
:mod:`repro.backends.config` carries the shared entry-point knobs.

Canonical order (outermost first)::

    metrics -> cache -> trace -> retry -> fault -> base

See README "Architecture" for the ordering contract and the laws each
relative position encodes.

Only the kernel is imported eagerly: :mod:`.stacks` depends on the
client modules (``net.fetch``, ``faults.inject``) which themselves
build on :mod:`.core`, so the concrete names resolve lazily (PEP 562)
to keep that dependency edge acyclic.
"""

from importlib import import_module

from .core import (
    MISS,
    Backend,
    CacheLayer,
    FaultGate,
    FaultLayer,
    Layer,
    MetricsLayer,
    Op,
    RetryLayer,
    SpanSpec,
    TraceLayer,
    layer_names,
    validate_stack_order,
)

#: Lazily resolved exports: name -> defining submodule.
_LAZY = {
    "BackendStack": ".stacks",
    "CdxBackend": ".stacks",
    "FetchBackend": ".stacks",
    "normalize_scope_query": ".stacks",
    "PLAN_FACTORIES": ".config",
    "StackConfig": ".config",
}

__all__ = [
    "MISS",
    "Backend",
    "BackendStack",
    "CacheLayer",
    "CdxBackend",
    "FaultGate",
    "FaultLayer",
    "FetchBackend",
    "Layer",
    "MetricsLayer",
    "Op",
    "PLAN_FACTORIES",
    "RetryLayer",
    "SpanSpec",
    "StackConfig",
    "TraceLayer",
    "layer_names",
    "normalize_scope_query",
    "validate_stack_order",
]


def __getattr__(name: str):
    try:
        module = _LAZY[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    value = getattr(import_module(module, __name__), name)
    globals()[name] = value
    return value
