"""Command-line entry point: ``python -m repro``.

Subcommands:

    python -m repro study [--links N] [--seed S]      run the full study
    python -m repro calibrate [--links N] [--seed S]  paper-vs-measured table
    python -m repro medic [--links N] [--seed S]      WaybackMedic rescue run
    python -m repro serve [--requests M] [--rps R]    replay traffic at the service
                    [--shards N] [--replicas R]       ... through the sharded cluster
                    [--policy P] [--crash-rate F]     ... under replica chaos
                    [--trace P] [--audit-log P]       ... emitting spans + audit JSONL
                    [--metrics-json P] [--prometheus P] [--slo]   ... and graded SLOs
    python -m repro query (--url U | --domain D |     one query against the index
                           --quantile M:Q | --bucket-counts) [--shards N]
    python -m repro live [--generations G]            drive the world forward,
                    [--interval-days D]               ... delta-building an index
                    [--reprobe-days R]                ... generation per interval
                    [--requests M] [--json P]         ... and replay traffic
                    [--drain] [--full-snapshots]      ... across delta swaps
                                                      ... (rolling when draining)
    python -m repro generations --url U [--last N]    one URL's status across
                    [--generations G]                 ... the retained index
                    [--interval-days D]               ... generations

Also installed as the ``repro`` console script.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from .analysis.redirects import RedirectValidator
from .analysis.study import Study
from .backends import StackConfig
from .dataset.worldgen import WorldConfig, generate_world
from .iabot.medic import WaybackMedic
from .net.status import Outcome
from .reporting.figures import render_bar_chart
from .reporting.summary import ComparisonTable
from .wiki.encyclopedia import PERMADEAD_CATEGORY


def _build_world(args) -> "tuple":
    print(f"generating world: {args.links} links, seed {args.seed} ...")
    start = time.time()
    world = generate_world(
        WorldConfig(n_links=args.links, target_sample=args.links, seed=args.seed)
    )
    print(f"  {world.summary()}  ({time.time() - start:.1f}s)")
    return world


def _run_study(args, world):
    """Run the study under the subcommand's stack flags."""
    config = StackConfig.from_args(args)
    tracer = config.build_tracer()
    report = Study.from_world(
        world,
        faults=config.build_faults(),
        retry_policy=config.build_retry_policy(),
    ).run(tracer=tracer)
    if tracer is not None:
        tracer.write_jsonl(config.trace)
        print(f"trace: {len(tracer.spans)} spans -> {config.trace}")
    if config.metrics_json is not None:
        config.metrics_json.write_text(
            json.dumps(report.stats.as_dict(), indent=2, sort_keys=True) + "\n"
        )
        print(f"metrics: {config.metrics_json}")
    return report


def _cmd_study(args) -> int:
    world = _build_world(args)
    report = _run_study(args, world)
    if args.markdown:
        from .reporting.report import render_markdown_report

        document = render_markdown_report(
            report,
            title=(
                f"Study report (links={args.links}, seed={args.seed})"
            ),
        )
        with open(args.markdown, "w", encoding="utf-8") as handle:
            handle.write(document)
        print(f"wrote {args.markdown}")
        return 0
    print()
    print(
        render_bar_chart(
            {o.value: c for o, c in report.counts.items()},
            title="Figure 4: live-web outcomes",
        )
    )
    print()
    print(report.summary())
    return 0


def _cmd_calibrate(args) -> int:
    world = _build_world(args)
    report = _run_study(args, world)
    n = report.sample_size
    counts = report.counts
    table = ComparisonTable(title="paper vs measured")
    table.add("fig4 DNS %", 28.0, 100 * counts[Outcome.DNS_FAILURE] / n)
    table.add("fig4 404 %", 44.0, 100 * counts[Outcome.HTTP_404] / n)
    table.add("fig4 200 %", 16.5, 100 * counts[Outcome.HTTP_200] / n)
    table.add("alive %", 3.05, 100 * report.frac_genuinely_alive, tolerance=0.8)
    table.add("pre-marking 200 %", 10.8, 100 * report.frac_pre_marking_200)
    table.add(
        "3xx of rest %",
        42.3,
        100 * report.n_rest_with_pre_3xx / max(report.n_rest, 1),
    )
    table.add(
        "never archived of rest %",
        22.2,
        100 * report.n_never_archived / max(report.n_rest, 1),
    )
    print()
    print(table.render())
    return 0 if table.all_within_band else 1


def _cmd_medic(args) -> int:
    world = _build_world(args)
    validator = RedirectValidator(world.cdx)
    medic = WaybackMedic(
        world.encyclopedia,
        world.availability,
        redirect_finder=lambda url, marked: validator.find_valid_redirect_copy(url),
    )
    before = len(world.encyclopedia.articles_in_category(PERMADEAD_CATEGORY))
    report = medic.run(world.study_time)
    after = len(world.encyclopedia.articles_in_category(PERMADEAD_CATEGORY))
    print(
        f"examined {report.links_examined} permanently dead references; "
        f"patched {report.patched_with_200_copy} with missed 200 copies and "
        f"{report.patched_with_validated_redirect} with validated redirects; "
        f"{report.still_permadead} remain. category: {before} -> {after} articles"
    )
    return 0


def _build_index(args):
    from .service import LinkStatusIndex

    world = _build_world(args)
    report = Study.from_world(world).run()
    index = LinkStatusIndex.build(report)
    print(f"  index: {len(index)} entries, version {index.version}")
    return index


def _cmd_serve(args) -> int:
    from .obs import (
        Tracer,
        burn_attribution,
        evaluate,
        events_from_audit,
        prometheus_text,
        render_attribution,
        render_json,
    )
    from .service import (
        AuditLog,
        ClusterConfig,
        ClusterService,
        LinkStatusService,
        ServerConfig,
        ServiceFaultPlan,
        WorkloadConfig,
        generate_workload,
    )
    from .faults import FaultSpec

    index = _build_index(args)
    config = ServerConfig(rate_rps=args.rps)
    workload = generate_workload(
        [entry.url for entry in index.entries],
        WorkloadConfig(
            n_requests=args.requests,
            offered_rps=args.offered if args.offered else args.rps,
            seed=args.seed,
            aggregate_fraction=0.02,
            unknown_fraction=0.01,
            pattern=args.pattern,
        ),
    )
    faults = None
    if args.spike_rate or args.crash_rate:
        faults = ServiceFaultPlan(
            seed=args.seed,
            index_spike=FaultSpec(rate=args.spike_rate, permanent=True),
            replica_crash=FaultSpec(rate=args.crash_rate, permanent=True),
        )
    clustered = args.shards > 1 or args.replicas > 1
    tracer = Tracer() if args.trace else None
    audit = AuditLog() if (args.audit_log or args.slo) else None
    if clustered:
        service = ClusterService(
            index,
            config,
            ClusterConfig(
                n_shards=args.shards,
                replicas_per_shard=args.replicas,
                policy=args.policy,
            ),
            faults=faults,
            tracer=tracer,
            audit=audit,
        )
    else:
        service = LinkStatusService(
            index, config, faults=faults, tracer=tracer, audit=audit
        )
    result = service.serve(workload, mode=args.mode)
    print()
    print(result.summary())
    if clustered:
        print(
            f"cluster: {args.shards} shards x {args.replicas} replicas, "
            f"policy {args.policy}; {result.redispatches} redispatches, "
            f"{len(result.unavailable_ids)} gave up (503), "
            f"{len(result.fault_events)} replica fault events"
        )
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(result.as_dict(), handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.json}")
    if tracer is not None:
        written = tracer.write_jsonl(args.trace)
        print(f"wrote {written} spans to {args.trace}")
    if args.audit_log:
        written = audit.write_jsonl(args.audit_log)
        print(f"wrote {written} audit records to {args.audit_log}")
    if args.metrics_json:
        with open(args.metrics_json, "w", encoding="utf-8") as handle:
            handle.write(render_json(result.metrics))
        print(f"wrote metrics snapshot to {args.metrics_json}")
    if args.prometheus:
        with open(args.prometheus, "w", encoding="utf-8") as handle:
            handle.write(prometheus_text(result.metrics))
        print(f"wrote Prometheus exposition to {args.prometheus}")
    if args.slo:
        records = [record.to_event() for record in audit.records]
        report = evaluate(events_from_audit(records))
        print()
        print("SLO verdicts:")
        print(report.render())
        print()
        print("budget burn by (replica, fault channel):")
        print(render_attribution(burn_attribution(records)))
        return 0 if report.met else 1
    return 0


def _cmd_query(args) -> int:
    from .service.router import rendezvous_owner, routing_key
    from .service.server import answer

    index = _build_index(args)
    if args.url:
        kind, target = "url", args.url
    elif args.domain:
        kind, target = "domain", args.domain
    elif args.quantile:
        kind, target = "quantile", args.quantile
    else:
        kind, target = "bucket_counts", ""
    status, body = answer(index, kind, target)
    payload = {
        "status": status,
        "index_version": index.version,
        "kind": kind,
        "target": target,
        "body": body,
    }
    if args.shards > 1:
        key = routing_key(kind, target)
        shard_ids = tuple(f"shard-{i}" for i in range(args.shards))
        payload["routing"] = {
            "key": key,
            "shard": rendezvous_owner(key, shard_ids),
            "n_shards": args.shards,
        }
    print(json.dumps(payload, indent=2))
    return 0 if status == 200 else 1


def _drive_live_generations(args, on_generation=None):
    """Generate a world, evolve it, and publish one generation per
    interval (the scripted evolution the live subcommands share)."""
    from .clock import SimTime
    from .live import GenerationPublisher, IncrementalStudy, ReprobePolicy, WorldDriver

    world = _build_world(args)
    driver = WorldDriver(world)
    engine = IncrementalStudy(
        world, seed=args.seed, policy=ReprobePolicy(every_days=args.reprobe_days)
    )
    publisher = GenerationPublisher(retain=args.generations)
    base = world.study_time.days
    for ordinal in range(args.generations):
        at = SimTime(base + ordinal * args.interval_days)
        if ordinal > 0:
            # The world moves between builds: a rolling bot sweep, and
            # every other interval an editor deletes a dead reference.
            driver.sweep(SimTime(at.days - 0.6 * args.interval_days))
            if ordinal % 2 == 0 and driver.permadead_refs():
                title, url = driver.permadead_refs()[0]
                driver.remove_link(
                    title, url, SimTime(at.days - 0.3 * args.interval_days)
                )
        result = engine.build(at)
        generation = publisher.publish(result)
        if on_generation is not None:
            on_generation(generation, result)
    return publisher


def _cmd_live(args) -> int:
    from .obs import evaluate
    from .obs.slo import (
        MS_PER_DAY,
        SloSpec,
        events_from_generations,
        events_from_reconfigs,
    )
    from .service import (
        DeltaApply,
        GenerationSwap,
        LinkStatusService,
        WorkloadConfig,
        generate_workload,
    )

    baseline_dead = None

    def announce(generation, result):
        nonlocal baseline_dead
        dead_rate = 1.0 - result.report.frac_genuinely_alive
        if baseline_dead is None:
            baseline_dead = dead_rate
        print(
            f"{generation.summary()}  dead-rate {100 * dead_rate:.2f}% "
            f"({100 * (dead_rate - baseline_dead):+.2f}% vs gen 1)"
        )

    publisher = _drive_live_generations(args, announce)

    freshness = evaluate(
        events_from_generations(publisher.generations),
        (
            SloSpec(
                name="index-freshness",
                kind="latency",
                objective=0.99,
                threshold_ms=2.0 * args.interval_days * MS_PER_DAY,
            ),
        ),
    )
    print(f"freshness SLO (2x interval budget): "
          f"{'met' if freshness.met else 'violated'}")

    payload = {
        "generations": [
            {
                "seq": g.seq,
                "version": g.version,
                "dirty": g.dirty_size,
                "events": g.events_consumed,
                "lag_days": g.lag_days,
                "rebuild_ms": round(g.rebuild_wall_ms, 2),
            }
            for g in publisher.generations
        ],
        "retired": publisher.retired,
        "freshness_met": freshness.met,
    }

    if args.requests:
        # Adjacent generations can share a version (nothing changed in
        # an interval); the schedule validator rightly rejects no-op
        # swaps, so collapse them before scheduling.
        lineage = [publisher.generations[0]]
        for generation in publisher.generations[1:]:
            if generation.version != lineage[-1].version:
                lineage.append(generation)
        first = lineage[0]
        workload = generate_workload(
            [entry.url for entry in first.index.entries],
            WorkloadConfig(n_requests=args.requests, seed=args.seed),
        )
        horizon = max(r.arrival_ms for r in workload)
        swaps = []
        for i, generation in enumerate(lineage[1:]):
            at_ms = horizon * (i + 1) / len(lineage)
            if args.full_snapshots:
                swaps.append(GenerationSwap(
                    at_ms=at_ms, drain=args.drain, index=generation.index,
                ))
            else:
                delta = publisher.build_delta(lineage[i], generation)
                print(f"  {delta.summary()}")
                swaps.append(DeltaApply(
                    at_ms=at_ms, drain=args.drain, delta=delta,
                ))
        result = LinkStatusService(first.index).serve(workload, swaps=swaps)
        served: dict[str, int] = {}
        for response in result.responses:
            served[response.index_version] = served.get(
                response.index_version, 0
            ) + 1
        print()
        print(result.summary())
        discipline = "drained" if args.drain else "atomic"
        print(
            f"zero-downtime swaps: {len(swaps)} ({discipline}, "
            f"{'snapshots' if args.full_snapshots else 'deltas'}); "
            "served by generation: "
            + ", ".join(f"{v}={n}" for v, n in served.items())
        )
        for event in result.reconfig_events:
            print(
                f"  reconfig {event.kind} at {event.scheduled_ms:.1f}ms "
                f"-> {event.to_version} (lag {event.lag_ms:.2f}ms, "
                f"{event.drained_batches} drained batches)"
            )
        reconfig_slo = evaluate(
            events_from_reconfigs(result.reconfig_events),
            (
                SloSpec(
                    name="reconfig-lag",
                    kind="latency",
                    objective=0.99,
                    threshold_ms=50.0,
                ),
            ),
        )
        print(
            f"reconfig-lag SLO (50ms budget): "
            f"{'met' if reconfig_slo.met else 'violated'}"
        )
        payload["serve"] = result.as_dict()
        payload["served_by_generation"] = served
        payload["reconfigs"] = [
            event.as_dict() for event in result.reconfig_events
        ]
        payload["reconfig_slo_met"] = reconfig_slo.met

    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.json}")
    return 0


def _cmd_generations(args) -> int:
    """Cross-generation history: how one URL's status moved."""
    publisher = _drive_live_generations(args)
    states = publisher.history(args.url, n=args.last)
    print()
    print(f"history of {args.url} over {len(states)} retained generations:")
    for state in states:
        print(f"  {state.summary()}")
    buckets = [state.bucket for state in states]
    transitions = sum(
        1 for a, b in zip(buckets, buckets[1:]) if a != b
    )
    print(f"  {transitions} status transitions")
    if args.json:
        payload = {
            "url": args.url,
            "transitions": transitions,
            "states": [
                {
                    "seq": state.seq,
                    "version": state.version,
                    "built_at_days": state.built_at.days,
                    "bucket": state.bucket,
                    "advice": (
                        state.entry.advice
                        if state.entry is not None
                        else None
                    ),
                }
                for state in states
            ],
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.json}")
    return 0 if any(state.entry is not None for state in states) else 1


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Characterizing Permanently Dead Links on "
            "Wikipedia' (IMC 2022)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)
    for name, handler in (
        ("study", _cmd_study),
        ("calibrate", _cmd_calibrate),
        ("medic", _cmd_medic),
        ("serve", _cmd_serve),
        ("query", _cmd_query),
        ("live", _cmd_live),
        ("generations", _cmd_generations),
    ):
        cmd = sub.add_parser(name)
        cmd.add_argument("--links", type=int, default=3000)
        cmd.add_argument("--seed", type=int, default=2022)
        if name in ("study", "calibrate"):
            StackConfig.add_stack_args(cmd)
        if name == "study":
            cmd.add_argument(
                "--markdown",
                metavar="PATH",
                default=None,
                help="write the full study as a Markdown report",
            )
        if name == "serve":
            cmd.add_argument("--requests", type=int, default=5000)
            cmd.add_argument(
                "--rps",
                type=float,
                default=2000.0,
                help="service token-bucket rate (capacity)",
            )
            cmd.add_argument(
                "--offered",
                type=float,
                default=None,
                help="offered load in rps (default: equal to --rps)",
            )
            cmd.add_argument(
                "--mode", choices=("serial", "thread"), default="serial"
            )
            cmd.add_argument(
                "--spike-rate",
                type=float,
                default=0.0,
                help="inject index latency spikes at this per-key rate",
            )
            cmd.add_argument(
                "--shards",
                type=int,
                default=1,
                help="domain shards (>1 serves through the cluster tier)",
            )
            cmd.add_argument(
                "--replicas",
                type=int,
                default=1,
                help="replicas per shard (>1 serves through the cluster tier)",
            )
            cmd.add_argument(
                "--policy",
                choices=("round_robin", "least_outstanding", "power_of_two"),
                default="round_robin",
                help="cluster replica-selection policy",
            )
            cmd.add_argument(
                "--crash-rate",
                type=float,
                default=0.0,
                help="per-replica crash probability (cluster chaos)",
            )
            cmd.add_argument(
                "--pattern",
                choices=("poisson", "flash", "diurnal"),
                default="poisson",
                help="arrival pattern for the synthetic workload",
            )
            cmd.add_argument(
                "--json",
                metavar="PATH",
                default=None,
                help="also write the run digest as JSON",
            )
            cmd.add_argument(
                "--trace",
                metavar="PATH",
                default=None,
                help="write the service span tree as JSONL",
            )
            cmd.add_argument(
                "--audit-log",
                metavar="PATH",
                default=None,
                help="write the per-request audit log as JSONL",
            )
            cmd.add_argument(
                "--metrics-json",
                metavar="PATH",
                default=None,
                help="write the metrics snapshot as canonical JSON",
            )
            cmd.add_argument(
                "--prometheus",
                metavar="PATH",
                default=None,
                help="write the metrics in Prometheus text format",
            )
            cmd.add_argument(
                "--slo",
                action="store_true",
                help=(
                    "grade the run against the stock service SLOs "
                    "(exit 1 on violation)"
                ),
            )
        if name in ("live", "generations"):
            cmd.add_argument(
                "--generations",
                type=int,
                default=4,
                help="index generations to build (gen 1 is the batch study)",
            )
            cmd.add_argument(
                "--interval-days",
                type=float,
                default=7.0,
                help="sim days between consecutive builds",
            )
            cmd.add_argument(
                "--reprobe-days",
                type=float,
                default=30.0,
                help="quiescent-URL re-probe epoch length",
            )
            cmd.add_argument(
                "--json",
                metavar="PATH",
                default=None,
                help="also write the run digest as JSON",
            )
        if name == "live":
            cmd.add_argument(
                "--requests",
                type=int,
                default=2000,
                help=(
                    "replay this many requests across the generation "
                    "swaps (0 skips the serving replay)"
                ),
            )
            cmd.add_argument(
                "--drain",
                action="store_true",
                help=(
                    "drained swaps: the open batch finishes under the "
                    "old generation before the service rebinds"
                ),
            )
            cmd.add_argument(
                "--full-snapshots",
                action="store_true",
                help=(
                    "install full index snapshots instead of verified "
                    "generation deltas"
                ),
            )
        if name == "generations":
            cmd.add_argument(
                "--url",
                required=True,
                help="URL whose cross-generation history to print",
            )
            cmd.add_argument(
                "--last",
                type=int,
                default=None,
                metavar="N",
                help="only the N most recent retained generations",
            )
        if name == "query":
            what = cmd.add_mutually_exclusive_group(required=True)
            what.add_argument("--url", help="look up one studied URL")
            what.add_argument("--domain", help="sweep one registrable domain")
            what.add_argument(
                "--quantile",
                metavar="METRIC:Q",
                help="aggregate quantile, e.g. posting_year:0.5",
            )
            what.add_argument(
                "--bucket-counts",
                action="store_true",
                help="Figure-4 bucket counts",
            )
            cmd.add_argument(
                "--shards",
                type=int,
                default=1,
                help="also report which of N shards owns this query",
            )
        cmd.set_defaults(handler=handler)
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
