"""Exception hierarchy for the repro library.

Every exception raised intentionally by this library derives from
:class:`ReproError`, so callers can catch library failures without
swallowing programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library.

    ``transient`` marks failures that a retry may cure (an injected
    SERVFAIL, a rate-limit window); retry policies consult it through
    :func:`repro.retry.is_transient`. Permanent failures (NXDOMAIN, a
    genuinely dead origin) keep the default ``False`` so no retry
    budget is ever burned on them.
    """

    transient: bool = False


class ClockError(ReproError):
    """Raised for invalid simulated-time operations (e.g. moving backwards)."""


class UrlError(ReproError):
    """Raised when a URL cannot be parsed or is structurally invalid."""


class NetworkSimError(ReproError):
    """Raised for misconfigured network simulation components."""


class DnsError(NetworkSimError):
    """Raised when DNS resolution fails for a hostname.

    This models NXDOMAIN / SERVFAIL outcomes on the live web; the
    fetcher converts it into a ``DNS_FAILURE`` outcome rather than
    letting it propagate to analysis code.
    """

    def __init__(self, hostname: str, reason: str = "NXDOMAIN") -> None:
        super().__init__(f"DNS resolution failed for {hostname!r}: {reason}")
        self.hostname = hostname
        self.reason = reason


class DnsServfail(DnsError):
    """A *transient* DNS failure (the resolver choked, not the domain).

    Injected by :mod:`repro.faults`; distinguishable from NXDOMAIN so
    retry policies know the lookup is worth repeating. Without retries
    the fetcher classifies it like any DNS failure — exactly how a
    measurement pipeline misreads infrastructure flakiness as deadness.
    """

    transient = True

    def __init__(self, hostname: str) -> None:
        super().__init__(hostname, "SERVFAIL (transient)")


class ConnectionTimeout(NetworkSimError):
    """Raised when TCP/TLS connection setup to a host times out."""

    def __init__(self, hostname: str) -> None:
        super().__init__(f"connection to {hostname!r} timed out")
        self.hostname = hostname


class TransientConnectionTimeout(ConnectionTimeout):
    """An injected, retryable connection timeout (congestion, not death).

    Subclasses :class:`ConnectionTimeout` so every existing handler
    (the fetcher's TIMEOUT classification, site models) treats it
    identically when no retry policy is in play.
    """

    transient = True


class TooManyRedirects(NetworkSimError):
    """Raised when a fetch follows more redirects than its limit allows."""

    def __init__(self, url: str, limit: int) -> None:
        super().__init__(f"more than {limit} redirects while fetching {url!r}")
        self.url = url
        self.limit = limit


class ArchiveError(ReproError):
    """Base class for web-archive simulation errors."""


class ArchiveTimeout(ArchiveError):
    """Raised when an archive API lookup exceeds the caller's timeout.

    IABot treats this as "no archived copies exist", which is the root
    cause of the paper's Section 4.1 finding.
    """

    def __init__(self, url: str, timeout_ms: float) -> None:
        super().__init__(
            f"availability lookup for {url!r} exceeded {timeout_ms:.0f} ms"
        )
        self.url = url
        self.timeout_ms = timeout_ms


class ArchiveUnavailable(ArchiveError):
    """An archive API answered with a server error (HTTP 5xx).

    Models the Internet Archive's documented load shedding; transient
    by definition — the request itself is fine, the service is not.
    """

    transient = True

    def __init__(self, what: str, status: int = 503) -> None:
        super().__init__(f"archive API returned {status} for {what!r}")
        self.what = what
        self.status = status


class CdxRateLimited(ArchiveUnavailable):
    """A CDX query rejected by a rate-limit window (HTTP 429).

    ``retry_after_ms`` is the server's suggested pause; retry policies
    may ignore it (our backoff schedule is the caller's own), but it is
    surfaced so clients can honour it if they choose.
    """

    def __init__(self, what: str, retry_after_ms: float = 1000.0) -> None:
        super().__init__(what, status=429)
        self.retry_after_ms = retry_after_ms


class WikiError(ReproError):
    """Base class for Wikipedia simulation errors."""


class ArticleNotFound(WikiError):
    """Raised when an article title does not exist in the encyclopedia."""

    def __init__(self, title: str) -> None:
        super().__init__(f"no article titled {title!r}")
        self.title = title


class RevisionError(WikiError):
    """Raised for invalid edit-history operations."""


class DatasetError(ReproError):
    """Raised when dataset collection or sampling cannot proceed."""


class WorldGenError(ReproError):
    """Raised when a :class:`~repro.dataset.worldgen.WorldConfig` is invalid."""


class LiveError(ReproError):
    """Raised when the live pipeline's ordering invariants are violated.

    The incremental engine's correctness rests on the world only ever
    growing forward: events consumed by a build must post-date the
    previous build, and builds must advance the clock. Violations mean
    a cached outcome can no longer be trusted, so they fail loudly
    instead of folding a stale delta.
    """
