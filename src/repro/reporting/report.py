"""Render a complete study as a standalone Markdown document.

One call turns a :class:`~repro.analysis.study.StudyReport` into the
full write-up — dataset characterisation, every figure (as ASCII
plots in fenced blocks), every headline table, and the paper-vs-
measured comparison — suitable for committing next to EXPERIMENTS.md
or attaching to a run.
"""

from __future__ import annotations

from ..net.status import Outcome
from .cdf import ecdf
from .figures import render_bar_chart
from .plot import ascii_cdf_plot
from .summary import ComparisonTable

#: Paper values for the comparison section (quantity, paper, getter).
_PAPER_FIG4 = {
    Outcome.DNS_FAILURE: 28.0,
    Outcome.TIMEOUT: 6.0,
    Outcome.HTTP_404: 44.0,
    Outcome.HTTP_200: 16.5,
    Outcome.OTHER: 5.5,
}


def render_markdown_report(report, title: str = "Study report") -> str:
    """The full study as Markdown."""
    sections = [
        f"# {title}",
        _dataset_section(report),
        _figure3_section(report),
        _figure4_section(report),
        _section3(report),
        _section4(report),
        _section5(report),
        _comparison_section(report),
    ]
    return "\n\n".join(sections) + "\n"


def _code(block: str) -> str:
    return f"```\n{block}\n```"


def _dataset_section(report) -> str:
    ds = report.dataset
    return (
        "## Dataset\n\n"
        f"- permanently dead links studied: **{report.sample_size}**\n"
        f"- registrable domains: {len(ds.domains())}\n"
        f"- hostnames: {len(ds.hostnames())}\n"
        f"- posting years: {min(ds.posting_years()):.1f} - "
        f"{max(ds.posting_years()):.1f}"
    )


def _figure3_section(report) -> str:
    ds = report.dataset
    domain_plot = ascii_cdf_plot(
        {"dataset": ecdf(list(ds.domains().values()))},
        "Figure 3(a): URLs per domain (CDF across domains)",
        "urls per domain",
        log_x=True,
    )
    year_plot = ascii_cdf_plot(
        {"dataset": ecdf(ds.posting_years())},
        "Figure 3(c): posting year (CDF across URLs)",
        "year",
    )
    return "## Figure 3 — dataset characterisation\n\n" + _code(
        domain_plot
    ) + "\n\n" + _code(year_plot)


def _figure4_section(report) -> str:
    chart = render_bar_chart(
        {o.value: c for o, c in report.counts.items()},
        f"Figure 4: live-web outcomes (n={report.sample_size})",
    )
    return "## Figure 4 — live-web status today\n\n" + _code(chart)


def _section3(report) -> str:
    return (
        "## §3 — are permanently dead links indeed dead?\n\n"
        f"- links answering 200 today: **{report.n_final_200}** "
        f"({report.frac_final_200:.1%})\n"
        f"- genuinely functional after soft-404 screening: "
        f"**{report.n_genuinely_alive}** ({report.frac_genuinely_alive:.1%})\n"
        f"- of the functional links, {report.frac_alive_via_redirect:.0%} "
        "redirect before answering 200\n"
        f"- first post-marking archived copy erroneous for "
        f"{report.n_first_post_marking_erroneous}/"
        f"{report.n_with_post_marking_copy} links "
        f"({report.frac_first_post_marking_erroneous:.0%}) — IABot's "
        "single-GET check rarely mislabels"
    )


def _section4(report) -> str:
    return (
        "## §4 — what archived copies exist?\n\n"
        f"- links with initial-200 copies before marking: "
        f"**{report.n_pre_marking_200}** ({report.frac_pre_marking_200:.1%}) "
        "— hidden from IABot by availability-lookup timeouts\n"
        f"- of the remaining {report.n_rest}: "
        f"**{report.n_rest_with_pre_3xx}** had 3xx copies, of which "
        f"**{report.n_valid_redirect_copy}** validate as non-erroneous "
        f"({report.frac_patchable_via_redirect:.1%} of the sample is "
        "patchable via archived redirections)"
    )


def _section5(report) -> str:
    temporal = report.temporal
    spatial = report.spatial
    gaps = temporal.gaps_days
    gap_plot = ascii_cdf_plot(
        {"gap": ecdf([max(g, 0.5) for g in gaps])},
        f"Figure 5: posting-to-first-capture gap in days (n={len(gaps)})",
        "days",
        log_x=True,
    )
    coverage_plot = ascii_cdf_plot(
        {
            "directory": ecdf([max(c, 0.5) for c in spatial.directory_counts]),
            "hostname": ecdf([max(c, 0.5) for c in spatial.hostname_counts]),
        },
        f"Figure 6: archived neighbors (n={len(spatial.records)})",
        "neighbors with 200 copies",
        log_x=True,
    )
    return (
        "## §5 — why no successful archived copies?\n\n"
        f"- archived / never archived split: {report.n_rest_with_any_copy} / "
        f"{report.n_never_archived}\n"
        f"- links archived before they were posted: "
        f"{len(temporal.with_pre_posting_copy)}\n"
        f"- same-day first captures: {len(temporal.same_day)}, of which "
        f"{len(temporal.same_day_erroneous)} erroneous first-up (typos)\n"
        f"- coverage gaps among never-archived links: "
        f"{len(spatial.directory_gaps)} directory-level, "
        f"{len(spatial.hostname_gaps)} hostname-level\n"
        f"- typos found by unique edit-distance-1 archived siblings: "
        f"{len(report.typos)}\n\n"
        + _code(gap_plot)
        + "\n\n"
        + _code(coverage_plot)
    )


def _comparison_section(report) -> str:
    n = max(report.sample_size, 1)
    table = ComparisonTable(title="")
    for outcome, paper in _PAPER_FIG4.items():
        table.add(
            f"fig4 {outcome.value} %", paper, 100.0 * report.counts[outcome] / n
        )
    table.add("genuinely alive %", 3.05, 100.0 * report.frac_genuinely_alive)
    table.add("pre-marking 200 %", 10.8, 100.0 * report.frac_pre_marking_200)
    table.add(
        "3xx of rest %",
        42.3,
        100.0 * report.n_rest_with_pre_3xx / max(report.n_rest, 1),
    )
    table.add(
        "never archived of rest %",
        22.2,
        100.0 * report.n_never_archived / max(report.n_rest, 1),
    )
    return "## Paper vs measured\n\n" + _code(table.render())
