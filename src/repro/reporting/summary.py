"""Paper-vs-measured comparison tables.

Every benchmark ends by printing one of these: the paper's reported
value next to what this reproduction measured, with a tolerance band
that encodes "the shape should hold" (who wins, by roughly what
factor) rather than absolute-number equality.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .tables import render_table


@dataclass(frozen=True, slots=True)
class ComparisonRow:
    """One headline quantity."""

    name: str
    paper: float
    measured: float
    unit: str = "%"
    tolerance: float = 0.5
    """Relative tolerance band: measured within paper*(1 +/- tolerance)
    counts as reproducing the shape. Wide by design — the substrate is
    a simulator, not the authors' vantage point."""

    @property
    def within_band(self) -> bool:
        """Whether the measured value reproduces the paper's shape."""
        if self.paper == 0:
            return abs(self.measured) < max(self.tolerance, 1e-9)
        lo = self.paper * (1.0 - self.tolerance)
        hi = self.paper * (1.0 + self.tolerance)
        return lo <= self.measured <= hi

    @property
    def ratio(self) -> float:
        """measured / paper (inf when the paper value is zero)."""
        if self.paper == 0:
            return float("inf") if self.measured else 1.0
        return self.measured / self.paper


@dataclass
class ComparisonTable:
    """A titled collection of comparison rows."""

    title: str
    rows: list[ComparisonRow] = field(default_factory=list)

    def add(
        self,
        name: str,
        paper: float,
        measured: float,
        unit: str = "%",
        tolerance: float = 0.5,
    ) -> None:
        """Append one quantity to the table."""
        self.rows.append(
            ComparisonRow(
                name=name,
                paper=paper,
                measured=measured,
                unit=unit,
                tolerance=tolerance,
            )
        )

    @property
    def all_within_band(self) -> bool:
        """Whether every row reproduces the paper's shape."""
        return all(row.within_band for row in self.rows)

    def failures(self) -> list[ComparisonRow]:
        """Rows outside their tolerance band."""
        return [row for row in self.rows if not row.within_band]

    def render(self) -> str:
        """The table as fixed-width text."""
        body = [
            [
                row.name,
                row.paper,
                row.measured,
                row.unit,
                "ok" if row.within_band else "OFF",
            ]
            for row in self.rows
        ]
        return render_table(
            headers=["quantity", "paper", "measured", "unit", "band"],
            rows=body,
            title=self.title,
        )
