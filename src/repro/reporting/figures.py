"""Text renderings of the paper's figures.

Benchmarks print these so a terminal diff against the paper's plots is
possible: CDFs as fixed-width curves over (optionally log-scaled) x
axes, and Figure 4's grouped bars as labelled horizontal bars.
"""

from __future__ import annotations

import math

from .cdf import Ecdf

_BAR = "#"


def render_cdf(
    series: dict[str, Ecdf],
    title: str,
    x_label: str,
    log_x: bool = False,
    points: int = 12,
) -> str:
    """Tabular CDF rendering: one column of F(x) per series.

    ``points`` x positions are chosen across the pooled value range
    (geometrically when ``log_x``, matching the paper's log axes).
    """
    pooled: list[float] = []
    for curve in series.values():
        pooled.extend(curve.values)
    if not pooled:
        return f"{title}\n  (no data)"
    lo, hi = min(pooled), max(pooled)
    xs = _axis_points(lo, hi, points, log_x)
    names = list(series)
    header = f"{x_label:>14s} " + " ".join(f"{name:>16s}" for name in names)
    lines = [title, header]
    for x in xs:
        cells = " ".join(f"{series[name].at(x):16.3f}" for name in names)
        lines.append(f"{_fmt_x(x):>14s} {cells}")
    return "\n".join(lines)


def render_bar_chart(
    counts: dict[str, int], title: str, width: int = 50
) -> str:
    """Horizontal bars, Figure-4 style."""
    if not counts:
        return f"{title}\n  (no data)"
    peak = max(counts.values()) or 1
    label_width = max(len(label) for label in counts)
    lines = [title]
    for label, value in counts.items():
        bar = _BAR * max(int(round(width * value / peak)), 1 if value else 0)
        lines.append(f"  {label:<{label_width}s} {value:>7d} {bar}")
    return "\n".join(lines)


def _axis_points(lo: float, hi: float, points: int, log_x: bool) -> list[float]:
    if points < 2 or hi <= lo:
        return [lo, hi] if hi > lo else [lo]
    if log_x:
        floor = max(lo, 1e-9)
        if hi <= floor:
            return [floor]
        ratio = (hi / floor) ** (1.0 / (points - 1))
        return [floor * ratio**i for i in range(points)]
    step = (hi - lo) / (points - 1)
    return [lo + step * i for i in range(points)]


def _fmt_x(x: float) -> str:
    if x >= 100 or x == int(x):
        return f"{x:,.0f}"
    return f"{x:.2f}"
