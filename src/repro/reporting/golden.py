"""The golden end-to-end report: one pinned world, one pinned render.

``tests/test_golden_report.py`` re-renders the study of a small pinned
world on every run and compares it byte-for-byte against the committed
snapshot at :data:`GOLDEN_RELPATH`. Any change that moves a measured
number, reorders a section, or reformats a figure shows up as a diff of
the golden file — intentional changes regenerate it with::

    python scripts/full_run.py --update-golden

The pinned world is deliberately small (the same shape the exec tests
use) so the snapshot test stays in tier-1.
"""

from __future__ import annotations

from pathlib import Path

from ..analysis.study import Study
from ..dataset.worldgen import WorldConfig, generate_world
from .report import render_markdown_report

#: The world the golden snapshot studies. Changing any field here is a
#: measurement change and requires regenerating the snapshot.
GOLDEN_CONFIG = WorldConfig(n_links=260, target_sample=200, seed=7)

#: Snapshot location, relative to the repository root.
GOLDEN_RELPATH = "tests/golden/study_report_tiny.md"

#: Title baked into the snapshot (part of the byte-exact contract).
GOLDEN_TITLE = "Study report — golden tiny world (n_links=260, seed=7)"


def render_golden_report() -> str:
    """Generate the pinned world, run the study, render the Markdown.

    Pure function of :data:`GOLDEN_CONFIG`: two calls — or two
    machines — produce byte-identical text, which is what makes the
    snapshot comparison meaningful.
    """
    world = generate_world(GOLDEN_CONFIG)
    report = Study.from_world(world).run()
    return render_markdown_report(report, title=GOLDEN_TITLE)


def golden_path(root: str | Path) -> Path:
    """Absolute snapshot path under a repository root."""
    return Path(root) / GOLDEN_RELPATH


def update_golden(root: str | Path) -> Path:
    """Regenerate the snapshot under ``root``; returns its path."""
    path = golden_path(root)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(render_golden_report(), encoding="utf-8")
    return path
