"""Plain-text table rendering for benchmark output."""

from __future__ import annotations


def render_table(
    headers: list[str],
    rows: list[list[object]],
    title: str = "",
) -> str:
    """A fixed-width text table.

    Numeric cells are right-aligned and floats are shown with one
    decimal; everything else is left-aligned.
    """
    rendered_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    numeric = [
        all(_is_numberish(row[i]) for row in rows) if rows else False
        for i in range(len(headers))
    ]

    def fmt(cells: list[str], pads: list[bool]) -> str:
        """Join one row's cells with per-column alignment."""
        parts = []
        for cell, width, right in zip(cells, widths, pads):
            parts.append(cell.rjust(width) if right else cell.ljust(width))
        return "  ".join(parts).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt(headers, [False] * len(headers)))
    lines.append(fmt(["-" * w for w in widths], [False] * len(headers)))
    for row in rendered_rows:
        lines.append(fmt(row, numeric))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.1f}"
    return str(value)


def _is_numberish(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)
