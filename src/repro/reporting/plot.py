"""ASCII line plots for CDFs.

``render_cdf`` (figures.py) prints tabular F(x) values; this module
draws the curves themselves — good enough to eyeball a knee or a
crossover against the paper's plots in a terminal.
"""

from __future__ import annotations

import math

from .cdf import Ecdf

_MARKERS = "*o+x#@"


def ascii_cdf_plot(
    series: dict[str, Ecdf],
    title: str,
    x_label: str,
    log_x: bool = False,
    width: int = 64,
    height: int = 16,
) -> str:
    """Plot one or more CDFs as an ASCII chart.

    The y axis is F(x) in [0, 1]; the x axis spans the pooled value
    range, geometrically when ``log_x``.
    """
    pooled = [v for curve in series.values() for v in curve.values]
    if not pooled:
        return f"{title}\n  (no data)"
    lo, hi = min(pooled), max(pooled)
    if log_x:
        lo = max(lo, 1e-9)
        hi = max(hi, lo * 1.0001)
    elif hi <= lo:
        hi = lo + 1.0

    def x_at(column: int) -> float:
        """The x value a chart column represents."""
        fraction = column / max(width - 1, 1)
        if log_x:
            return lo * (hi / lo) ** fraction
        return lo + (hi - lo) * fraction

    grid = [[" "] * width for _ in range(height)]
    for index, (name, curve) in enumerate(series.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        for column in range(width):
            y = curve.at(x_at(column))
            row = height - 1 - min(int(y * (height - 1) + 0.5), height - 1)
            if grid[row][column] == " ":
                grid[row][column] = marker

    lines = [title]
    for row_index, row in enumerate(grid):
        y_value = 1.0 - row_index / (height - 1)
        labelled = row_index % 5 == 0 or row_index == height - 1
        label = f"{y_value:4.2f} |" if labelled else "     |"
        lines.append(label + "".join(row))
    lines.append("     +" + "-" * width)
    left = _format_tick(lo)
    right = _format_tick(hi)
    middle = _format_tick(x_at(width // 2))
    axis = f"      {left}"
    pad = max(width // 2 - len(left) - len(middle) // 2, 1)
    axis += " " * pad + middle
    pad = max(width - len(axis) + 6 - len(right), 1)
    axis += " " * pad + right
    lines.append(axis)
    lines.append(f"      x: {x_label}" + ("  (log scale)" if log_x else ""))
    legend = "  ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {name}"
        for i, name in enumerate(series)
    )
    lines.append(f"      {legend}")
    return "\n".join(lines)


def _format_tick(value: float) -> str:
    if value == 0:
        return "0"
    magnitude = abs(value)
    if magnitude >= 10000 or magnitude < 0.01:
        exponent = int(math.floor(math.log10(magnitude)))
        mantissa = value / 10**exponent
        return f"{mantissa:.0f}e{exponent}"
    if magnitude >= 100:
        return f"{value:,.0f}"
    return f"{value:.2g}"
