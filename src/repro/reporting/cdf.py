"""Empirical CDFs, the paper's figure format of choice.

Figures 3, 5, and 6 are all CDFs; this module computes them and
evaluates them at arbitrary points (for table-form comparisons and for
Kolmogorov-Smirnov-style closeness checks between the "our dataset"
and "random sample" series).
"""

from __future__ import annotations

import math
from bisect import bisect_right
from dataclasses import dataclass

from ..numerics import is_sorted, ks_distance, sorted_floats


@dataclass(frozen=True)
class Ecdf:
    """An empirical CDF over a sorted sample.

    Construction and the KS statistic run on the columnar numeric
    backend (:mod:`repro.numerics`): vectorised when numpy is
    installed, pure stdlib otherwise, value-identical either way.
    """

    values: tuple[float, ...]

    def __post_init__(self) -> None:
        if not is_sorted(self.values):
            raise ValueError("Ecdf values must be sorted")

    @property
    def n(self) -> int:
        """Sample size."""
        return len(self.values)

    def at(self, x: float) -> float:
        """F(x) = P(value <= x)."""
        if not self.values:
            return 0.0
        return bisect_right(self.values, x) / self.n

    def quantile(self, q: float) -> float:
        """The smallest value v with F(v) >= q."""
        if not self.values:
            raise ValueError("quantile of an empty Ecdf")
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        # The smallest k with k/n >= q is ceil(q*n) in exact
        # arithmetic; the follow-up check repairs the one-off case
        # where q*n rounded up across an integer (e.g. 0.7 * 10).
        index = min(max(math.ceil(q * self.n) - 1, 0), self.n - 1)
        if index > 0 and index / self.n >= q:
            index -= 1
        return self.values[index]

    def series(self, points: int = 50) -> list[tuple[float, float]]:
        """(x, F(x)) pairs suitable for plotting or printing.

        Tied sample values land on the same (x, F) point whatever
        index sampled them; such repeats are emitted once.
        """
        if not self.values:
            return []
        pairs: list[tuple[float, float]] = []
        step = max(len(self.values) // points, 1)
        for index in range(0, len(self.values), step):
            x = self.values[index]
            pair = (x, self.at(x))
            if not pairs or pairs[-1] != pair:
                pairs.append(pair)
        last = self.values[-1]
        if pairs[-1][0] != last:
            pairs.append((last, 1.0))
        return pairs

    def ks_distance(self, other: "Ecdf") -> float:
        """Kolmogorov-Smirnov statistic between two ECDFs.

        The paper's representativeness check ("largely identical"
        distributions between its dataset and a fully random sample)
        is quantified with this.
        """
        if not self.values or not other.values:
            return 1.0 if bool(self.values) != bool(other.values) else 0.0
        return ks_distance(self.values, other.values)


def ecdf(sample: list[float] | list[int]) -> Ecdf:
    """Build an :class:`Ecdf` from an unsorted sample."""
    return Ecdf(values=sorted_floats(sample))
