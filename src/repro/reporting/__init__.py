"""Report generation: ECDFs, text tables, figure series, summaries.

The benchmark harness uses these to print the same rows and series the
paper reports — Figure 3's dataset CDFs, Figure 4's outcome counts,
Figure 5's gap CDF, Figure 6's coverage CDFs, and the headline-number
tables — alongside the paper's values for comparison.
"""

from .cdf import Ecdf, ecdf
from .figures import render_bar_chart, render_cdf
from .plot import ascii_cdf_plot
from .report import render_markdown_report
from .summary import ComparisonRow, ComparisonTable
from .tables import render_table

__all__ = [
    "ComparisonRow",
    "ComparisonTable",
    "Ecdf",
    "ascii_cdf_plot",
    "ecdf",
    "render_markdown_report",
    "render_bar_chart",
    "render_cdf",
    "render_table",
]

# NOTE: .golden is intentionally not imported here — it pulls in the
# full study pipeline, which plain figure-rendering consumers (the
# benchmark harness) should not pay for. Import repro.reporting.golden
# directly where the snapshot machinery is needed.
