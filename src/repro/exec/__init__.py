"""Sharded, cached execution of the measurement study.

The paper's pipeline is embarrassingly parallel over its sampled links
and enormously repetitive in its archive-API traffic. This package
supplies the three pieces that turn the serial pipeline into a
production-shaped one without changing a single measured number:

- :class:`StudyExecutor` — shards the record list across processes
  (or runs in-process for determinism-sensitive tests) and merges
  results in record order;
- the memoizing backend stacks it builds per shard —
  :class:`~repro.backends.stacks.FetchBackend` /
  :class:`~repro.backends.stacks.CdxBackend`, exact memo caches over
  the two backends with hit/miss accounting (see
  :mod:`repro.backends`);
- :class:`StudyStats` — per-phase wall time plus fetch/query/cache
  counters, attached to every study report; a thin view over a
  :class:`~repro.obs.metrics.MetricsRegistry` so worker shards can
  buffer their own metrics and the executor folds them exactly.

Observability threads through the same seams (see :mod:`repro.obs`):
pass ``tracer=`` to :meth:`StudyExecutor.execute` (or to
``Study.run``) and every shard, record, and backend call records a
span; worker shards buffer spans and registries that the executor
grafts back on merge. All of it is opt-in and inert — traced and
untraced runs produce byte-identical reports.
"""

from .executor import StageResult, StudyExecutor
from .stats import StudyStats
from .worker import (
    MAX_REDIRECT_COPIES_PER_LINK,
    RecordOutcome,
    run_record_stage,
)

__all__ = [
    "MAX_REDIRECT_COPIES_PER_LINK",
    "RecordOutcome",
    "StageResult",
    "StudyExecutor",
    "StudyStats",
    "run_record_stage",
]
