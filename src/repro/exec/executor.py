"""Sharded execution of the study's per-record stages.

:class:`StudyExecutor` splits the record list into contiguous shards
and runs the per-record stage (§3 probe, §4.1 census, §4.2 redirect
validation, §3 post-marking check) over them — across
``multiprocessing`` workers when ``workers > 1``, or in-process when
``workers == 1`` (the deterministic fallback every test can rely on).
Shard outputs are merged back in record order, so a seeded study run
produces a byte-identical report whichever way it executed: the stage
is a pure function of each record, and everything order-sensitive
(the soft-404 detector's RNG stream, the §5 aggregations) stays in the
parent process.

The parent also receives each worker's cache counters and a fetch memo
pre-seeded with every probe result, so follow-up phases (soft-404
re-fetches) hit the memo instead of the network.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass, field

from ..archive.cdx import CdxApi
from ..backends.stacks import CdxBackend, FetchBackend
from ..clock import SimTime
from ..dataset.records import LinkRecord
from ..net.fetch import Fetcher
from ..obs.trace import Tracer
from ..retry import RetryPolicy
from .stats import StudyStats
from .worker import (
    MAX_REDIRECT_COPIES_PER_LINK,
    RecordOutcome,
    ShardResult,
    WorkerContext,
    run_shard,
    set_context,
)


@dataclass
class StageResult:
    """Merged output of the sharded stage.

    Attributes:
        outcomes: one :class:`RecordOutcome` per record, in input order.
        fetcher: parent-side memoizing fetch stack, pre-seeded with
            every probe result — later phases should fetch through it.
        cdx: parent-side memoizing CDX stack for the later phases.
        shards: how many shards actually ran.
    """

    outcomes: list[RecordOutcome]
    fetcher: FetchBackend
    cdx: CdxBackend
    shards: int = 1


def _default_workers() -> int:
    return max(os.cpu_count() or 1, 1)


@dataclass
class StudyExecutor:
    """Runs the per-record stage, sharded across worker processes.

    Args:
        workers: worker process count; ``None`` means one per CPU, and
            ``1`` runs everything in-process (no multiprocessing at
            all), which is the determinism-sensitive-test configuration.
        start_method: ``multiprocessing`` start method; ``None`` picks
            ``fork`` when the platform offers it (workers then inherit
            the world without pickling it) and the platform default
            otherwise.
        max_redirect_copies: per-link bound on §4.2 cross-examinations.
        retry_policy: backoff schedule the memoizing backend stacks
            apply to transient backend failures, in the parent and in
            every worker shard; ``None`` never retries.
    """

    workers: int | None = None
    start_method: str | None = None
    max_redirect_copies: int = MAX_REDIRECT_COPIES_PER_LINK
    retry_policy: RetryPolicy | None = None
    _last_shards: int = field(default=1, init=False, repr=False)

    @property
    def resolved_workers(self) -> int:
        """The concrete worker count this executor will use."""
        return self.workers if self.workers else _default_workers()

    def execute(
        self,
        records: list[LinkRecord],
        fetcher: Fetcher,
        cdx: CdxApi,
        at: SimTime,
        stats: StudyStats | None = None,
        tracer: Tracer | None = None,
        at_overrides: dict[str, SimTime] | None = None,
        bound_archive: bool = False,
    ) -> StageResult:
        """Run the stage over ``records`` and merge in record order.

        ``fetcher`` and ``cdx`` are the *raw* backends; the executor
        owns the caching. Worker cache counters, buffered metrics
        registries, shard wall times, and trace spans are folded into
        ``stats`` / ``tracer`` immediately; the returned parent-side
        caches carry their own counters (and emit into ``tracer``) for
        the phases that follow.

        ``at_overrides`` gives individual records their own probe
        instants (URL-keyed; everything else probes at ``at``), and
        ``bound_archive`` freezes each record's CDX horizon at its
        probe instant — the live pipeline's posture, where records
        carry different staleness and the archive keeps growing.
        """
        workers = min(self.resolved_workers, max(len(records), 1))
        parent_fetcher = FetchBackend(
            fetcher, retry_policy=self.retry_policy, tracer=tracer
        )
        parent_cdx = CdxBackend(
            cdx, retry_policy=self.retry_policy, tracer=tracer
        )
        overrides = at_overrides or {}

        if workers <= 1:
            outcomes = self._execute_serial(
                records, parent_fetcher, parent_cdx, at, stats, tracer,
                at_overrides=overrides, bound_archive=bound_archive,
            )
            self._last_shards = 1
            return StageResult(
                outcomes=outcomes,
                fetcher=parent_fetcher,
                cdx=parent_cdx,
                shards=1,
            )

        spans = _shard_spans(len(records), workers)
        shard_results = self._execute_parallel(
            records, fetcher, cdx, at, spans, workers,
            trace=tracer is not None,
            at_overrides=overrides, bound_archive=bound_archive,
        )
        outcomes: list[RecordOutcome] = []
        for shard in sorted(shard_results, key=lambda s: s.start):
            outcomes.extend(shard.outcomes)
            if stats is not None:
                stats.add_fetch_counts(shard.fetch_hits, shard.fetch_misses)
                stats.add_cdx_counts(shard.cdx_hits, shard.cdx_misses)
                stats.add_retry_counts(
                    fetch_retries=shard.fetch_retries,
                    fetch_giveups=shard.fetch_giveups,
                    cdx_retries=shard.cdx_retries,
                    cdx_giveups=shard.cdx_giveups,
                    backoff_ms=shard.backoff_ms,
                )
                stats.add_shard_wall(shard.wall_seconds)
                if shard.metrics is not None:
                    stats.registry.merge(shard.metrics)
            if tracer is not None and shard.trace_spans:
                tracer.adopt(shard.trace_spans)
        for outcome in outcomes:
            parent_fetcher.seed(
                outcome.record.url,
                overrides.get(outcome.record.url, at),
                outcome.probe.result,
            )
        self._last_shards = len(spans)
        return StageResult(
            outcomes=outcomes,
            fetcher=parent_fetcher,
            cdx=parent_cdx,
            shards=len(spans),
        )

    # -- execution paths ---------------------------------------------------------

    def _execute_serial(
        self,
        records: list[LinkRecord],
        fetcher: FetchBackend,
        cdx: CdxBackend,
        at: SimTime,
        stats: StudyStats | None = None,
        tracer: Tracer | None = None,
        at_overrides: dict[str, SimTime] | None = None,
        bound_archive: bool = False,
    ) -> list[RecordOutcome]:
        from .worker import run_record_stage

        overrides = at_overrides or {}
        metrics = stats.registry if stats is not None else None
        shard_cm = (
            tracer.span("shard", kind="shard", start=0, stop=len(records))
            if tracer is not None
            else None
        )
        if shard_cm is not None:
            shard_cm.__enter__()
        wall_start = time.perf_counter()
        try:
            outcomes = [
                run_record_stage(
                    record, fetcher, cdx,
                    overrides.get(record.url, at),
                    self.max_redirect_copies,
                    tracer=tracer, metrics=metrics,
                    bound_archive=bound_archive,
                )
                for record in records
            ]
        finally:
            if shard_cm is not None:
                shard_cm.__exit__(None, None, None)
        if stats is not None:
            stats.add_shard_wall(time.perf_counter() - wall_start)
        return outcomes

    def _execute_parallel(
        self,
        records: list[LinkRecord],
        fetcher: Fetcher,
        cdx: CdxApi,
        at: SimTime,
        spans: list[tuple[int, int]],
        workers: int,
        trace: bool = False,
        at_overrides: dict[str, SimTime] | None = None,
        bound_archive: bool = False,
    ) -> list[ShardResult]:
        context = WorkerContext(
            records=records,
            fetcher=fetcher,
            cdx=cdx,
            at=at,
            max_redirect_copies=self.max_redirect_copies,
            retry_policy=self.retry_policy,
            trace=trace,
            at_overrides=at_overrides,
            bound_archive=bound_archive,
        )
        method = self.start_method
        if method is None:
            available = multiprocessing.get_all_start_methods()
            method = "fork" if "fork" in available else None
        mp_context = multiprocessing.get_context(method)

        if mp_context.get_start_method() == "fork":
            # Children inherit the context through the fork; nothing is
            # pickled except the tiny (start, stop) spans and results.
            set_context(context)
            try:
                with mp_context.Pool(processes=workers) as pool:
                    return pool.map(run_shard, spans)
            finally:
                set_context(None)
        with mp_context.Pool(
            processes=workers,
            initializer=set_context,
            initargs=(context,),
        ) as pool:
            return pool.map(run_shard, spans)


def _shard_spans(n_records: int, shards: int) -> list[tuple[int, int]]:
    """Contiguous, near-equal (start, stop) spans covering the list.

    Contiguity matters: sampled records keep collection order, so links
    from one directory tend to sit near each other — sharding them
    together maximises each worker's cache locality.
    """
    shards = min(max(shards, 1), max(n_records, 1))
    base, extra = divmod(n_records, shards)
    spans: list[tuple[int, int]] = []
    start = 0
    for index in range(shards):
        stop = start + base + (1 if index < extra else 0)
        if stop > start:
            spans.append((start, stop))
        start = stop
    return spans
