"""Memoizing wrappers around the study's two expensive backends.

Archive-API query volume dominates the cost of link-rot measurement at
scale, and the paper's pipeline repeats itself heavily: the §4.2
sibling-redirect validation and the §5.2 coverage census issue
directory-, host-, and domain-scoped CDX queries that are identical
across links sharing a directory, and the §3 soft-404 detector
re-fetches URLs the live probe already fetched. Both backends are pure
given their arguments (CDX reads an immutable store; a live-web fetch
depends only on ``(url, at)``), so memoization is exact — the wrappers
return the very same tuples the unwrapped backends would.

:class:`CachingCdxApi` additionally *normalizes* scope queries: a
DIRECTORY / HOST / DOMAIN query is keyed on the derived scope (the
directory, the hostname, the registrable domain) plus its filters, with
``exclude_self`` applied as a post-filter. Two links in the same
directory therefore share one backend query even though their
``CdxQuery.url`` fields differ — which is exactly where the repetition
lives.
"""

from __future__ import annotations

from dataclasses import replace

from ..archive.cdx import CdxApi, CdxQuery, MatchType
from ..archive.snapshot import Snapshot
from ..clock import SimTime
from ..net.fetch import Fetcher, FetchResult
from ..obs.trace import Tracer
from ..retry import RetryCounters, RetryPolicy, call_with_retry
from ..urls.parse import ParsedUrl, parse_url
from ..urls.psl import default_psl

#: Scopes whose candidate set is independent of the query URL itself.
_NORMALIZABLE = (MatchType.DIRECTORY, MatchType.HOST, MatchType.DOMAIN)


class CachingCdxApi:
    """Exact memoization over a :class:`~repro.archive.cdx.CdxApi`.

    Presents the same read interface (``query``, ``archived_urls``,
    ``query_count``), so every analysis accepts it in place of the raw
    API. ``hits`` / ``misses`` count memo outcomes; each miss is one
    backend query.

    This wrapper is also where archive-side resilience lives: a
    ``retry_policy`` re-issues backend queries that fail transiently
    (a :class:`~repro.errors.CdxRateLimited` window, a 5xx burst from
    a fault-injected backend), so a masked transient is *also* a memo
    entry — one recovery serves every repeat of the query.

    A ``tracer`` records one ``kind="backend.cdx"`` span per memo miss
    — the queries that actually reached the API, with their retry and
    virtual-backoff cost. Memo hits are deliberately span-free: the
    trace answers "where did backend time go", and a hit costs none.
    """

    def __init__(
        self,
        inner: CdxApi,
        retry_policy: RetryPolicy | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        self._inner = inner
        self._retry_policy = retry_policy
        self._tracer = tracer
        self._query_memo: dict[object, tuple[Snapshot, ...]] = {}
        self._urls_memo: dict[object, tuple[str, ...]] = {}
        self.hits = 0
        self.misses = 0
        self.retry_counters = RetryCounters()

    # -- CdxApi interface --------------------------------------------------------

    @property
    def query_count(self) -> int:
        """Logical queries served (memo hits included)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Share of queries answered from the memo."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def query(self, request: CdxQuery) -> tuple[Snapshot, ...]:
        """Same rows as the wrapped API, memoized."""
        base = self._normalize(request)
        if base is None:
            return self._memoized_query(request)
        rows = self._memoized_query(base)
        if request.exclude_self:
            rows = tuple(row for row in rows if row.url != request.url)
        return rows

    def archived_urls(self, request: CdxQuery) -> tuple[str, ...]:
        """Same collapsed URL list as the wrapped API, memoized."""
        base = self._normalize(request)
        if base is None:
            return self._memoized_urls(request)
        urls = self._memoized_urls(base)
        if request.exclude_self:
            urls = tuple(url for url in urls if url != request.url)
        return urls

    # -- internals ---------------------------------------------------------------

    def _normalize(self, request: CdxQuery) -> CdxQuery | None:
        """A URL-independent base query, or None when not sharable.

        Limited queries are never normalized: a limit interacts with
        the exclusion filter, so only the verbatim request is safe to
        memoize.
        """
        if request.limit or request.match_type not in _NORMALIZABLE:
            return None
        parsed = parse_url(request.url)
        if request.match_type is MatchType.DIRECTORY:
            scope = parsed.directory
        elif request.match_type is MatchType.HOST:
            scope = f"http://{parsed.host_lower}/"
        else:
            domain = default_psl().registrable_domain(parsed.host_lower)
            scope = f"http://{domain}/"
        # Any URL inside the scope derives the same candidate set, and
        # the scope's own root URL is one such URL — so it canonically
        # keys the memo for every link sharing the scope.
        return replace(request, url=scope, exclude_self=False)

    def _backend_call(self, op, retry_key: str, name: str, request: CdxQuery):
        """One actual backend query, retried and (optionally) traced."""
        if self._tracer is None:
            return call_with_retry(
                op, self._retry_policy, key=retry_key,
                counters=self.retry_counters,
            )
        retries_before = self.retry_counters.retries
        backoff_before = self.retry_counters.backoff_ms
        with self._tracer.span(
            name,
            kind="backend.cdx",
            url=request.url,
            match=request.match_type.name,
        ) as span:
            result = call_with_retry(
                op, self._retry_policy, key=retry_key,
                counters=self.retry_counters,
            )
            span.add_virtual_ms(
                self.retry_counters.backoff_ms - backoff_before
            )
            retries = self.retry_counters.retries - retries_before
            if retries:
                span.set(retries=retries)
            return result

    def _memoized_query(self, request: CdxQuery) -> tuple[Snapshot, ...]:
        rows = self._query_memo.get(request)
        if rows is None:
            self.misses += 1
            rows = self._backend_call(
                lambda: self._inner.query(request),
                retry_key=f"cdx.query:{request!r}",
                name="cdx.query",
                request=request,
            )
            self._query_memo[request] = rows
        else:
            self.hits += 1
        return rows

    def _memoized_urls(self, request: CdxQuery) -> tuple[str, ...]:
        urls = self._urls_memo.get(request)
        if urls is None:
            self.misses += 1
            urls = self._backend_call(
                lambda: self._inner.archived_urls(request),
                retry_key=f"cdx.urls:{request!r}",
                name="cdx.archived_urls",
                request=request,
            )
            self._urls_memo[request] = urls
        else:
            self.hits += 1
        return urls


class CachingFetcher:
    """Memoization of live-web fetches, keyed on ``(url, at)``.

    A fetch over the simulated web is a pure function of the URL and
    the instant, so replaying a memoized :class:`FetchResult` is
    indistinguishable from re-fetching. The §3 soft-404 detector
    re-fetches every 200-status URL the live probe just fetched; with
    the memo (optionally pre-seeded from probe results) those duplicate
    fetches never touch the network.

    ``retry_policy`` retries backends whose ``fetch`` *raises*
    transiently. The standard :class:`Fetcher` never does — it owns
    its own retry policy and folds failures into the
    :class:`FetchResult` — so this stays inert for the common stack;
    it exists for fetch-shaped backends that surface transport errors
    as exceptions.

    A ``tracer`` records one ``kind="backend.fetch"`` span per memo
    miss — the fetches that actually touched the (simulated) network,
    with the resulting Figure-4 outcome attached.
    """

    def __init__(
        self,
        inner: Fetcher,
        retry_policy: RetryPolicy | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        self._inner = inner
        self._retry_policy = retry_policy
        self._tracer = tracer
        self._memo: dict[tuple[str, float], FetchResult] = {}
        self.hits = 0
        self.misses = 0
        self.retry_counters = RetryCounters()

    @property
    def fetch_count(self) -> int:
        """Logical fetches served (memo hits included)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Share of fetches answered from the memo."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def fetch(self, url: str | ParsedUrl, at: SimTime) -> FetchResult:
        """Same result as the wrapped fetcher, memoized."""
        key = (str(url), at.days)
        result = self._memo.get(key)
        if result is None:
            self.misses += 1
            result = self._backend_fetch(url, at, key)
            self._memo[key] = result
        else:
            self.hits += 1
        return result

    def _backend_fetch(
        self, url: str | ParsedUrl, at: SimTime, key: tuple[str, float]
    ) -> FetchResult:
        """One actual backend fetch, retried and (optionally) traced."""
        if self._tracer is None:
            return call_with_retry(
                lambda: self._inner.fetch(url, at),
                self._retry_policy,
                key=f"fetch:{key[0]}@{key[1]}",
                counters=self.retry_counters,
            )
        backoff_before = self.retry_counters.backoff_ms
        with self._tracer.span(
            "fetch", kind="backend.fetch", sim=at, url=key[0]
        ) as span:
            result = call_with_retry(
                lambda: self._inner.fetch(url, at),
                self._retry_policy,
                key=f"fetch:{key[0]}@{key[1]}",
                counters=self.retry_counters,
            )
            span.add_virtual_ms(
                self.retry_counters.backoff_ms - backoff_before
            )
            span.set(outcome=result.outcome.value)
            return result

    def seed(self, url: str, at: SimTime, result: FetchResult) -> None:
        """Pre-populate the memo with an already-observed result.

        Used by the parallel executor to hand worker probe results to
        the parent process, so follow-up phases hit instead of
        re-fetching. Seeding counts as neither hit nor miss.
        """
        self._memo.setdefault((url, at.days), result)
