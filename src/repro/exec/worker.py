"""The per-record stage of the study, in shard-friendly form.

One record's §3 live probe, §4.1 census, §4.2 redirect validation, and
§3 first-post-marking-copy check depend only on that record plus the
(read-only) live web and archive — never on any other record. That
independence is what lets :class:`~repro.exec.executor.StudyExecutor`
shard the record list across processes and still merge a byte-identical
result: this module is the unit of work each shard runs.

``repro.analysis.study`` imports this package back, and importing any
``repro.analysis`` submodule runs the package ``__init__`` (which
imports ``study``), so analysis imports here are deferred to call time
in :func:`run_record_stage` — that keeps ``repro.exec`` importable on
its own, whichever side of the cycle loads first.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from dataclasses import dataclass

from ..archive.cdx import CdxApi
from ..clock import SimTime
from ..dataset.records import LinkRecord
from ..net.fetch import Fetcher
from ..retry import RetryCounters, RetryPolicy
from .cache import CachingCdxApi, CachingFetcher

if TYPE_CHECKING:
    from ..analysis.copies import CopyCensus
    from ..analysis.live_status import LiveProbe

#: How many 3xx copies per link to cross-examine before concluding no
#: valid redirect copy exists (keeps §4.2 cost bounded per link).
MAX_REDIRECT_COPIES_PER_LINK = 8


@dataclass(frozen=True, slots=True)
class RecordOutcome:
    """Everything the study learns about one record, order-free."""

    probe: LiveProbe
    census: CopyCensus
    has_valid_redirect_copy: bool
    first_post_marking_erroneous: bool | None

    @property
    def record(self) -> LinkRecord:
        """The record this outcome describes."""
        return self.probe.record


@dataclass(frozen=True, slots=True)
class ShardResult:
    """One shard's outcomes plus its cache and retry accounting.

    Retry counters are *deltas* measured around the shard's own work
    (a pool worker may run several shards on one fetcher copy), so the
    parent can sum them across shards without double counting.
    """

    start: int
    outcomes: tuple[RecordOutcome, ...]
    fetch_hits: int = 0
    fetch_misses: int = 0
    cdx_hits: int = 0
    cdx_misses: int = 0
    fetch_retries: int = 0
    fetch_giveups: int = 0
    cdx_retries: int = 0
    cdx_giveups: int = 0
    backoff_ms: float = 0.0


def run_record_stage(
    record: LinkRecord,
    fetcher: Fetcher | CachingFetcher,
    cdx: CdxApi | CachingCdxApi,
    at: SimTime,
    max_redirect_copies: int = MAX_REDIRECT_COPIES_PER_LINK,
) -> RecordOutcome:
    """Run the sharded portion of the pipeline for one record."""
    from ..analysis.archived_soft404 import archived_copy_erroneous
    from ..analysis.copies import census_link
    from ..analysis.live_status import LiveProbe
    from ..analysis.redirects import RedirectValidator

    probe = LiveProbe(record=record, result=fetcher.fetch(record.url, at))
    census = census_link(record, cdx)

    has_valid_redirect = False
    if not census.has_pre_marking_200 and census.has_pre_marking_3xx:
        validator = RedirectValidator(cdx)
        for snapshot in census.pre_marking_3xx[:max_redirect_copies]:
            if validator.validate(snapshot).valid:
                has_valid_redirect = True
                break

    first_post = census.first_post_marking
    post_erroneous = (
        archived_copy_erroneous(first_post, cdx)
        if first_post is not None
        else None
    )
    return RecordOutcome(
        probe=probe,
        census=census,
        has_valid_redirect_copy=has_valid_redirect,
        first_post_marking_erroneous=post_erroneous,
    )


# -- multiprocessing plumbing ----------------------------------------------------

@dataclass
class WorkerContext:
    """Everything a worker process needs to run its shards."""

    records: list[LinkRecord]
    fetcher: Fetcher
    cdx: CdxApi
    at: SimTime
    max_redirect_copies: int = MAX_REDIRECT_COPIES_PER_LINK
    retry_policy: RetryPolicy | None = None


#: Per-process context. Under the ``fork`` start method the parent sets
#: it before creating the pool and children inherit it for free; under
#: ``spawn``/``forkserver`` the pool initializer ships it once per
#: worker instead of once per task.
_CONTEXT: WorkerContext | None = None


def set_context(context: WorkerContext | None) -> None:
    """Install the worker context in this process."""
    global _CONTEXT
    _CONTEXT = context


def _fetcher_retry_counters(fetcher: Fetcher | CachingFetcher) -> RetryCounters:
    """The retry counters of a fetch backend, tolerating foreign ones."""
    counters = getattr(fetcher, "retry_counters", None)
    return counters if counters is not None else RetryCounters()


def run_shard(span: tuple[int, int]) -> ShardResult:
    """Run the record stage over ``records[start:stop]`` of the context.

    Each shard gets fresh memo caches: links in one shard share sibling
    scopes far more often than links across shards, so per-shard caches
    capture most of the repetition without any cross-process traffic.
    Retry activity on the shared fetcher is reported as a before/after
    delta (other shards in this process own their slice of it).
    """
    context = _CONTEXT
    if context is None:
        raise RuntimeError("worker context not initialised")
    start, stop = span
    fetcher = CachingFetcher(context.fetcher, retry_policy=context.retry_policy)
    cdx = CachingCdxApi(context.cdx, retry_policy=context.retry_policy)
    inner = _fetcher_retry_counters(context.fetcher)
    before = (inner.retries, inner.giveups, inner.backoff_ms)
    outcomes = tuple(
        run_record_stage(
            context.records[index],
            fetcher,
            cdx,
            context.at,
            context.max_redirect_copies,
        )
        for index in range(start, stop)
    )
    return ShardResult(
        start=start,
        outcomes=outcomes,
        fetch_hits=fetcher.hits,
        fetch_misses=fetcher.misses,
        cdx_hits=cdx.hits,
        cdx_misses=cdx.misses,
        fetch_retries=(inner.retries - before[0]) + fetcher.retry_counters.retries,
        fetch_giveups=(inner.giveups - before[1]) + fetcher.retry_counters.giveups,
        cdx_retries=cdx.retry_counters.retries,
        cdx_giveups=cdx.retry_counters.giveups,
        backoff_ms=(inner.backoff_ms - before[2])
        + fetcher.retry_counters.backoff_ms
        + cdx.retry_counters.backoff_ms,
    )
