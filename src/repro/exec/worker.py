"""The per-record stage of the study, in shard-friendly form.

One record's §3 live probe, §4.1 census, §4.2 redirect validation, and
§3 first-post-marking-copy check depend only on that record plus the
(read-only) live web and archive — never on any other record. That
independence is what lets :class:`~repro.exec.executor.StudyExecutor`
shard the record list across processes and still merge a byte-identical
result: this module is the unit of work each shard runs.

Imports reach into ``repro.analysis`` submodules directly (never the
package namespace) because ``repro.analysis.study`` imports this
package back; submodule imports keep that cycle inert.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.archived_soft404 import archived_copy_erroneous
from ..analysis.copies import CopyCensus, census_link
from ..analysis.live_status import LiveProbe
from ..analysis.redirects import RedirectValidator
from ..archive.cdx import CdxApi
from ..clock import SimTime
from ..dataset.records import LinkRecord
from ..net.fetch import Fetcher
from .cache import CachingCdxApi, CachingFetcher

#: How many 3xx copies per link to cross-examine before concluding no
#: valid redirect copy exists (keeps §4.2 cost bounded per link).
MAX_REDIRECT_COPIES_PER_LINK = 8


@dataclass(frozen=True, slots=True)
class RecordOutcome:
    """Everything the study learns about one record, order-free."""

    probe: LiveProbe
    census: CopyCensus
    has_valid_redirect_copy: bool
    first_post_marking_erroneous: bool | None

    @property
    def record(self) -> LinkRecord:
        """The record this outcome describes."""
        return self.probe.record


@dataclass(frozen=True, slots=True)
class ShardResult:
    """One shard's outcomes plus its cache accounting."""

    start: int
    outcomes: tuple[RecordOutcome, ...]
    fetch_hits: int = 0
    fetch_misses: int = 0
    cdx_hits: int = 0
    cdx_misses: int = 0


def run_record_stage(
    record: LinkRecord,
    fetcher: Fetcher | CachingFetcher,
    cdx: CdxApi | CachingCdxApi,
    at: SimTime,
    max_redirect_copies: int = MAX_REDIRECT_COPIES_PER_LINK,
) -> RecordOutcome:
    """Run the sharded portion of the pipeline for one record."""
    probe = LiveProbe(record=record, result=fetcher.fetch(record.url, at))
    census = census_link(record, cdx)

    has_valid_redirect = False
    if not census.has_pre_marking_200 and census.has_pre_marking_3xx:
        validator = RedirectValidator(cdx)
        for snapshot in census.pre_marking_3xx[:max_redirect_copies]:
            if validator.validate(snapshot).valid:
                has_valid_redirect = True
                break

    first_post = census.first_post_marking
    post_erroneous = (
        archived_copy_erroneous(first_post, cdx)
        if first_post is not None
        else None
    )
    return RecordOutcome(
        probe=probe,
        census=census,
        has_valid_redirect_copy=has_valid_redirect,
        first_post_marking_erroneous=post_erroneous,
    )


# -- multiprocessing plumbing ----------------------------------------------------

@dataclass
class WorkerContext:
    """Everything a worker process needs to run its shards."""

    records: list[LinkRecord]
    fetcher: Fetcher
    cdx: CdxApi
    at: SimTime
    max_redirect_copies: int = MAX_REDIRECT_COPIES_PER_LINK


#: Per-process context. Under the ``fork`` start method the parent sets
#: it before creating the pool and children inherit it for free; under
#: ``spawn``/``forkserver`` the pool initializer ships it once per
#: worker instead of once per task.
_CONTEXT: WorkerContext | None = None


def set_context(context: WorkerContext | None) -> None:
    """Install the worker context in this process."""
    global _CONTEXT
    _CONTEXT = context


def run_shard(span: tuple[int, int]) -> ShardResult:
    """Run the record stage over ``records[start:stop]`` of the context.

    Each shard gets fresh memo caches: links in one shard share sibling
    scopes far more often than links across shards, so per-shard caches
    capture most of the repetition without any cross-process traffic.
    """
    context = _CONTEXT
    if context is None:
        raise RuntimeError("worker context not initialised")
    start, stop = span
    fetcher = CachingFetcher(context.fetcher)
    cdx = CachingCdxApi(context.cdx)
    outcomes = tuple(
        run_record_stage(
            context.records[index],
            fetcher,
            cdx,
            context.at,
            context.max_redirect_copies,
        )
        for index in range(start, stop)
    )
    return ShardResult(
        start=start,
        outcomes=outcomes,
        fetch_hits=fetcher.hits,
        fetch_misses=fetcher.misses,
        cdx_hits=cdx.hits,
        cdx_misses=cdx.misses,
    )
