"""The per-record stage of the study, in shard-friendly form.

One record's §3 live probe, §4.1 census, §4.2 redirect validation, and
§3 first-post-marking-copy check depend only on that record plus the
(read-only) live web and archive — never on any other record. That
independence is what lets :class:`~repro.exec.executor.StudyExecutor`
shard the record list across processes and still merge a byte-identical
result: this module is the unit of work each shard runs.

Observability rides the same shape: each record stage measures its own
wall time and backend-counter deltas into a
:class:`~repro.obs.provenance.RecordProvenance` (and, when tracing is
on, a ``kind="record"`` span), and each shard buffers a private
:class:`~repro.obs.metrics.MetricsRegistry` plus its trace spans so
the parent can fold them exactly — the same delta-then-merge motion
the retry counters use.

``repro.analysis.study`` imports this package back, and importing any
``repro.analysis`` submodule runs the package ``__init__`` (which
imports ``study``), so analysis imports here are deferred to call time
in :func:`run_record_stage` — that keeps ``repro.exec`` importable on
its own, whichever side of the cycle loads first.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING

from dataclasses import dataclass

from ..archive.cdx import CdxApi
from ..backends.stacks import CdxBackend, FetchBackend
from ..clock import SimTime
from ..dataset.records import LinkRecord
from ..net.fetch import Fetcher
from ..obs.metrics import MetricsRegistry
from ..obs.provenance import RecordProvenance, backend_snapshot
from ..obs.trace import Span, Tracer
from ..retry import RetryCounters, RetryPolicy

if TYPE_CHECKING:
    from ..analysis.copies import CopyCensus
    from ..analysis.live_status import LiveProbe

#: How many 3xx copies per link to cross-examine before concluding no
#: valid redirect copy exists (keeps §4.2 cost bounded per link).
MAX_REDIRECT_COPIES_PER_LINK = 8


@dataclass(frozen=True, slots=True)
class RecordOutcome:
    """Everything the study learns about one record, order-free.

    ``provenance`` is the record's cost audit (bucket, span id,
    backend-traffic deltas); it is execution-shape-dependent at the
    cache-hit level and therefore excluded from any cross-run
    equivalence reasoning — the measurement fields above it are not.
    """

    probe: LiveProbe
    census: CopyCensus
    has_valid_redirect_copy: bool
    first_post_marking_erroneous: bool | None
    provenance: RecordProvenance | None = None

    @property
    def record(self) -> LinkRecord:
        """The record this outcome describes."""
        return self.probe.record


@dataclass(frozen=True, slots=True)
class ShardResult:
    """One shard's outcomes plus its cache, retry, and obs accounting.

    Retry counters are *deltas* measured around the shard's own work
    (a pool worker may run several shards on one fetcher copy), so the
    parent can sum them across shards without double counting.
    ``metrics`` is the shard's buffered registry (record buckets, wall
    histograms) and ``trace_spans`` its buffered trace, both folded
    into the parent's on merge; ``wall_seconds`` is the shard's own
    wall time, measured inside the worker so imbalance is visible.
    """

    start: int
    outcomes: tuple[RecordOutcome, ...]
    fetch_hits: int = 0
    fetch_misses: int = 0
    cdx_hits: int = 0
    cdx_misses: int = 0
    fetch_retries: int = 0
    fetch_giveups: int = 0
    cdx_retries: int = 0
    cdx_giveups: int = 0
    backoff_ms: float = 0.0
    wall_seconds: float = 0.0
    metrics: MetricsRegistry | None = None
    trace_spans: tuple[Span, ...] = ()


def run_record_stage(
    record: LinkRecord,
    fetcher: Fetcher | FetchBackend,
    cdx: CdxApi | CdxBackend,
    at: SimTime,
    max_redirect_copies: int = MAX_REDIRECT_COPIES_PER_LINK,
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
    bound_archive: bool = False,
) -> RecordOutcome:
    """Run the sharded portion of the pipeline for one record.

    Always attaches provenance (the counter deltas are nearly free);
    ``tracer`` adds a ``record`` span enclosing the stage's backend
    spans, and ``metrics`` buffers the record's bucket and wall time.

    ``at`` is the record's probe instant (the live pipeline hands each
    record its own); ``bound_archive`` additionally clamps every CDX
    query to captures at or before it (see
    :class:`~repro.archive.cdx.AsOfCdx`), the posture under which a
    cached outcome stays valid while the archive keeps growing.
    """
    from ..analysis.archived_soft404 import archived_copy_erroneous
    from ..analysis.copies import census_link
    from ..analysis.live_status import LiveProbe
    from ..analysis.redirects import RedirectValidator
    from ..archive.cdx import AsOfCdx

    stage_cdx = AsOfCdx(cdx, at) if bound_archive else cdx
    before = backend_snapshot(fetcher, cdx)
    span_cm = (
        tracer.span("record", kind="record", sim=at, url=record.url)
        if tracer is not None
        else None
    )
    span = span_cm.__enter__() if span_cm is not None else None
    start = time.perf_counter()
    try:
        probe = LiveProbe(record=record, result=fetcher.fetch(record.url, at))
        census = census_link(record, stage_cdx)

        has_valid_redirect = False
        if not census.has_pre_marking_200 and census.has_pre_marking_3xx:
            validator = RedirectValidator(stage_cdx)
            for snapshot in census.pre_marking_3xx[:max_redirect_copies]:
                if validator.validate(snapshot).valid:
                    has_valid_redirect = True
                    break

        first_post = census.first_post_marking
        post_erroneous = (
            archived_copy_erroneous(first_post, stage_cdx)
            if first_post is not None
            else None
        )
    finally:
        if span_cm is not None:
            span_cm.__exit__(None, None, None)
    wall = time.perf_counter() - start

    bucket = probe.result.outcome.value
    provenance = RecordProvenance.from_deltas(
        url=record.url,
        bucket=bucket,
        before=before,
        after=backend_snapshot(fetcher, cdx),
        span_id=span.span_id if span is not None else None,
        wall_seconds=wall,
    )
    if span is not None:
        span.set(
            bucket=bucket,
            fetches=provenance.fetches,
            cdx_queries=provenance.cdx_queries,
            retries=provenance.retries,
        )
        span.add_virtual_ms(provenance.backoff_ms)
    if metrics is not None:
        metrics.counter("records.traced").inc()
        metrics.counter(f"records.bucket/{bucket}").inc()
        metrics.histogram("record.wall_s").observe(wall)
    return RecordOutcome(
        probe=probe,
        census=census,
        has_valid_redirect_copy=has_valid_redirect,
        first_post_marking_erroneous=post_erroneous,
        provenance=provenance,
    )


# -- multiprocessing plumbing ----------------------------------------------------

@dataclass
class WorkerContext:
    """Everything a worker process needs to run its shards."""

    records: list[LinkRecord]
    fetcher: Fetcher
    cdx: CdxApi
    at: SimTime
    max_redirect_copies: int = MAX_REDIRECT_COPIES_PER_LINK
    retry_policy: RetryPolicy | None = None
    #: Whether shards should buffer trace spans for the parent tracer.
    trace: bool = False
    #: Per-URL probe instants overriding ``at`` (live pipeline).
    at_overrides: dict[str, SimTime] | None = None
    #: Clamp CDX queries to each record's probe instant (live pipeline).
    bound_archive: bool = False


#: Per-process context. Under the ``fork`` start method the parent sets
#: it before creating the pool and children inherit it for free; under
#: ``spawn``/``forkserver`` the pool initializer ships it once per
#: worker instead of once per task.
_CONTEXT: WorkerContext | None = None


def set_context(context: WorkerContext | None) -> None:
    """Install the worker context in this process."""
    global _CONTEXT
    _CONTEXT = context


def _fetcher_retry_counters(fetcher: Fetcher | FetchBackend) -> RetryCounters:
    """The retry counters of a fetch backend, tolerating foreign ones."""
    counters = getattr(fetcher, "retry_counters", None)
    return counters if counters is not None else RetryCounters()


def run_shard(span: tuple[int, int]) -> ShardResult:
    """Run the record stage over ``records[start:stop]`` of the context.

    Each shard gets fresh memo caches: links in one shard share sibling
    scopes far more often than links across shards, so per-shard caches
    capture most of the repetition without any cross-process traffic.
    Retry activity on the shared fetcher is reported as a before/after
    delta (other shards in this process own their slice of it).

    The shard likewise buffers its own metrics registry, trace spans
    (ids prefixed ``w{start}.`` so parent adoption cannot collide),
    and its own wall clock — everything the parent folds on merge.
    """
    context = _CONTEXT
    if context is None:
        raise RuntimeError("worker context not initialised")
    start, stop = span
    tracer = Tracer(prefix=f"w{start}.") if context.trace else None
    metrics = MetricsRegistry()
    fetcher = FetchBackend(
        context.fetcher, retry_policy=context.retry_policy, tracer=tracer
    )
    cdx = CdxBackend(
        context.cdx, retry_policy=context.retry_policy, tracer=tracer
    )
    inner = _fetcher_retry_counters(context.fetcher)
    before = (inner.retries, inner.giveups, inner.backoff_ms)
    shard_cm = (
        tracer.span("shard", kind="shard", start=start, stop=stop)
        if tracer is not None
        else None
    )
    if shard_cm is not None:
        shard_cm.__enter__()
    wall_start = time.perf_counter()
    try:
        overrides = context.at_overrides or {}
        outcomes = tuple(
            run_record_stage(
                context.records[index],
                fetcher,
                cdx,
                overrides.get(context.records[index].url, context.at),
                context.max_redirect_copies,
                tracer=tracer,
                metrics=metrics,
                bound_archive=context.bound_archive,
            )
            for index in range(start, stop)
        )
    finally:
        if shard_cm is not None:
            shard_cm.__exit__(None, None, None)
    wall = time.perf_counter() - wall_start
    return ShardResult(
        start=start,
        outcomes=outcomes,
        fetch_hits=fetcher.hits,
        fetch_misses=fetcher.misses,
        cdx_hits=cdx.hits,
        cdx_misses=cdx.misses,
        fetch_retries=(inner.retries - before[0]) + fetcher.retry_counters.retries,
        fetch_giveups=(inner.giveups - before[1]) + fetcher.retry_counters.giveups,
        cdx_retries=cdx.retry_counters.retries,
        cdx_giveups=cdx.retry_counters.giveups,
        backoff_ms=(inner.backoff_ms - before[2])
        + fetcher.retry_counters.backoff_ms
        + cdx.retry_counters.backoff_ms,
        wall_seconds=wall,
        metrics=metrics,
        trace_spans=tuple(tracer.spans) if tracer is not None else (),
    )
