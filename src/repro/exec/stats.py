"""Execution accounting for the study pipeline.

:class:`StudyStats` is the single place where the cost of a study run
is recorded: wall time per pipeline phase, how many live-web fetches
and CDX queries the analyses asked for, how many of those the memo
caches absorbed, and how the work was sharded. Every run of
:meth:`Study.run <repro.analysis.study.Study.run>` attaches one to its
report, which is what makes the perf trajectory measurable from PR to
PR (``scripts/full_run.py`` and the benchmark suite both print it).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field


def _rate(hits: int, total: int) -> float:
    """``hits / total``, degrading to 0.0 for an empty denominator.

    Every percentage :meth:`StudyStats.summary` prints flows through
    here, so zero-activity runs render "0.0%" instead of dividing by
    zero.
    """
    return hits / total if total else 0.0


@dataclass
class StudyStats:
    """Cost accounting for one study run.

    Attributes:
        workers: worker processes the executor ran with (1 = serial).
        shards: number of record shards the stage was split into.
        phase_seconds: wall time per pipeline phase, in execution order.
        fetches: live-web ``fetch()`` calls the analyses issued.
        backend_fetches: fetches that actually hit the simulated
            network (``fetches - fetch_cache_hits``).
        fetch_cache_hits: fetches answered from the ``(url, at)`` memo.
        cdx_queries: CDX queries the analyses issued.
        backend_cdx_queries: queries that reached the CDX API proper.
        cdx_cache_hits: queries answered from the query memo.
        fetch_retries / fetch_giveups: live-web transient failures
            retried / abandoned (zero unless a retry policy is set and
            transients actually occur).
        cdx_retries / cdx_giveups: the same for archive queries.
        backoff_ms: total *virtual* backoff delay across all clients —
            what the run would have spent sleeping on a wall clock.
    """

    workers: int = 1
    shards: int = 1
    phase_seconds: dict[str, float] = field(default_factory=dict)
    fetches: int = 0
    backend_fetches: int = 0
    fetch_cache_hits: int = 0
    cdx_queries: int = 0
    backend_cdx_queries: int = 0
    cdx_cache_hits: int = 0
    fetch_retries: int = 0
    fetch_giveups: int = 0
    cdx_retries: int = 0
    cdx_giveups: int = 0
    backoff_ms: float = 0.0

    @contextmanager
    def phase(self, name: str):
        """Time one pipeline phase (additive on repeated names)."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.phase_seconds[name] = (
                self.phase_seconds.get(name, 0.0) + elapsed
            )

    # -- cache counter intake ----------------------------------------------------

    def add_fetch_counts(self, hits: int, misses: int) -> None:
        """Fold one fetch cache's counters into the totals."""
        self.fetches += hits + misses
        self.fetch_cache_hits += hits
        self.backend_fetches += misses

    def add_cdx_counts(self, hits: int, misses: int) -> None:
        """Fold one CDX cache's counters into the totals."""
        self.cdx_queries += hits + misses
        self.cdx_cache_hits += hits
        self.backend_cdx_queries += misses

    def add_retry_counts(
        self,
        fetch_retries: int = 0,
        fetch_giveups: int = 0,
        cdx_retries: int = 0,
        cdx_giveups: int = 0,
        backoff_ms: float = 0.0,
    ) -> None:
        """Fold one client's (or one shard's) retry counters in.

        Called once per worker shard by the executor and once by the
        study for the parent-side clients; totals are therefore exact
        sums over every process that retried anything.
        """
        self.fetch_retries += fetch_retries
        self.fetch_giveups += fetch_giveups
        self.cdx_retries += cdx_retries
        self.cdx_giveups += cdx_giveups
        self.backoff_ms += backoff_ms

    # -- derived rates -----------------------------------------------------------

    @property
    def fetch_cache_hit_rate(self) -> float:
        """Share of fetches served from the memo."""
        return _rate(self.fetch_cache_hits, self.fetches)

    @property
    def cdx_cache_hit_rate(self) -> float:
        """Share of CDX queries served from the memo."""
        return _rate(self.cdx_cache_hits, self.cdx_queries)

    @property
    def total_retries(self) -> int:
        """Retries across both backends."""
        return self.fetch_retries + self.cdx_retries

    @property
    def total_giveups(self) -> int:
        """Giveups across both backends."""
        return self.fetch_giveups + self.cdx_giveups

    @property
    def retry_giveup_rate(self) -> float:
        """Share of retry bouts that still ended in failure.

        A bout is one logical operation that needed retrying; retries
        plus giveups over-counts bouts, so this is a conservative
        upper bound used only for display.
        """
        return _rate(self.total_giveups, self.total_retries + self.total_giveups)

    @property
    def total_seconds(self) -> float:
        """Wall time summed over all recorded phases."""
        return sum(self.phase_seconds.values())

    def summary(self) -> str:
        """Multi-line digest for logs, full_run, and benchmarks."""
        phases = "; ".join(
            f"{name} {seconds:.2f}s"
            for name, seconds in self.phase_seconds.items()
        )
        return "\n".join(
            [
                (
                    f"executor: {self.workers} worker(s), "
                    f"{self.shards} shard(s), "
                    f"{self.total_seconds:.2f}s total"
                ),
                f"phases: {phases or 'none recorded'}",
                (
                    f"fetches: {self.fetches} issued, "
                    f"{self.backend_fetches} reached the network "
                    f"(cache hit rate {self.fetch_cache_hit_rate:.1%})"
                ),
                (
                    f"cdx queries: {self.cdx_queries} issued, "
                    f"{self.backend_cdx_queries} reached the API "
                    f"(cache hit rate {self.cdx_cache_hit_rate:.1%})"
                ),
                (
                    f"retries: fetch {self.fetch_retries} "
                    f"(gave up {self.fetch_giveups}), "
                    f"cdx {self.cdx_retries} (gave up {self.cdx_giveups}); "
                    f"virtual backoff {self.backoff_ms:.0f} ms"
                ),
            ]
        )
