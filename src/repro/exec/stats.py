"""Execution accounting for the study pipeline.

:class:`StudyStats` is the single place where the cost of a study run
is recorded: wall time per pipeline phase, how many live-web fetches
and CDX queries the analyses asked for, how many of those the memo
caches absorbed, and how the work was sharded. Every run of
:meth:`Study.run <repro.analysis.study.Study.run>` attaches one to its
report, which is what makes the perf trajectory measurable from PR to
PR (``scripts/full_run.py`` and the benchmark suite both print it).

Since the observability PR, ``StudyStats`` is a thin *view* over a
:class:`~repro.obs.metrics.MetricsRegistry`: every counter it exposes
is a named registry instrument, so worker shards can buffer their own
registries and the executor folds them in exactly (the same motion the
retry-counter deltas use), and ``scripts/full_run.py --metrics-json``
can dump the whole registry machine-readably. The public attribute
surface (``fetches``, ``phase_seconds``, ``summary()`` …) is
unchanged.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import TYPE_CHECKING

from ..numerics import backend_name
from ..obs.metrics import MetricsRegistry

if TYPE_CHECKING:
    from ..obs.trace import Tracer

#: Registry prefix under which per-phase wall seconds live.
_PHASE_PREFIX = "phase.seconds/"


def _rate(hits: int, total: int) -> float:
    """``hits / total``, degrading to 0.0 for an empty denominator.

    Every percentage :meth:`StudyStats.summary` prints flows through
    here, so zero-activity runs render "0.0%" instead of dividing by
    zero.
    """
    return hits / total if total else 0.0


class StudyStats:
    """Cost accounting for one study run, viewed over a metrics registry.

    Attributes:
        registry: the backing :class:`~repro.obs.metrics.MetricsRegistry`
            (shared with the executor's fold-on-merge path).
        workers: worker processes the executor ran with (1 = serial).
        shards: number of record shards the stage was split into.
        phase_seconds: wall time per pipeline phase, in execution order.
        fetches: live-web ``fetch()`` calls the analyses issued.
        backend_fetches: fetches that actually hit the simulated
            network (``fetches - fetch_cache_hits``).
        fetch_cache_hits: fetches answered from the ``(url, at)`` memo.
        cdx_queries: CDX queries the analyses issued.
        backend_cdx_queries: queries that reached the CDX API proper.
        cdx_cache_hits: queries answered from the query memo.
        fetch_retries / fetch_giveups: live-web transient failures
            retried / abandoned (zero unless a retry policy is set and
            transients actually occur).
        cdx_retries / cdx_giveups: the same for archive queries.
        backoff_ms: total *virtual* backoff delay across all clients —
            what the run would have spent sleeping on a wall clock.
    """

    def __init__(
        self,
        workers: int = 1,
        shards: int = 1,
        registry: MetricsRegistry | None = None,
        analysis_backend: str | None = None,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.workers = workers
        self.shards = shards
        #: Which columnar numeric backend ("numpy"/"stdlib") the
        #: analysis tier ran on — a display tag, not a counter: it is
        #: identical across shards and never folds.
        self.analysis_backend = (
            analysis_backend if analysis_backend is not None else backend_name()
        )

    # -- executor topology (gauges) ----------------------------------------------

    @property
    def workers(self) -> int:
        return int(self.registry.gauge("executor.workers").value)

    @workers.setter
    def workers(self, value: int) -> None:
        self.registry.gauge("executor.workers").set(value)

    @property
    def shards(self) -> int:
        return int(self.registry.gauge("executor.shards").value)

    @shards.setter
    def shards(self, value: int) -> None:
        self.registry.gauge("executor.shards").set(value)

    # -- phase timing ------------------------------------------------------------

    @property
    def phase_seconds(self) -> dict[str, float]:
        """Wall time per pipeline phase, in first-recorded order."""
        return {
            name[len(_PHASE_PREFIX):]: value
            for name, value in self.registry.counters(
                _PHASE_PREFIX, sort=False
            ).items()
        }

    @contextmanager
    def phase(self, name: str, tracer: "Tracer | None" = None):
        """Time one pipeline phase (additive on repeated names).

        With a ``tracer``, the elapsed block is also recorded as a
        ``kind="phase"`` span carrying *exactly* the seconds added to
        :attr:`phase_seconds` — which is what lets a trace report
        reconstruct the phase table from the JSONL alone.
        """
        span_cm = (
            tracer.span(name, kind="phase") if tracer is not None else None
        )
        span = span_cm.__enter__() if span_cm is not None else None
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.registry.counter(f"{_PHASE_PREFIX}{name}").inc(elapsed)
            if span_cm is not None:
                span_cm.__exit__(None, None, None)
                span.duration_s = elapsed

    # -- cache counter intake ----------------------------------------------------

    def add_fetch_counts(self, hits: int, misses: int) -> None:
        """Fold one fetch cache's counters into the totals."""
        self.registry.counter("fetch.issued").inc(hits + misses)
        self.registry.counter("fetch.cache_hits").inc(hits)
        self.registry.counter("fetch.backend").inc(misses)

    def add_cdx_counts(self, hits: int, misses: int) -> None:
        """Fold one CDX cache's counters into the totals."""
        self.registry.counter("cdx.issued").inc(hits + misses)
        self.registry.counter("cdx.cache_hits").inc(hits)
        self.registry.counter("cdx.backend").inc(misses)

    def add_retry_counts(
        self,
        fetch_retries: int = 0,
        fetch_giveups: int = 0,
        cdx_retries: int = 0,
        cdx_giveups: int = 0,
        backoff_ms: float = 0.0,
    ) -> None:
        """Fold one client's (or one shard's) retry counters in.

        Called once per worker shard by the executor and once by the
        study for the parent-side clients; totals are therefore exact
        sums over every process that retried anything.
        """
        self.registry.counter("retry.fetch.retries").inc(fetch_retries)
        self.registry.counter("retry.fetch.giveups").inc(fetch_giveups)
        self.registry.counter("retry.cdx.retries").inc(cdx_retries)
        self.registry.counter("retry.cdx.giveups").inc(cdx_giveups)
        self.registry.counter("retry.backoff_ms").inc(backoff_ms)

    def add_shard_wall(self, seconds: float) -> None:
        """Record one shard's wall time, folding min/max/total.

        In parallel runs each shard times itself inside its worker (the
        parent only ever saw the whole pool's span before this
        existed), so worker imbalance — one slow shard pinning the
        stage — is visible in the summary and the metrics dump.
        """
        count = self.registry.counter("shard.wall.count")
        minimum = self.registry.gauge("shard.wall.min_s")
        maximum = self.registry.gauge("shard.wall.max_s")
        if count.int_value == 0:
            minimum.set(seconds)
            maximum.set(seconds)
        else:
            minimum.set(min(minimum.value, seconds))
            maximum.set(max(maximum.value, seconds))
        count.inc()
        self.registry.counter("shard.wall.total_s").inc(seconds)
        self.registry.histogram("shard.wall_s").observe(seconds)

    # -- counter views -----------------------------------------------------------

    def _count(self, name: str) -> int:
        return self.registry.counter(name).int_value

    @property
    def fetches(self) -> int:
        return self._count("fetch.issued")

    @property
    def fetch_cache_hits(self) -> int:
        return self._count("fetch.cache_hits")

    @property
    def backend_fetches(self) -> int:
        return self._count("fetch.backend")

    @property
    def cdx_queries(self) -> int:
        return self._count("cdx.issued")

    @property
    def cdx_cache_hits(self) -> int:
        return self._count("cdx.cache_hits")

    @property
    def backend_cdx_queries(self) -> int:
        return self._count("cdx.backend")

    @property
    def fetch_retries(self) -> int:
        return self._count("retry.fetch.retries")

    @property
    def fetch_giveups(self) -> int:
        return self._count("retry.fetch.giveups")

    @property
    def cdx_retries(self) -> int:
        return self._count("retry.cdx.retries")

    @property
    def cdx_giveups(self) -> int:
        return self._count("retry.cdx.giveups")

    @property
    def backoff_ms(self) -> float:
        return self.registry.counter("retry.backoff_ms").value

    @property
    def shard_wall_count(self) -> int:
        """How many shard wall times have been folded in."""
        return self._count("shard.wall.count")

    @property
    def shard_wall_total(self) -> float:
        """Sum of per-shard wall seconds (CPU-seconds of stage work)."""
        return self.registry.counter("shard.wall.total_s").value

    @property
    def shard_wall_min(self) -> float:
        """Fastest shard's wall seconds (0.0 before any shard ran)."""
        return self.registry.gauge("shard.wall.min_s").value

    @property
    def shard_wall_max(self) -> float:
        """Slowest shard's wall seconds (0.0 before any shard ran)."""
        return self.registry.gauge("shard.wall.max_s").value

    # -- derived rates -----------------------------------------------------------

    @property
    def fetch_cache_hit_rate(self) -> float:
        """Share of fetches served from the memo."""
        return _rate(self.fetch_cache_hits, self.fetches)

    @property
    def cdx_cache_hit_rate(self) -> float:
        """Share of CDX queries served from the memo."""
        return _rate(self.cdx_cache_hits, self.cdx_queries)

    @property
    def total_retries(self) -> int:
        """Retries across both backends."""
        return self.fetch_retries + self.cdx_retries

    @property
    def total_giveups(self) -> int:
        """Giveups across both backends."""
        return self.fetch_giveups + self.cdx_giveups

    @property
    def retry_giveup_rate(self) -> float:
        """Share of retry bouts that still ended in failure.

        A bout is one logical operation that needed retrying; retries
        plus giveups over-counts bouts, so this is a conservative
        upper bound used only for display.
        """
        return _rate(self.total_giveups, self.total_retries + self.total_giveups)

    @property
    def total_seconds(self) -> float:
        """Wall time summed over all recorded phases."""
        return sum(self.phase_seconds.values())

    # -- rendering ---------------------------------------------------------------

    def as_dict(self) -> dict:
        """Machine-readable dump: topology, phases, and the registry."""
        return {
            "workers": self.workers,
            "shards": self.shards,
            "analysis_backend": self.analysis_backend,
            "total_seconds": self.total_seconds,
            "phase_seconds": self.phase_seconds,
            "registry": self.registry.snapshot(),
        }

    def summary(self) -> str:
        """Multi-line digest for logs, full_run, and benchmarks."""
        phases = "; ".join(
            f"{name} {seconds:.2f}s"
            for name, seconds in self.phase_seconds.items()
        )
        executor_line = (
            f"executor: {self.workers} worker(s), "
            f"{self.shards} shard(s), "
            f"{self.total_seconds:.2f}s total, "
            f"analysis backend {self.analysis_backend}"
        )
        if self.shard_wall_count:
            executor_line += (
                f", shard wall min/max/total "
                f"{self.shard_wall_min:.2f}/{self.shard_wall_max:.2f}/"
                f"{self.shard_wall_total:.2f}s"
            )
        return "\n".join(
            [
                executor_line,
                f"phases: {phases or 'none recorded'}",
                (
                    f"fetches: {self.fetches} issued, "
                    f"{self.backend_fetches} reached the network "
                    f"(cache hit rate {self.fetch_cache_hit_rate:.1%})"
                ),
                (
                    f"cdx queries: {self.cdx_queries} issued, "
                    f"{self.backend_cdx_queries} reached the API "
                    f"(cache hit rate {self.cdx_cache_hit_rate:.1%})"
                ),
                (
                    f"retries: fetch {self.fetch_retries} "
                    f"(gave up {self.fetch_giveups}), "
                    f"cdx {self.cdx_retries} (gave up {self.cdx_giveups}); "
                    f"virtual backoff {self.backoff_ms:.0f} ms"
                ),
            ]
        )

    def __repr__(self) -> str:
        return (
            f"StudyStats(workers={self.workers}, shards={self.shards}, "
            f"fetches={self.fetches}, cdx_queries={self.cdx_queries}, "
            f"total_seconds={self.total_seconds:.3f})"
        )
