"""Deterministic, named random-number streams.

The whole reproduction must be deterministic under a single seed so
that tests and benchmarks are stable. A single shared ``random.Random``
would make every component's draws depend on the order in which other
components happen to run, so instead each component asks the
:class:`RngRegistry` for a stream by name; the stream's seed is derived
from the master seed and the name, making streams independent of each
other and of call order.
"""

from __future__ import annotations

import hashlib
import math
import random
from collections.abc import Sequence
from typing import TypeVar

T = TypeVar("T")


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a stable 64-bit seed from a master seed and a stream name."""
    digest = hashlib.sha256(f"{master_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class Stream(random.Random):
    """A named random stream with a few distribution helpers.

    Inherits the full ``random.Random`` API and adds the heavy-tailed
    distributions the world generator needs (Zipf, log-uniform,
    log-normal days).
    """

    def __init__(self, seed: int, name: str = "") -> None:
        super().__init__(seed)
        self.name = name

    def zipf(self, alpha: float, max_value: int) -> int:
        """Draw from a truncated Zipf distribution on ``1..max_value``.

        Uses inverse-CDF sampling over the normalised harmonic weights.
        ``alpha`` is the decay exponent; larger means heavier head.
        """
        if max_value < 1:
            raise ValueError("max_value must be >= 1")
        # Inverse transform on the discrete CDF. max_value is small
        # enough in our use (<= a few thousand) for a linear scan.
        weights = [1.0 / (k ** alpha) for k in range(1, max_value + 1)]
        total = sum(weights)
        target = self.random() * total
        acc = 0.0
        for k, weight in enumerate(weights, start=1):
            acc += weight
            if acc >= target:
                return k
        return max_value

    def log_uniform(self, low: float, high: float) -> float:
        """Draw a value whose logarithm is uniform on [log low, log high]."""
        if low <= 0 or high <= 0 or high < low:
            raise ValueError("log_uniform requires 0 < low <= high")
        return math.exp(self.uniform(math.log(low), math.log(high)))

    def lognormal_days(self, median_days: float, sigma: float) -> float:
        """Draw a positive duration in days with the given median.

        Log-normal with ``mu = ln(median)``; used for crawl delays and
        page lifetimes, both of which the paper observes to span from
        days to years (Figure 5's log-scale x-axis).
        """
        if median_days <= 0:
            raise ValueError("median_days must be positive")
        return self.lognormvariate(math.log(median_days), sigma)

    def poisson(self, lam: float) -> int:
        """Draw from Poisson(lam) (Knuth's method; lam is small here)."""
        if lam < 0:
            raise ValueError("lam must be non-negative")
        if lam == 0:
            return 0
        threshold = math.exp(-lam)
        count = 0
        product = self.random()
        while product > threshold:
            count += 1
            product *= self.random()
        return count

    def weighted_choice(self, options: Sequence[tuple[T, float]]) -> T:
        """Pick one option from ``(value, weight)`` pairs."""
        if not options:
            raise ValueError("weighted_choice requires at least one option")
        values = [value for value, _ in options]
        weights = [weight for _, weight in options]
        return self.choices(values, weights=weights, k=1)[0]

    def chance(self, probability: float) -> bool:
        """Bernoulli draw."""
        return self.random() < probability


class RngRegistry:
    """Factory for independent named random streams under one master seed."""

    def __init__(self, master_seed: int = 0) -> None:
        self.master_seed = master_seed
        self._streams: dict[str, Stream] = {}

    def stream(self, name: str) -> Stream:
        """Return the stream for ``name``, creating it on first use.

        Repeated calls with the same name return the *same* stream
        object (so draws continue rather than restart).
        """
        if name not in self._streams:
            self._streams[name] = Stream(derive_seed(self.master_seed, name), name)
        return self._streams[name]

    def fork(self, name: str) -> "RngRegistry":
        """A child registry whose master seed is derived from ``name``.

        Useful for giving each generated site its own independent
        universe of streams.
        """
        return RngRegistry(derive_seed(self.master_seed, f"fork:{name}"))

    def __repr__(self) -> str:
        return (
            f"RngRegistry(master_seed={self.master_seed}, "
            f"streams={sorted(self._streams)})"
        )
