"""repro — reproduction of "Characterizing 'Permanently Dead' Links on
Wikipedia" (Nyayachavadi, Zhu, Madhyastha; ACM IMC 2022).

The package builds, from scratch, every system the measurement study
depends on — a simulated live web, a Wayback-Machine-style archive
with Availability and CDX APIs, a Wikipedia with wikitext articles and
edit histories, and a behavioural port of InternetArchiveBot — and
then runs the paper's actual analysis pipeline against them.

Quickstart::

    from repro.dataset.worldgen import WorldConfig, generate_world
    from repro.analysis.study import Study

    world = generate_world(WorldConfig(n_links=3000, seed=2022))
    report = Study.from_world(world).run()
    print(report.summary())

See README.md for the architecture overview, DESIGN.md for the system
inventory and experiment index, and EXPERIMENTS.md for recorded
paper-vs-measured results.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
