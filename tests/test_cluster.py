"""Tests for repro.service.cluster — sharded, replicated serving.

The contracts pinned here:

- rendezvous (HRW) hashing balances keys over any node set and remaps
  the minimum possible set when nodes join or leave (hypothesis
  property tests);
- routing keys put every studied URL on the shard that holds its
  entry, because both sides derive the registrable domain identically;
- the cluster's answer surface (``Response.to_wire``: status, body,
  index version) and shed set are byte-identical to the single-node
  service for every tested shard/replica count and router policy when
  faults are off — and a 1×1 cluster reproduces the single-node run
  *including timing*;
- serial and thread-pool cluster runs return identical responses;
- replica-level chaos (crash, partition, slow) degrades latency and
  the shed set only — every mutually-served request returns the same
  bytes, the admission (429) set never moves, and runs replay exactly;
- fault decisions are keyed by (replica, key) — never by arrival
  order or attempt count — so the chaos schedule is invariant to the
  router policy under test (the regression this PR exists to pin);
- per-replica metric families fold into the fleet rollup exactly.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import FaultSpec
from repro.service import (
    ClusterConfig,
    ClusterService,
    LinkStatusIndex,
    LinkStatusService,
    ServerConfig,
    ServiceFaultPlan,
    ServiceFaults,
    ShardIndex,
    WorkloadConfig,
    generate_workload,
    rendezvous_owner,
    rendezvous_score,
    routing_key,
)
from repro.service.router import ReplicaPicker, TenantQuotas


@pytest.fixture(scope="session")
def service_index(small_report) -> LinkStatusIndex:
    """The index snapshot of the shared small study (read-only)."""
    return LinkStatusIndex.build(small_report)


def mixed_workload(index, n=2000, rps=2500.0, seed=7, **over):
    return generate_workload(
        [entry.url for entry in index.entries],
        WorkloadConfig(
            n_requests=n,
            offered_rps=rps,
            seed=seed,
            aggregate_fraction=0.05,
            unknown_fraction=0.05,
            **over,
        ),
    )


def wire(result):
    return [r.to_wire() for r in result.responses]


# -- rendezvous hashing ----------------------------------------------------------


node_sets = st.lists(
    st.text(
        alphabet="abcdefghijklmnopqrstuvwxyz0123456789-", min_size=1, max_size=12
    ),
    min_size=1,
    max_size=8,
    unique=True,
).map(tuple)


def test_rendezvous_score_is_pure_and_64_bit():
    assert rendezvous_score("k", "n") == rendezvous_score("k", "n")
    assert 0 <= rendezvous_score("k", "n") < 2**64
    assert rendezvous_score("k", "n") != rendezvous_score("k", "m")


def test_rendezvous_owner_requires_nodes():
    with pytest.raises(ValueError):
        rendezvous_owner("key", ())


@settings(max_examples=50, deadline=None)
@given(key=st.text(min_size=0, max_size=40), nodes=node_sets)
def test_rendezvous_owner_is_a_member_and_deterministic(key, nodes):
    owner = rendezvous_owner(key, nodes)
    assert owner in nodes
    assert rendezvous_owner(key, nodes) == owner
    # Order of the node tuple must not matter.
    assert rendezvous_owner(key, tuple(reversed(nodes))) == owner


@settings(max_examples=25, deadline=None)
@given(nodes=node_sets, extra=st.text(min_size=1, max_size=12))
def test_rendezvous_minimal_disruption_on_node_add(nodes, extra):
    """Adding a node only pulls keys TO the new node; nothing else moves."""
    if extra in nodes:
        extra = extra + "-new"
    grown = nodes + (extra,)
    keys = [f"key-{i}" for i in range(200)]
    for key in keys:
        before = rendezvous_owner(key, nodes)
        after = rendezvous_owner(key, grown)
        assert after in (before, extra)


@settings(max_examples=25, deadline=None)
@given(nodes=node_sets)
def test_rendezvous_minimal_disruption_on_node_remove(nodes):
    """Removing a node only remaps the keys that node owned."""
    if len(nodes) < 2:
        return
    victim = nodes[0]
    shrunk = nodes[1:]
    for i in range(200):
        key = f"key-{i}"
        before = rendezvous_owner(key, nodes)
        after = rendezvous_owner(key, shrunk)
        if before != victim:
            assert after == before
        else:
            assert after in shrunk


def test_rendezvous_balance_within_bound():
    """Each of 4 nodes owns a reasonable share of a large key set.

    The scores are sha256-uniform, so with 4000 keys over 4 nodes the
    expected share is 25%; the bound is generous (15–35%) because this
    pins "no node is starved or doubled", not a tight concentration
    inequality.
    """
    nodes = tuple(f"shard-{i}" for i in range(4))
    counts = {node: 0 for node in nodes}
    for i in range(4000):
        counts[rendezvous_owner(f"https://host{i}.example/p", nodes)] += 1
    for node, count in counts.items():
        assert 0.15 <= count / 4000 <= 0.35, (node, count)


# -- routing keys ----------------------------------------------------------------


def test_routing_key_matches_entry_domain(service_index):
    """Every studied URL routes by exactly its entry's domain field."""
    for entry in service_index.entries:
        assert routing_key("url", entry.url) == entry.domain


def test_routing_key_kinds():
    assert routing_key("domain", "example.com") == "example.com"
    assert routing_key("bucket_counts", "") == "bucket_counts:"
    assert (
        routing_key("quantile", "posting_year:0.5")
        == "quantile:posting_year:0.5"
    )
    # Unparseable URLs still get a stable key (they 404 on any shard).
    assert routing_key("url", "::") == routing_key("url", "::")


# -- shard views -----------------------------------------------------------------


def test_shards_partition_the_index_exactly(service_index):
    svc = ClusterService(
        service_index, cluster=ClusterConfig(n_shards=3, replicas_per_shard=1)
    )
    seen = {}
    for shard_id, shard in svc.shards.items():
        assert isinstance(shard, ShardIndex)
        assert shard.version == service_index.version
        for entry in shard.entries:
            assert entry.url not in seen, "entry assigned to two shards"
            seen[entry.url] = shard_id
            # The shard holding an entry is the one its domain hashes to.
            assert (
                rendezvous_owner(entry.domain, svc.shard_ids) == shard_id
            )
    assert len(seen) == len(service_index)


def test_shard_point_queries_are_partition_local(service_index):
    svc = ClusterService(
        service_index, cluster=ClusterConfig(n_shards=2, replicas_per_shard=1)
    )
    entry = service_index.entries[0]
    owner = svc.shard_for("url", entry.url)
    other = next(s for s in svc.shard_ids if s != owner)
    assert svc.shards[owner].lookup(entry.url) is entry
    assert svc.shards[other].lookup(entry.url) is None
    # Aggregates replicate: every shard answers them identically.
    for shard in svc.shards.values():
        assert shard.bucket_counts() == service_index.bucket_counts()
        assert shard.quantile("posting_year", 0.5) == service_index.quantile(
            "posting_year", 0.5
        )


def test_cluster_config_validation():
    with pytest.raises(ValueError):
        ClusterConfig(n_shards=0)
    with pytest.raises(ValueError):
        ClusterConfig(replicas_per_shard=0)
    with pytest.raises(ValueError):
        ClusterConfig(policy="random")
    with pytest.raises(ValueError):
        ClusterConfig(max_dispatch_attempts=0)
    with pytest.raises(ValueError):
        ClusterConfig(congestion_ms_per_inflight=-1.0)


# -- faults-off equivalence with the single-node service -------------------------


def test_cluster_equals_single_node_across_topologies(service_index):
    """to_wire bytes and the shed set match for every N×R tested."""
    workload = mixed_workload(service_index)
    single = LinkStatusService(service_index).serve(workload)
    single_wire = wire(single)
    for n_shards in (1, 2, 4):
        for replicas in (1, 2, 3):
            result = ClusterService(
                service_index,
                cluster=ClusterConfig(
                    n_shards=n_shards, replicas_per_shard=replicas
                ),
            ).serve(workload)
            assert wire(result) == single_wire, (n_shards, replicas)
            assert result.shed_ids == single.shed_ids, (n_shards, replicas)


def test_one_by_one_cluster_reproduces_single_node_exactly(service_index):
    """At N=1, R=1 even the virtual timing is identical, per policy."""
    workload = mixed_workload(service_index)
    single = LinkStatusService(service_index).serve(workload)
    for policy in ("round_robin", "least_outstanding", "power_of_two"):
        result = ClusterService(
            service_index,
            cluster=ClusterConfig(
                n_shards=1, replicas_per_shard=1, policy=policy
            ),
        ).serve(workload)
        assert result.responses == single.responses, policy


def test_policies_agree_on_answers(service_index):
    """Replica choice moves latency only, never the answer surface."""
    workload = mixed_workload(service_index)
    cluster = dict(n_shards=2, replicas_per_shard=3)
    runs = {
        policy: ClusterService(
            service_index, cluster=ClusterConfig(policy=policy, **cluster)
        ).serve(workload)
        for policy in ("round_robin", "least_outstanding", "power_of_two")
    }
    wires = {policy: wire(run) for policy, run in runs.items()}
    assert wires["round_robin"] == wires["least_outstanding"]
    assert wires["round_robin"] == wires["power_of_two"]


def test_cluster_serial_equals_thread(service_index):
    workload = mixed_workload(service_index)
    cluster = ClusterConfig(n_shards=2, replicas_per_shard=2)
    serial = ClusterService(service_index, cluster=cluster).serve(workload)
    threaded = ClusterService(service_index, cluster=cluster).serve(
        workload, mode="thread"
    )
    assert serial.responses == threaded.responses


# -- replica-level chaos: degradation is confined --------------------------------


CRASH_PLAN = ServiceFaultPlan(
    seed=5,
    replica_crash=FaultSpec(rate=0.6, permanent=True),
    crash_horizon_ms=600.0,
    crash_duration_ms=150.0,
    catchup_ms=100.0,
    replica_partition=FaultSpec(rate=0.5, permanent=True),
    partition_horizon_ms=600.0,
    partition_duration_ms=120.0,
    replica_slow=FaultSpec(rate=0.4, permanent=True),
)


def assert_chaos_confined(clean, chaotic):
    """Chaos may move latency and add 503s — never answers or 429s."""
    clean_by_id = {r.request_id: r for r in clean.responses}
    for response in chaotic.responses:
        mate = clean_by_id[response.request_id]
        if not response.shed and not mate.shed:
            assert response.to_wire() == mate.to_wire()
    c429 = {r.request_id for r in clean.responses if r.status == 429}
    f429 = {r.request_id for r in chaotic.responses if r.status == 429}
    assert c429 == f429
    extra = set(chaotic.shed_ids) - set(clean.shed_ids)
    assert extra == set(chaotic.unavailable_ids)


def test_replica_crash_chaos_confined_and_replayable(service_index):
    workload = mixed_workload(service_index)
    cluster = ClusterConfig(n_shards=2, replicas_per_shard=2)
    clean = ClusterService(service_index, cluster=cluster).serve(workload)
    chaotic = ClusterService(
        service_index, cluster=cluster, faults=CRASH_PLAN
    ).serve(workload)
    assert chaotic.fault_events, "plan should schedule replica faults"
    assert_chaos_confined(clean, chaotic)
    replay = ClusterService(
        service_index, cluster=cluster, faults=CRASH_PLAN
    ).serve(workload)
    assert chaotic.responses == replay.responses
    assert chaotic.fault_events == replay.fault_events


def test_unrecoverable_shard_sheds_503_deterministically(service_index):
    """With 1 replica/shard, guaranteed crashes, and a tiny dispatch
    budget, some requests give up with a 503 — the same set each run."""
    workload = mixed_workload(service_index, n=1500, rps=2000.0, seed=3)
    plan = ServiceFaultPlan.crashes(
        rate=1.0, seed=9, horizon_ms=400.0, duration_ms=250.0
    )
    cluster = ClusterConfig(
        n_shards=2, replicas_per_shard=1, max_dispatch_attempts=2
    )
    first = ClusterService(service_index, cluster=cluster, faults=plan).serve(
        workload
    )
    assert first.unavailable_ids, "expected some 503 sheds"
    assert set(first.unavailable_ids) <= set(first.shed_ids)
    for rid in first.unavailable_ids:
        assert first.responses[rid].status == 503
    again = ClusterService(service_index, cluster=cluster, faults=plan).serve(
        workload
    )
    assert first.responses == again.responses
    # A generous dispatch budget waits out the crash instead of shedding.
    patient = ClusterService(
        service_index,
        cluster=ClusterConfig(
            n_shards=2, replicas_per_shard=1, max_dispatch_attempts=8
        ),
        faults=plan,
    ).serve(workload)
    assert not patient.unavailable_ids


def test_slow_replica_moves_latency_not_answers(service_index):
    workload = mixed_workload(service_index)
    cluster = ClusterConfig(n_shards=1, replicas_per_shard=2)
    clean = ClusterService(service_index, cluster=cluster).serve(workload)
    slowed = ClusterService(
        service_index,
        cluster=cluster,
        faults=ServiceFaultPlan.slow_replicas(rate=1.0, seed=2, factor=4.0),
    ).serve(workload)
    assert wire(slowed) == wire(clean)
    assert slowed.shed_ids == clean.shed_ids
    assert slowed.latency_quantile(0.99) > clean.latency_quantile(0.99)


# -- fault decisions are router-policy invariant (the regression) ----------------


def test_fault_schedule_is_invariant_to_router_policy(service_index):
    """The chaos a fleet experiences must not depend on the policy
    under test: same plan + same replicas ⇒ same transition schedule,
    and the served answers agree across policies under chaos too."""
    workload = mixed_workload(service_index)
    runs = {}
    for policy in ("round_robin", "least_outstanding", "power_of_two"):
        runs[policy] = ClusterService(
            service_index,
            cluster=ClusterConfig(
                n_shards=2, replicas_per_shard=2, policy=policy
            ),
            faults=CRASH_PLAN,
        ).serve(workload)
    schedules = {p: r.fault_events for p, r in runs.items()}
    assert schedules["round_robin"] == schedules["least_outstanding"]
    assert schedules["round_robin"] == schedules["power_of_two"]
    base = runs["round_robin"]
    base_by_id = {r.request_id: r for r in base.responses}
    for run in runs.values():
        for response in run.responses:
            mate = base_by_id[response.request_id]
            if not response.shed and not mate.shed:
                assert response.to_wire() == mate.to_wire()


def test_fault_decisions_are_pure_not_attempt_counted():
    """Asking the same question twice returns the same answer.

    The stateful FaultChannel implementation keyed decisions by an
    attempt counter, so a transient (non-permanent) spec faulted the
    first ``depth`` calls and then cleared — meaning *which* calls saw
    the fault depended on how many earlier calls the router's policy
    happened to send that way. The service layer now ignores attempt
    counts entirely: a (replica, key) pair is faulted or it is not.
    """
    plan = ServiceFaultPlan(
        seed=11,
        index_spike=FaultSpec(rate=1.0, max_repeats=2, permanent=False),
        cache_fault=FaultSpec(rate=1.0, max_repeats=2, permanent=False),
    )
    faults = ServiceFaults(plan)
    for key in ("url:http://a.example/", "url:http://b.example/"):
        first = [faults.spike_ms(key), faults.cache_lost(key)]
        for _ in range(5):
            assert [faults.spike_ms(key), faults.cache_lost(key)] == first


def test_key_fault_sets_match_legacy_channel_selection():
    """The pure decisions select exactly the keys the stateful
    FaultChannel selected under the same seed — the rewrite changed
    the mechanism, not the chaos a pinned plan produces."""
    from repro.faults.inject import FaultChannel

    spec = FaultSpec(rate=0.5, permanent=True)
    plan = ServiceFaultPlan(seed=3, cache_fault=spec, index_spike=spec)
    faults = ServiceFaults(plan)
    legacy_cache = FaultChannel(3, "service.cache", spec)
    legacy_spike = FaultChannel(3, "service.index_spike", spec)
    for i in range(300):
        key = f"url:http://host{i}.example/page"
        assert faults.cache_lost(key) == (legacy_cache.depth(key) > 0)
        assert (faults.spike_ms(key) > 0) == (legacy_spike.depth(key) > 0)


def test_replica_windows_are_pure_and_consistent():
    faults = ServiceFaults(
        ServiceFaultPlan.crashes(rate=1.0, seed=4, horizon_ms=1000.0,
                                 duration_ms=200.0)
    )
    window = faults.crash_window("s0r0")
    assert window is not None
    start, end = window
    assert 0.0 <= start < 1000.0 and end == start + 200.0
    assert faults.crash_window("s0r0") == window
    assert not faults.available("s0r0", start)
    assert faults.available("s0r0", end)
    assert faults.next_available_at("s0r0", start) == end
    assert faults.next_failure_at("s0r0", start - 1.0) == start
    assert faults.catchup_factor("s0r0", end) == faults.plan.catchup_factor
    assert faults.catchup_factor("s0r0", end + faults.plan.catchup_ms) == 1.0
    events = faults.transitions(("s0r0",))
    assert [e.kind for e in events] == ["crash", "recover"]


# -- router policies and quotas --------------------------------------------------


def test_round_robin_rotates_per_shard():
    picker = ReplicaPicker("round_robin")
    picks = [picker.pick("shard-0", 3, [0, 0, 0], i) for i in range(6)]
    assert picks == [0, 1, 2, 0, 1, 2]
    # A different shard rotates independently.
    assert picker.pick("shard-1", 3, [0, 0, 0], 0) == 0


def test_least_outstanding_prefers_idle_replica():
    picker = ReplicaPicker("least_outstanding")
    assert picker.pick("s", 3, [4, 1, 4], 0) == 1
    # Ties break to the lowest index, deterministically.
    assert picker.pick("s", 3, [2, 2, 2], 1) == 0


def test_power_of_two_is_seed_deterministic():
    first = ReplicaPicker("power_of_two", seed=9)
    second = ReplicaPicker("power_of_two", seed=9)
    picks_a = [first.pick("s", 4, [3, 0, 2, 1], i) for i in range(40)]
    picks_b = [second.pick("s", 4, [3, 0, 2, 1], i) for i in range(40)]
    assert picks_a == picks_b
    # A redispatch (attempt bump) may redraw its candidates.
    assert first.pick("s", 4, [0, 0, 0, 0], 7, attempt=0) == first.pick(
        "s", 4, [0, 0, 0, 0], 7, attempt=0
    )


def test_tenant_quotas_throttle_only_metered_tenants(service_index):
    workload = mixed_workload(
        service_index, n=1500, rps=1500.0, seed=3, tenants=("free", "paid")
    )
    result = ClusterService(
        service_index,
        cluster=ClusterConfig(
            n_shards=2, replicas_per_shard=2, quotas={"free": (200.0, 4.0)}
        ),
    ).serve(workload)
    quota_shed = set(result.quota_shed_ids)
    assert quota_shed, "the free tier should exceed its quota"
    tenant_of = {r.request_id: r.tenant for r in workload}
    assert {tenant_of[rid] for rid in quota_shed} == {"free"}
    quotas = TenantQuotas({"vip": (10.0, 2.0)})
    assert quotas.admit("anonymous", 0.0)  # unmetered passes untouched
    assert quotas.admit("vip", 0.0)


# -- metrics fold ----------------------------------------------------------------


def test_replica_metric_families_sum_to_rollup(service_index):
    result = ClusterService(
        service_index,
        cluster=ClusterConfig(n_shards=2, replicas_per_shard=2),
    ).serve(mixed_workload(service_index))
    for name in (
        "service.index.lookups",
        "service.requests.ok",
        "service.cache.hits",
        "service.batch.flushes",
    ):
        rollup = result.metrics.counter(name).value
        family_sum = sum(
            result.metrics.counter(
                f"service.replica.{rid}.{name}"
            ).value
            for rid in result.replica_ids
        )
        assert rollup == family_sum, name
    digest = result.replica_digest()
    assert set(digest) == set(result.replica_ids)
    assert sum(
        fam.get("service.index.lookups", 0) for fam in digest.values()
    ) == result.metrics.counter("service.index.lookups").value


# -- heavier chaos sweeps (tier-2) -----------------------------------------------


@pytest.mark.chaos
def test_chaos_grid_confinement_across_policies_and_topologies(service_index):
    """The full chaos matrix: every policy × topology under the
    combined crash/partition/slow plan stays confined and replayable."""
    workload = mixed_workload(service_index, n=4000, rps=3000.0)
    for n_shards, replicas in ((1, 2), (2, 2), (4, 3)):
        cluster = ClusterConfig(n_shards=n_shards, replicas_per_shard=replicas)
        clean = ClusterService(service_index, cluster=cluster).serve(workload)
        for policy in ("round_robin", "least_outstanding", "power_of_two"):
            config = ClusterConfig(
                n_shards=n_shards, replicas_per_shard=replicas, policy=policy
            )
            chaotic = ClusterService(
                service_index, cluster=config, faults=CRASH_PLAN
            ).serve(workload)
            assert_chaos_confined(clean, chaotic)
            replay = ClusterService(
                service_index, cluster=config, faults=CRASH_PLAN
            ).serve(workload)
            assert chaotic.responses == replay.responses


@pytest.mark.chaos
def test_chaos_thread_mode_matches_serial(service_index):
    workload = mixed_workload(service_index, n=3000, rps=3000.0)
    cluster = ClusterConfig(n_shards=2, replicas_per_shard=2)
    serial = ClusterService(
        service_index, cluster=cluster, faults=CRASH_PLAN
    ).serve(workload)
    threaded = ClusterService(
        service_index, cluster=cluster, faults=CRASH_PLAN
    ).serve(workload, mode="thread")
    assert serial.responses == threaded.responses
