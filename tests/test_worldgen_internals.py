"""Tests for world-generation internals: events, articles, sweeps."""

import pytest

from repro.clock import SimTime
from repro.dataset.builder import WebBuilder, first_sweep_after
from repro.dataset.planner import plan_universe
from repro.dataset.worldgen import (
    WorldConfig,
    _assemble_events,
    _EventKind,
    _plan_articles,
    _sweep_shard,
)
from repro.rng import RngRegistry


@pytest.fixture(scope="module")
def assembled():
    config = WorldConfig(n_links=400, target_sample=400, seed=31)
    rngs = RngRegistry(config.seed)
    plans = plan_universe(config, rngs)
    built = WebBuilder(config, rngs).build(plans)
    links = [link for plan in plans for link in plan.links]
    events = _assemble_events(config, rngs, built, links)
    return config, plans, built, links, events


class TestEventAssembly:
    def test_events_sorted(self, assembled):
        _, _, _, _, events = assembled
        keys = [event.sort_key() for event in events]
        assert keys == sorted(keys)

    def test_every_link_posted_exactly_once(self, assembled):
        _, _, _, links, events = assembled
        posted = []
        for event in events:
            if event.kind in (_EventKind.CREATE_ARTICLE, _EventKind.ADD_LINK):
                posted.append(event.payload[1].url)
        assert sorted(posted) == sorted(link.url for link in links)

    def test_sweep_count_matches_schedule(self, assembled):
        config, _, _, _, events = assembled
        sweeps = [e for e in events if e.kind is _EventKind.SWEEP]
        assert len(sweeps) == len(config.sweep_times)

    def test_sweep_shards_cycle(self, assembled):
        config, _, _, _, events = assembled
        shards = [e.payload[0] for e in events if e.kind is _EventKind.SWEEP]
        assert set(shards) == set(range(config.sweep_shards))

    def test_captures_before_study(self, assembled):
        config, _, _, _, events = assembled
        for event in events:
            if event.kind is _EventKind.CAPTURE:
                assert event.days < config.study_time.days

    def test_same_instant_ordering_prefers_edits(self, assembled):
        # CREATE < ADD_LINK < HUMAN_MARK < CAPTURE < SWEEP at equal time.
        assert _EventKind.CREATE_ARTICLE < _EventKind.ADD_LINK
        assert _EventKind.HUMAN_MARK < _EventKind.CAPTURE < _EventKind.SWEEP


class TestArticlePlanning:
    def test_all_links_assigned_once(self, assembled):
        _, _, _, links, _ = assembled
        rng = RngRegistry(9).stream("t")
        articles = _plan_articles(links, rng)
        assigned = [link.url for _, chunk in articles for link in chunk]
        assert sorted(assigned) == sorted(link.url for link in links)

    def test_titles_unique(self, assembled):
        _, _, _, links, _ = assembled
        rng = RngRegistry(9).stream("t")
        articles = _plan_articles(links, rng)
        titles = [title for title, _ in articles]
        assert len(titles) == len(set(titles))

    def test_article_sizes_in_range(self, assembled):
        _, _, _, links, _ = assembled
        rng = RngRegistry(9).stream("t")
        for _, chunk in _plan_articles(links, rng):
            assert 1 <= len(chunk) <= 5


class TestSweepSharding:
    def test_stable_assignment(self):
        assert _sweep_shard("Some Title", 8) == _sweep_shard("Some Title", 8)

    def test_spread_across_shards(self):
        shards = {_sweep_shard(f"Title {i}", 8) for i in range(200)}
        assert shards == set(range(8))


class TestBuilderHelpers:
    def test_first_sweep_after(self):
        sweeps = (SimTime(100.0), SimTime(200.0), SimTime(300.0))
        assert first_sweep_after(SimTime(150.0), sweeps) == SimTime(200.0)
        assert first_sweep_after(SimTime(50.0), sweeps) == SimTime(100.0)
        assert first_sweep_after(SimTime(300.0), sweeps) is None

    def test_builder_urls_unique(self, assembled):
        _, _, built, links, _ = assembled
        urls = [link.url for link in links]
        assert len(urls) == len(set(urls))

    def test_truth_covers_all_links(self, assembled):
        _, _, built, links, _ = assembled
        for link in links:
            assert link.url in built.truth

    def test_rankings_cover_all_hostnames(self, assembled):
        _, _, built, links, _ = assembled
        for link in links:
            hostname = built.truth[link.url].hostname
            assert hostname in built.site_rankings
