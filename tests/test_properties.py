"""Property-based tests (hypothesis) on core data structures and invariants."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clock import SimTime
from repro.net.status import Outcome, classify_final_status
from repro.reporting.cdf import ecdf
from repro.textsim.shingles import (
    jaccard,
    minhash_sketch,
    shingle_set,
    shingle_similarity,
    sketch_similarity,
)
from repro.urls.editdist import edit_distance, within_distance
from repro.urls.parse import parse_url
from repro.urls.psl import default_psl

# -- strategies -----------------------------------------------------------------

_host_label = st.text(
    alphabet=string.ascii_lowercase + string.digits, min_size=1, max_size=8
)
_hostnames = st.lists(_host_label, min_size=1, max_size=4).map(".".join)
_paths = st.text(
    alphabet=string.ascii_lowercase + string.digits + "/-._", max_size=30
).map(lambda s: "/" + s.lstrip("/"))
_urls = st.builds(
    lambda scheme, host, path: f"{scheme}://{host}{path}",
    st.sampled_from(["http", "https"]),
    _hostnames,
    _paths,
)
_short_text = st.text(
    alphabet=string.ascii_lowercase + " ", min_size=0, max_size=200
)
_small_strings = st.text(
    alphabet=string.ascii_lowercase + "0123456789/-.", max_size=25
)


class TestEditDistanceMetric:
    @given(_small_strings, _small_strings)
    def test_symmetry(self, a, b):
        assert edit_distance(a, b) == edit_distance(b, a)

    @given(_small_strings)
    def test_identity(self, a):
        assert edit_distance(a, a) == 0

    @given(_small_strings, _small_strings)
    def test_positive_for_distinct(self, a, b):
        if a != b:
            assert edit_distance(a, b) >= 1

    @given(_small_strings, _small_strings, _small_strings)
    @settings(max_examples=50)
    def test_triangle_inequality(self, a, b, c):
        assert edit_distance(a, c) <= edit_distance(a, b) + edit_distance(b, c)

    @given(_small_strings, _small_strings)
    def test_bounded_by_longer_length(self, a, b):
        assert edit_distance(a, b) <= max(len(a), len(b))

    @given(_small_strings, _small_strings, st.integers(min_value=0, max_value=6))
    def test_within_distance_agrees(self, a, b, limit):
        assert within_distance(a, b, limit) == (edit_distance(a, b) <= limit)


class TestUrlParseProperties:
    @given(_urls)
    def test_roundtrip(self, url):
        assert str(parse_url(url)) == url

    @given(_urls)
    def test_directory_is_prefix(self, url):
        parsed = parse_url(url)
        assert url.startswith(parsed.directory) or parsed.query

    @given(_urls)
    def test_directory_plus_leaf_reconstructs(self, url):
        parsed = parse_url(url)
        assert parsed.directory + parsed.leaf == url

    @given(_urls, st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=10))
    def test_with_leaf_same_directory(self, url, leaf):
        parsed = parse_url(url)
        assert parsed.with_leaf(leaf).directory == parsed.directory


class TestPslProperties:
    @given(_hostnames)
    def test_registrable_domain_is_suffix_of_host(self, host):
        domain = default_psl().registrable_domain(host)
        assert host.lower().endswith(domain)

    @given(_hostnames)
    def test_idempotent(self, host):
        psl = default_psl()
        domain = psl.registrable_domain(host)
        assert psl.registrable_domain(domain) == domain


class TestShingleProperties:
    @given(_short_text)
    def test_self_similarity_is_one(self, text):
        assert shingle_similarity(text, text) == 1.0

    @given(_short_text, _short_text)
    def test_similarity_symmetric(self, a, b):
        assert shingle_similarity(a, b) == shingle_similarity(b, a)

    @given(_short_text, _short_text)
    def test_similarity_bounded(self, a, b):
        assert 0.0 <= shingle_similarity(a, b) <= 1.0

    @given(st.sets(st.integers()), st.sets(st.integers()))
    def test_jaccard_bounds(self, a, b):
        assert 0.0 <= jaccard(frozenset(a), frozenset(b)) <= 1.0

    @given(_short_text)
    def test_minhash_self_similarity(self, text):
        sketch = minhash_sketch(text)
        assert sketch_similarity(sketch, sketch) == 1.0

    @given(_short_text, _short_text)
    def test_minhash_estimates_jaccard(self, a, b):
        true = jaccard(shingle_set(a), shingle_set(b))
        estimate = sketch_similarity(minhash_sketch(a), minhash_sketch(b))
        # 16 hashes: generous band, but extremes must agree.
        if true == 1.0:
            assert estimate == 1.0
        if true == 0.0 and shingle_set(a) and shingle_set(b):
            assert estimate <= 0.5


class TestSimTimeProperties:
    @given(st.floats(min_value=0, max_value=20000, allow_nan=False))
    def test_plus_minus_inverse(self, days):
        t = SimTime(1000.0)
        # Float addition is not exactly invertible; a nanosecond of
        # slack is irrelevant at day granularity.
        assert abs(t.plus_days(days).minus_days(days).days - t.days) < 1e-6

    @given(
        st.floats(min_value=0, max_value=20000, allow_nan=False),
        st.floats(min_value=0, max_value=20000, allow_nan=False),
    )
    def test_days_until_antisymmetric(self, a, b):
        x, y = SimTime(a), SimTime(b)
        assert x.days_until(y) == -y.days_until(x)

    @given(st.integers(min_value=0, max_value=30000))
    def test_date_roundtrip_on_whole_days(self, days):
        t = SimTime(float(days))
        assert SimTime.from_date(t.to_date()).days == t.days


class TestEcdfProperties:
    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=1))
    def test_monotone(self, sample):
        curve = ecdf(sample)
        xs = sorted(sample)
        values = [curve.at(x) for x in xs]
        assert values == sorted(values)
        assert values[-1] == 1.0

    @given(
        st.lists(st.floats(min_value=-100, max_value=100, allow_nan=False), min_size=1),
        st.floats(min_value=0.01, max_value=1.0),
    )
    def test_quantile_inverse(self, sample, q):
        curve = ecdf(sample)
        assert curve.at(curve.quantile(q)) >= q - 1e-9

    @given(st.lists(st.floats(allow_nan=False, min_value=-1e4, max_value=1e4)))
    def test_ks_self_distance_zero(self, sample):
        curve = ecdf(sample)
        assert curve.ks_distance(curve) == 0.0


class TestStatusProperties:
    @given(st.integers(min_value=100, max_value=599))
    def test_every_status_classified(self, status):
        assert classify_final_status(status) in (
            Outcome.HTTP_200,
            Outcome.HTTP_404,
            Outcome.OTHER,
        )
