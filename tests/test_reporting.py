"""Tests for repro.reporting."""

import pytest

from repro.reporting.cdf import Ecdf, ecdf
from repro.reporting.figures import render_bar_chart, render_cdf
from repro.reporting.summary import ComparisonRow, ComparisonTable
from repro.reporting.tables import render_table


class TestEcdf:
    def test_at(self):
        curve = ecdf([1, 2, 3, 4])
        assert curve.at(0) == 0.0
        assert curve.at(2) == 0.5
        assert curve.at(4) == 1.0
        assert curve.at(100) == 1.0

    def test_ties(self):
        curve = ecdf([1, 1, 1, 5])
        assert curve.at(1) == 0.75

    def test_unsorted_input_rejected_on_type(self):
        with pytest.raises(ValueError):
            Ecdf(values=(3.0, 1.0))

    def test_quantiles(self):
        curve = ecdf(list(range(1, 101)))
        assert curve.quantile(0.5) == 50
        assert curve.quantile(0.0) == 1
        assert curve.quantile(1.0) == 100

    def test_quantile_validation(self):
        with pytest.raises(ValueError):
            ecdf([1]).quantile(1.5)
        with pytest.raises(ValueError):
            ecdf([]).quantile(0.5)

    def test_quantile_boundaries(self):
        # q exactly on a step boundary must pick the *smallest* value
        # whose F reaches q (regression: the old epsilon/special-case
        # indexing could land one element off on exact multiples).
        curve = ecdf([10, 20, 30, 40])
        assert curve.quantile(0.25) == 10
        assert curve.quantile(0.5) == 20
        assert curve.quantile(0.75) == 30
        assert curve.quantile(1.0) == 40
        assert curve.quantile(0.5000001) == 30
        # n=10, q=0.7: 0.7*10 floats to 7.000…0001; the answer is
        # still the 7th value, not the 8th.
        decile = ecdf(list(range(1, 11)))
        assert decile.quantile(0.7) == 7

    def test_quantile_matches_bruteforce_reference(self):
        import random

        rng = random.Random(20220315)
        for _ in range(200):
            n = rng.randint(1, 40)
            values = sorted(
                round(rng.uniform(-50, 50), 2) for _ in range(n)
            )
            if rng.random() < 0.3:  # exercise ties
                values = sorted(values + values[: n // 2])
            curve = ecdf(values)
            qs = [rng.random() for _ in range(5)]
            qs += [0.0, 1.0, 0.5]
            qs += [k / curve.n for k in (1, curve.n // 2, curve.n)]
            for q in qs:
                expected = min(v for v in curve.values if curve.at(v) >= q)
                assert curve.quantile(q) == expected, (values, q)

    def test_quantile_single_value(self):
        assert ecdf([7]).quantile(0.0) == 7
        assert ecdf([7]).quantile(0.3) == 7
        assert ecdf([7]).quantile(1.0) == 7

    def test_empty_at(self):
        assert ecdf([]).at(3) == 0.0

    def test_series_monotone(self):
        curve = ecdf([5, 1, 9, 3, 7, 2])
        pairs = curve.series(points=4)
        ys = [y for _, y in pairs]
        assert ys == sorted(ys)
        assert pairs[-1][1] == 1.0

    def test_ks_distance_identical(self):
        a = ecdf([1, 2, 3])
        assert a.ks_distance(a) == 0.0

    def test_ks_distance_disjoint(self):
        assert ecdf([1, 2]).ks_distance(ecdf([10, 20])) == 1.0

    def test_ks_distance_similar_samples_small(self):
        import random

        rng = random.Random(5)
        a = ecdf([rng.gauss(0, 1) for _ in range(800)])
        b = ecdf([rng.gauss(0, 1) for _ in range(800)])
        assert a.ks_distance(b) < 0.1


class TestTables:
    def test_render_alignment(self):
        out = render_table(
            headers=["name", "count"],
            rows=[["alpha", 1], ["b", 22]],
            title="T",
        )
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "alpha" in out and "22" in out

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            render_table(headers=["a"], rows=[[1, 2]])

    def test_float_formatting(self):
        out = render_table(headers=["x"], rows=[[3.14159]])
        assert "3.1" in out and "3.14159" not in out


class TestFigures:
    def test_render_cdf_log_axis(self):
        out = render_cdf(
            {"dataset": ecdf([1, 10, 100, 1000])},
            title="Fig",
            x_label="days",
            log_x=True,
        )
        assert "Fig" in out
        assert "1,000" in out

    def test_render_cdf_empty(self):
        assert "(no data)" in render_cdf({"x": ecdf([])}, "T", "v")

    def test_render_bar_chart(self):
        out = render_bar_chart({"404": 40, "200": 10}, title="Fig 4")
        assert "404" in out and "#" in out
        lines = out.splitlines()
        assert len(lines) == 3

    def test_render_bar_chart_empty(self):
        assert "(no data)" in render_bar_chart({}, "T")


class TestComparison:
    def test_within_band(self):
        row = ComparisonRow(name="x", paper=10.0, measured=12.0, tolerance=0.5)
        assert row.within_band
        assert row.ratio == pytest.approx(1.2)

    def test_outside_band(self):
        row = ComparisonRow(name="x", paper=10.0, measured=30.0, tolerance=0.5)
        assert not row.within_band

    def test_zero_paper_value(self):
        assert ComparisonRow(name="x", paper=0.0, measured=0.0).within_band

    def test_table_failures(self):
        table = ComparisonTable(title="T")
        table.add("good", paper=10, measured=11)
        table.add("bad", paper=10, measured=100)
        assert not table.all_within_band
        assert [row.name for row in table.failures()] == ["bad"]
        rendered = table.render()
        assert "OFF" in rendered and "ok" in rendered
