"""Tests for repro.rng."""

import pytest

from repro.rng import RngRegistry, Stream, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a") == derive_seed(1, "a")

    def test_varies_with_name(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_varies_with_master(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")


class TestStream:
    def test_same_seed_same_draws(self):
        a = Stream(7, "x")
        b = Stream(7, "x")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_zipf_bounds(self):
        rng = Stream(1)
        draws = [rng.zipf(2.0, 50) for _ in range(500)]
        assert all(1 <= d <= 50 for d in draws)

    def test_zipf_head_heavy(self):
        rng = Stream(2)
        draws = [rng.zipf(2.05, 400) for _ in range(2000)]
        ones = sum(1 for d in draws if d == 1)
        assert ones / len(draws) > 0.5  # the Figure 3a shape

    def test_zipf_invalid_max(self):
        with pytest.raises(ValueError):
            Stream(1).zipf(2.0, 0)

    def test_log_uniform_bounds(self):
        rng = Stream(3)
        draws = [rng.log_uniform(0.1, 10.0) for _ in range(200)]
        assert all(0.1 <= d <= 10.0 for d in draws)

    def test_log_uniform_rejects_bad_range(self):
        with pytest.raises(ValueError):
            Stream(1).log_uniform(5.0, 1.0)
        with pytest.raises(ValueError):
            Stream(1).log_uniform(0.0, 1.0)

    def test_lognormal_days_median(self):
        rng = Stream(4)
        draws = sorted(rng.lognormal_days(100.0, 1.0) for _ in range(3001))
        median = draws[len(draws) // 2]
        assert 70.0 < median < 140.0

    def test_lognormal_days_positive_required(self):
        with pytest.raises(ValueError):
            Stream(1).lognormal_days(0.0, 1.0)

    def test_poisson_zero_lambda(self):
        assert Stream(1).poisson(0.0) == 0

    def test_poisson_mean(self):
        rng = Stream(5)
        draws = [rng.poisson(2.0) for _ in range(3000)]
        mean = sum(draws) / len(draws)
        assert 1.8 < mean < 2.2

    def test_poisson_negative_rejected(self):
        with pytest.raises(ValueError):
            Stream(1).poisson(-1.0)

    def test_weighted_choice_respects_weights(self):
        rng = Stream(6)
        draws = [
            rng.weighted_choice((("a", 9.0), ("b", 1.0))) for _ in range(2000)
        ]
        assert draws.count("a") > draws.count("b") * 4

    def test_weighted_choice_empty_rejected(self):
        with pytest.raises(ValueError):
            Stream(1).weighted_choice(())

    def test_chance_extremes(self):
        rng = Stream(7)
        assert not any(rng.chance(0.0) for _ in range(100))
        assert all(rng.chance(1.0) for _ in range(100))


class TestRngRegistry:
    def test_streams_independent_of_request_order(self):
        reg_a = RngRegistry(9)
        reg_b = RngRegistry(9)
        # Interleave requests differently; named streams must agree.
        a1 = reg_a.stream("alpha").random()
        _ = reg_a.stream("beta").random()
        _ = reg_b.stream("beta").random()
        b1 = reg_b.stream("alpha").random()
        assert a1 == b1

    def test_same_name_returns_same_stream(self):
        reg = RngRegistry(1)
        assert reg.stream("x") is reg.stream("x")

    def test_fork_changes_universe(self):
        reg = RngRegistry(1)
        forked = reg.fork("child")
        assert reg.stream("x").random() != forked.stream("x").random()
