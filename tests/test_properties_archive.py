"""Property-based tests for the archive store and CDX layer."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.archive.cdx import CdxApi, CdxQuery, MatchType
from repro.archive.snapshot import Snapshot
from repro.archive.store import SnapshotStore
from repro.clock import SimTime

_leaves = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=6)
_hosts = st.sampled_from(
    ["a.example.com", "b.example.com", "c.example.org"]
)
_statuses = st.sampled_from([200, 301, 404, 503])
_days = st.floats(min_value=0.0, max_value=8000.0, allow_nan=False)


@st.composite
def snapshots(draw):
    host = draw(_hosts)
    directory = draw(st.sampled_from(["/x/", "/x/y/", "/z/"]))
    leaf = draw(_leaves)
    url = f"http://{host}{directory}{leaf}.html"
    status = draw(_statuses)
    location = f"http://{host}/" if status == 301 else None
    return Snapshot(
        url=url,
        captured_at=SimTime(draw(_days)),
        initial_status=status,
        redirect_location=location,
        final_status=200 if status == 301 else status,
        final_url=url if status != 301 else f"http://{host}/",
    )


class TestStoreProperties:
    @given(st.lists(snapshots(), max_size=40))
    @settings(max_examples=60)
    def test_insertion_order_irrelevant(self, rows):
        forward = SnapshotStore()
        backward = SnapshotStore()
        for row in rows:
            forward.add(row)
        for row in reversed(rows):
            backward.add(row)
        for url in {row.url for row in rows}:
            # Captures at the *same instant* keep insertion order (the
            # real CDX breaks such ties by sub-second timestamp), so
            # compare as multisets.
            assert sorted(forward.snapshots(url), key=repr) == sorted(
                backward.snapshots(url), key=repr
            )
        assert forward.all_urls() == backward.all_urls()

    @given(st.lists(snapshots(), max_size=40))
    @settings(max_examples=60)
    def test_per_url_rows_sorted(self, rows):
        store = SnapshotStore()
        for row in rows:
            store.add(row)
        for url in store.all_urls():
            times = [s.captured_at.days for s in store.snapshots(url)]
            assert times == sorted(times)

    @given(st.lists(snapshots(), max_size=40), _days)
    @settings(max_examples=60)
    def test_before_after_partition(self, rows, cutoff_days):
        store = SnapshotStore()
        for row in rows:
            store.add(row)
        cutoff = SimTime(cutoff_days)
        for url in store.all_urls():
            before = store.snapshots_before(url, cutoff)
            after = store.snapshots_after(url, cutoff)
            assert len(before) + len(after) == len(store.snapshots(url))
            assert all(s.captured_at < cutoff for s in before)
            assert all(not (s.captured_at < cutoff) for s in after)

    @given(st.lists(snapshots(), max_size=40), _days)
    @settings(max_examples=60)
    def test_closest_is_really_closest(self, rows, target_days):
        store = SnapshotStore()
        for row in rows:
            store.add(row)
        target = SimTime(target_days)
        for url in store.all_urls():
            chosen = store.closest_to(url, target)
            distances = [
                abs(s.captured_at.days - target.days)
                for s in store.snapshots(url)
            ]
            assert abs(chosen.captured_at.days - target.days) == min(distances)


class TestCdxProperties:
    @given(st.lists(snapshots(), max_size=40))
    @settings(max_examples=60)
    def test_scopes_nest(self, rows):
        store = SnapshotStore()
        for row in rows:
            store.add(row)
        cdx = CdxApi(store)
        for url in store.all_urls():
            exact = set(r.url for r in cdx.query(CdxQuery(url=url)))
            directory = set(
                r.url
                for r in cdx.query(
                    CdxQuery(url=url, match_type=MatchType.DIRECTORY)
                )
            )
            host = set(
                r.url
                for r in cdx.query(CdxQuery(url=url, match_type=MatchType.HOST))
            )
            domain = set(
                r.url
                for r in cdx.query(
                    CdxQuery(url=url, match_type=MatchType.DOMAIN)
                )
            )
            assert exact <= directory <= host <= domain

    @given(st.lists(snapshots(), max_size=40))
    @settings(max_examples=40)
    def test_status_filter_subsets(self, rows):
        store = SnapshotStore()
        for row in rows:
            store.add(row)
        cdx = CdxApi(store)
        for url in store.all_urls():
            all_rows = cdx.query(CdxQuery(url=url, match_type=MatchType.HOST))
            ok_rows = cdx.query(
                CdxQuery(url=url, match_type=MatchType.HOST, initial_status=200)
            )
            assert set(ok_rows) <= set(all_rows)
            assert all(r.initial_status == 200 for r in ok_rows)
