"""Tests for repro.urls.editdist."""

from repro.urls.editdist import edit_distance, unique_neighbor, within_distance


class TestEditDistance:
    def test_identity(self):
        assert edit_distance("abc", "abc") == 0

    def test_substitution(self):
        assert edit_distance("may", "mai") == 1

    def test_insertion(self):
        assert edit_distance("abc", "abxc") == 1

    def test_deletion(self):
        assert edit_distance("abcd", "abd") == 1

    def test_empty_strings(self):
        assert edit_distance("", "") == 0
        assert edit_distance("", "abc") == 3
        assert edit_distance("abc", "") == 3

    def test_symmetric(self):
        assert edit_distance("kitten", "sitting") == edit_distance(
            "sitting", "kitten"
        )

    def test_kitten_sitting(self):
        assert edit_distance("kitten", "sitting") == 3

    def test_paper_typo_example(self):
        # The lnr.fr example: English "may" vs French "mai".
        a = "http://www.lnr.fr/top-14-26-may-1984.html"
        b = "http://www.lnr.fr/top-14-26-mai-1984.html"
        assert edit_distance(a, b) == 1

    def test_missing_separator_example(self):
        # The nj.com example: missing '?' before a parameter.
        a = "http://e.com/x.html?pagewanted=all"
        b = "http://e.com/x.htmlpagewanted=all"
        assert edit_distance(a, b) == 1


class TestWithinDistance:
    def test_agrees_with_exact_distance(self):
        pairs = [
            ("abc", "abc", 0),
            ("abc", "abd", 1),
            ("abc", "xyz", 3),
            ("short", "muchlongerstring", 13),
        ]
        for a, b, d in pairs:
            for limit in range(0, 5):
                assert within_distance(a, b, limit) == (d <= limit)

    def test_length_difference_shortcut(self):
        assert not within_distance("a", "abcde", 2)

    def test_zero_limit(self):
        assert within_distance("same", "same", 0)
        assert not within_distance("same", "sane", 0)


class TestUniqueNeighbor:
    def test_single_match(self):
        assert (
            unique_neighbor("storx.html", ["story.html", "index.html"])
            == "story.html"
        )

    def test_no_match(self):
        assert unique_neighbor("storx.html", ["index.html"]) is None

    def test_ambiguous_matches_return_none(self):
        # Numeric page-id families: many neighbours at distance 1.
        candidates = ["page1.html", "page2.html", "page3.html"]
        assert unique_neighbor("page9.html", candidates) is None

    def test_self_excluded(self):
        assert unique_neighbor("a.html", ["a.html"]) is None

    def test_exact_distance_required(self):
        # Distance 2 does not count as a typo correction.
        assert unique_neighbor("abcd", ["abxy"]) is None

    def test_empty_candidates(self):
        assert unique_neighbor("x", []) is None
