"""Tests for repro.clock."""

import datetime

import pytest

from repro.clock import (
    EPOCH,
    STUDY_TIME,
    SimClock,
    SimTime,
    WAYBACK_START,
    WIKIPEDIA_START,
)
from repro.errors import ClockError


class TestSimTime:
    def test_from_date_roundtrip(self):
        date = datetime.date(2015, 7, 20)
        assert SimTime.from_date(date).to_date() == date

    def test_epoch_is_day_zero(self):
        assert SimTime.from_date(EPOCH).days == 0.0

    def test_from_ymd(self):
        assert SimTime.from_ymd(2000, 1, 2).days == 1.0

    def test_from_year_whole(self):
        assert SimTime.from_year(2010).to_date() == datetime.date(2010, 1, 1)

    def test_from_year_fractional_lands_mid_year(self):
        mid = SimTime.from_year(2010.5).to_date()
        assert mid.year == 2010
        assert 6 <= mid.month <= 7

    def test_year_property(self):
        assert SimTime.from_ymd(2013, 12, 31).year == 2013

    def test_fractional_year_monotone_within_year(self):
        jan = SimTime.from_ymd(2012, 1, 15)
        nov = SimTime.from_ymd(2012, 11, 15)
        assert jan.fractional_year() < nov.fractional_year() < 2013

    def test_plus_minus_days(self):
        t = SimTime.from_ymd(2010, 1, 1)
        assert t.plus_days(10).days == t.days + 10
        assert t.minus_days(10).days == t.days - 10

    def test_days_until_and_since_are_signed(self):
        a = SimTime(100.0)
        b = SimTime(130.0)
        assert a.days_until(b) == 30.0
        assert b.days_since(a) == 30.0
        assert b.days_until(a) == -30.0

    def test_same_day(self):
        a = SimTime(100.2)
        b = SimTime(100.9)
        c = SimTime(101.0)
        assert a.same_day(b)
        assert not a.same_day(c)

    def test_ordering(self):
        assert SimTime(1.0) < SimTime(2.0)
        assert SimTime(2.0) >= SimTime(2.0)
        assert SimTime(3.0) == SimTime(3.0)

    def test_isoformat(self):
        assert SimTime.from_ymd(2022, 3, 15).isoformat() == "2022-03-15"

    def test_non_numeric_rejected(self):
        with pytest.raises(ClockError):
            SimTime("2022")  # type: ignore[arg-type]

    def test_named_instants_are_ordered(self):
        assert WAYBACK_START < WIKIPEDIA_START < STUDY_TIME


class TestSimClock:
    def test_starts_at_zero_by_default(self):
        assert SimClock().now.days == 0.0

    def test_advance(self):
        clock = SimClock(SimTime(10.0))
        assert clock.advance(5.0).days == 15.0
        assert clock.now.days == 15.0

    def test_advance_negative_rejected(self):
        with pytest.raises(ClockError):
            SimClock().advance(-1.0)

    def test_advance_to(self):
        clock = SimClock(SimTime(10.0))
        clock.advance_to(SimTime(20.0))
        assert clock.now.days == 20.0

    def test_advance_to_past_rejected(self):
        clock = SimClock(SimTime(10.0))
        with pytest.raises(ClockError):
            clock.advance_to(SimTime(5.0))
