"""Integration tests: the generated world behaves like the paper's.

These run against the session-scoped ``small_world`` (1,300 links) and
its study report. Assertions are deliberately loose — they check the
causal structure and the direction of every effect, not calibrated
percentages (benchmarks handle those at full scale).
"""

import pytest

from repro.analysis.copies import census_link
from repro.clock import SimTime
from repro.dataset.collector import Collector
from repro.dataset.planner import Disposition, SiteKind
from repro.dataset.sampler import sample_iabot_marked
from repro.net.status import Outcome
from repro.wiki.encyclopedia import PERMADEAD_CATEGORY
from repro.wiki.templates import IABOT_USERNAME


class TestWorldGeneration:
    def test_world_is_deterministic(self, small_world):
        from repro.dataset.worldgen import WorldConfig, generate_world

        again = generate_world(
            WorldConfig(n_links=1300, target_sample=1300, seed=42)
        )
        assert len(again.store) == len(small_world.store)
        assert again.bot.stats.marked_permadead == (
            small_world.bot.stats.marked_permadead
        )
        assert sorted(again.truth) == sorted(small_world.truth)

    def test_bot_did_substantial_work(self, small_world):
        stats = small_world.bot.stats
        assert stats.marked_permadead > 100
        assert stats.patched > 50
        assert stats.links_alive > 0

    def test_category_nonempty(self, small_world):
        titles = small_world.encyclopedia.articles_in_category(PERMADEAD_CATEGORY)
        assert len(titles) > 50

    def test_archive_populated(self, small_world):
        assert len(small_world.store) > 10_000
        assert small_world.store.url_count() > 1_000

    def test_marking_dates_spread_over_years(self, small_world):
        collector = Collector(small_world.encyclopedia, small_world.site_rankings)
        collected = collector.collect()
        years = {link.marked_at.year for link in collected}
        assert len(years) >= 5  # rolling sharded sweeps, not one batch

    def test_stays_alive_links_never_marked(self, small_world):
        collector = Collector(small_world.encyclopedia)
        marked_urls = {link.url for link in collector.collect()}
        for url, truth in small_world.truth.items():
            if truth.disposition is Disposition.STAYS_ALIVE:
                assert url not in marked_urls

    def test_marked_links_were_actually_dead_when_marked(self, small_world):
        """IABot never marks a link that worked at its check time."""
        collector = Collector(small_world.encyclopedia)
        collected = sample_iabot_marked(collector.collect(), k=120, seed=1)
        fetcher = small_world.fetcher()
        for link in collected:
            result = fetcher.fetch(link.url, link.marked_at)
            assert result.final_status != 200, link.url


class TestCollector:
    def test_history_mining_matches_truth(self, small_world):
        collector = Collector(small_world.encyclopedia)
        collected = collector.collect()
        assert len(collected) > 100
        for link in collected[:200]:
            truth = small_world.truth.get(link.url)
            assert truth is not None
            assert link.posted_at.same_day(truth.posted_at)

    def test_marker_username_mined(self, small_world):
        collector = Collector(small_world.encyclopedia)
        collected = collector.collect()
        markers = {link.marked_by for link in collected}
        assert IABOT_USERNAME in markers

    def test_article_limit(self, small_world):
        collector = Collector(small_world.encyclopedia)
        limited = collector.collect(article_limit=10)
        full = collector.collect()
        assert 0 < len(limited) <= len(full)

    def test_rankings_attached(self, small_world):
        collector = Collector(small_world.encyclopedia, small_world.site_rankings)
        dataset = collector.to_dataset(collector.collect()[:50])
        assert any(r.site_ranking is not None for r in dataset.records)


class TestStudyReport:
    def test_sample_composition(self, small_report, small_world):
        assert small_report.sample_size > 150
        for record in small_report.dataset.records:
            assert record.marked_by == IABOT_USERNAME

    def test_figure4_buckets_all_populated(self, small_report):
        counts = small_report.counts
        assert counts[Outcome.HTTP_404] > 0
        assert counts[Outcome.DNS_FAILURE] > 0
        assert counts[Outcome.HTTP_200] > 0
        assert sum(counts.values()) == small_report.sample_size

    def test_majority_dead_today(self, small_report):
        counts = small_report.counts
        dead = counts[Outcome.DNS_FAILURE] + counts[Outcome.HTTP_404]
        assert dead / small_report.sample_size > 0.5  # paper: over 70%

    def test_some_links_alive_again(self, small_report, small_world):
        assert small_report.n_genuinely_alive > 0
        # Every genuinely-alive link must be a revival/redirect case.
        alive_urls = {
            v.url for v in small_report.soft404_verdicts if v.genuinely_alive
        }
        for url in alive_urls:
            truth = small_world.truth[url]
            # Revived pages, late redirects, and flaky sites that
            # happened to answer today are all legitimate "works now"
            # mechanisms; anything else would be a classifier bug.
            assert (
                truth.disposition
                in (Disposition.MOVED_REDIRECT_LATER, Disposition.REVIVED)
                or truth.site_kind is SiteKind.FLAKY
            ), (url, truth.disposition, truth.site_kind)

    def test_soft404s_outnumber_genuinely_alive(self, small_report):
        # Paper: 1,650 raw 200s but only 305 genuinely alive.
        assert small_report.n_final_200 > small_report.n_genuinely_alive

    def test_pre_marking_200_copies_exist(self, small_report):
        # The §4.1 timeout casualties: a real, nonzero population.
        assert small_report.n_pre_marking_200 > 0

    def test_pre_marking_200_caused_by_timeouts(self, small_report, small_world):
        """Links with usable pre-marking copies would have been patched
        had the availability lookup answered in time."""
        assert small_report.n_pre_marking_200 < small_report.sample_size * 0.3

    def test_3xx_copy_population(self, small_report):
        assert small_report.n_rest_with_pre_3xx > 0
        assert small_report.n_valid_redirect_copy > 0
        assert small_report.n_valid_redirect_copy <= small_report.n_rest_with_pre_3xx

    def test_valid_redirects_are_moves(self, small_report, small_world):
        """Validated archived redirects must come from genuinely moved
        pages, not blanket redirect-home behaviour."""
        from repro.analysis.redirects import RedirectValidator

        validator = RedirectValidator(small_world.cdx)
        for census in small_report.censuses:
            if census.has_pre_marking_200 or not census.has_pre_marking_3xx:
                continue
            for snapshot in census.pre_marking_3xx[:4]:
                if validator.validate(snapshot).valid:
                    truth = small_world.truth[census.record.url]
                    assert truth.disposition is Disposition.MOVED_PROMPT_REDIRECT
                    break

    def test_never_archived_population(self, small_report):
        assert small_report.n_never_archived > 0
        assert (
            small_report.n_rest_with_any_copy + small_report.n_never_archived
            == small_report.n_rest
        )

    def test_first_post_marking_copy_mostly_erroneous(self, small_report):
        # Paper: 95%; any healthy world should be far above half.
        if small_report.n_with_post_marking_copy > 20:
            assert small_report.frac_first_post_marking_erroneous > 0.8

    def test_temporal_gaps_long_tailed(self, small_report):
        gaps = small_report.temporal.gaps_days
        assert len(gaps) > 30
        gaps = sorted(gaps)
        median = gaps[len(gaps) // 2]
        assert median > 90  # months-to-years, the §5.1 headline

    def test_typos_found_and_correct(self, small_report, small_world):
        report = small_report.typos
        assert len(report) > 0
        for finding in report.findings:
            truth = small_world.truth[finding.record.url]
            assert truth.disposition is Disposition.TYPO

    def test_typo_corrections_point_to_real_pages(self, small_report, small_world):
        fetcher = small_world.fetcher()
        posted_ok = 0
        for finding in small_report.typos.findings:
            result = fetcher.fetch(
                finding.corrected_url, small_world.truth[finding.record.url].posted_at
            )
            if result.final_status == 200:
                posted_ok += 1
        assert posted_ok >= len(small_report.typos.findings) * 0.8

    def test_spatial_gaps_mostly_page_specific(self, small_report):
        # Figure 6: most never-archived links have archived neighbours.
        spatial = small_report.spatial
        if len(spatial.records) > 20:
            assert len(spatial.directory_gaps) < len(spatial.records)
            assert len(spatial.hostname_gaps) <= len(spatial.directory_gaps)

    def test_query_deep_links_never_archived(self, small_report, small_world):
        never_urls = {r.record.url for r in small_report.spatial.records}
        for url, truth in small_world.truth.items():
            if truth.disposition is Disposition.QUERY_DEEP:
                census = census_link(
                    next(
                        (r for r in small_report.dataset.records if r.url == url),
                        None,
                    )
                    or _dummy_record(url),
                    small_world.cdx,
                )
                assert not census.has_any_copy

    def test_summary_renders(self, small_report):
        text = small_report.summary()
        assert "permanently dead links studied" in text
        assert "§4.1" in text


def _dummy_record(url):
    from repro.dataset.records import LinkRecord

    return LinkRecord(
        url=url,
        article_title="x",
        posted_at=SimTime(0.0),
        marked_at=SimTime(1.0),
        marked_by=IABOT_USERNAME,
    )


class TestFigure3Representativeness:
    def test_dataset_vs_random_sample_similar(self, small_world):
        """The paper's September-2022 check: an alphabetical-prefix
        dataset and a fully random sample have similar distributions."""
        from repro.reporting.cdf import ecdf

        collector = Collector(small_world.encyclopedia, small_world.site_rankings)
        all_links = collector.collect()
        if len(all_links) < 120:
            pytest.skip("not enough marked links at this scale")
        half = collector.collect(
            article_limit=len(collector.category_titles()) // 2
        )
        ds_a = collector.to_dataset(sample_iabot_marked(half, 150, seed=1))
        ds_b = collector.to_dataset(sample_iabot_marked(all_links, 150, seed=2))
        years_a = ecdf(ds_a.posting_years())
        years_b = ecdf(ds_b.posting_years())
        assert years_a.ks_distance(years_b) < 0.25
