"""Tests for repro.net — DNS, HTTP types, status taxonomy, fetcher."""

import pytest

from repro.clock import SimTime
from repro.errors import ConnectionTimeout, DnsError
from repro.net.dns import DnsRecord, DnsTable
from repro.net.fetch import FetchResult, Fetcher
from repro.net.http import HttpRequest, HttpResponse
from repro.net.status import (
    FIGURE4_ORDER,
    Outcome,
    classify_final_status,
    is_redirect,
    is_success,
)

T0 = SimTime.from_ymd(2010, 1, 1)
T1 = SimTime.from_ymd(2015, 1, 1)
T2 = SimTime.from_ymd(2020, 1, 1)


class TestStatusTaxonomy:
    def test_success(self):
        assert is_success(200)
        assert is_success(204)
        assert not is_success(302)

    def test_redirect(self):
        for code in (301, 302, 303, 307, 308):
            assert is_redirect(code)
        assert not is_redirect(200)
        assert not is_redirect(304)  # not a Location-style redirect

    def test_classification(self):
        assert classify_final_status(404) is Outcome.HTTP_404
        assert classify_final_status(200) is Outcome.HTTP_200
        assert classify_final_status(503) is Outcome.OTHER
        assert classify_final_status(403) is Outcome.OTHER

    def test_figure4_order(self):
        assert FIGURE4_ORDER[0] is Outcome.DNS_FAILURE
        assert len(FIGURE4_ORDER) == 5


class TestDnsTable:
    def test_resolve_active_record(self):
        table = DnsTable()
        table.register(DnsRecord("a.com", "site:a", T0, T1))
        assert table.resolve("a.com", T0.plus_days(1)).address == "site:a"

    def test_expired_record_nxdomain(self):
        table = DnsTable()
        table.register(DnsRecord("a.com", "site:a", T0, T1))
        with pytest.raises(DnsError):
            table.resolve("a.com", T1.plus_days(1))

    def test_unregistered_nxdomain(self):
        with pytest.raises(DnsError):
            DnsTable().resolve("nope.com", T0)

    def test_before_registration_nxdomain(self):
        table = DnsTable()
        table.register(DnsRecord("a.com", "site:a", T1))
        with pytest.raises(DnsError):
            table.resolve("a.com", T0)

    def test_reregistration_after_expiry(self):
        table = DnsTable()
        table.register(DnsRecord("a.com", "site:a", T0, T1))
        table.register(DnsRecord("a.com", "parked:a", T1.plus_days(100)))
        assert table.resolve("a.com", T2).address == "parked:a"

    def test_overlapping_registration_rejected(self):
        table = DnsTable()
        table.register(DnsRecord("a.com", "site:a", T0, T1))
        with pytest.raises(DnsError):
            table.register(DnsRecord("a.com", "other", T0.plus_days(10)))

    def test_case_insensitive(self):
        table = DnsTable()
        table.register(DnsRecord("A.CoM", "site:a", T0))
        assert table.resolve("a.com", T1).address == "site:a"

    def test_hostnames_listing(self):
        table = DnsTable()
        table.register(DnsRecord("b.com", "x", T0))
        table.register(DnsRecord("a.com", "y", T0))
        assert table.hostnames() == ["a.com", "b.com"]


class TestHttpResponse:
    def test_redirect_requires_location(self):
        with pytest.raises(ValueError):
            HttpResponse(url="http://a.com/x", status=302)

    def test_invalid_status_rejected(self):
        with pytest.raises(ValueError):
            HttpResponse(url="http://a.com/x", status=99)

    def test_is_redirect(self):
        r = HttpResponse(url="http://a.com/x", status=301, location="http://b.com/")
        assert r.is_redirect
        assert not HttpResponse(url="http://a.com/x", status=200).is_redirect

    def test_describe(self):
        r = HttpResponse(url="u", status=302, location="http://b.com/")
        assert "302" in r.describe() and "b.com" in r.describe()


class _ScriptedOrigin:
    """An origin server answering from a scripted table."""

    def __init__(self, responses):
        self.responses = responses  # (address, url) -> response or exception

    def handle(self, address, request, at):
        result = self.responses[(address, str(request.url))]
        if isinstance(result, Exception):
            raise result
        return result


def _fetcher(table, origin, max_redirects=10):
    return Fetcher(table, origin, max_redirects=max_redirects)


class TestFetcher:
    def _simple_web(self):
        table = DnsTable()
        table.register(DnsRecord("a.com", "A", T0))
        table.register(DnsRecord("b.com", "B", T0))
        return table

    def test_plain_200(self):
        table = self._simple_web()
        origin = _ScriptedOrigin(
            {("A", "http://a.com/x"): HttpResponse(url="http://a.com/x", status=200, body="hi")}
        )
        result = _fetcher(table, origin).fetch("http://a.com/x", T1)
        assert result.outcome is Outcome.HTTP_200
        assert result.body == "hi"
        assert not result.redirected
        assert result.ok

    def test_dns_failure(self):
        result = _fetcher(DnsTable(), _ScriptedOrigin({})).fetch(
            "http://gone.com/x", T1
        )
        assert result.outcome is Outcome.DNS_FAILURE
        assert result.final_status is None
        assert result.chain == ()

    def test_timeout(self):
        table = self._simple_web()
        origin = _ScriptedOrigin(
            {("A", "http://a.com/x"): ConnectionTimeout("a.com")}
        )
        result = _fetcher(table, origin).fetch("http://a.com/x", T1)
        assert result.outcome is Outcome.TIMEOUT

    def test_redirect_followed_cross_host(self):
        table = self._simple_web()
        origin = _ScriptedOrigin(
            {
                ("A", "http://a.com/x"): HttpResponse(
                    url="http://a.com/x", status=302, location="http://b.com/y"
                ),
                ("B", "http://b.com/y"): HttpResponse(
                    url="http://b.com/y", status=200, body="done"
                ),
            }
        )
        result = _fetcher(table, origin).fetch("http://a.com/x", T1)
        assert result.outcome is Outcome.HTTP_200
        assert result.initial_status == 302
        assert result.final_status == 200
        assert result.final_url == "http://b.com/y"
        assert result.redirected

    def test_redirect_to_dead_host_is_other(self):
        table = self._simple_web()
        origin = _ScriptedOrigin(
            {
                ("A", "http://a.com/x"): HttpResponse(
                    url="http://a.com/x", status=302, location="http://dead.com/"
                )
            }
        )
        result = _fetcher(table, origin).fetch("http://a.com/x", T1)
        assert result.outcome is Outcome.OTHER
        assert result.initial_status == 302

    def test_redirect_loop_is_other(self):
        table = self._simple_web()
        origin = _ScriptedOrigin(
            {
                ("A", "http://a.com/x"): HttpResponse(
                    url="http://a.com/x", status=302, location="http://a.com/x"
                )
            }
        )
        result = _fetcher(table, origin).fetch("http://a.com/x", T1)
        assert result.outcome is Outcome.OTHER
        assert result.error == "redirect loop"

    def test_too_many_redirects_is_other(self):
        table = self._simple_web()
        responses = {}
        for i in range(20):
            responses[("A", f"http://a.com/{i}")] = HttpResponse(
                url=f"http://a.com/{i}", status=302, location=f"http://a.com/{i+1}"
            )
        origin = _ScriptedOrigin(responses)
        result = _fetcher(table, origin, max_redirects=5).fetch(
            "http://a.com/0", T1
        )
        assert result.outcome is Outcome.OTHER
        assert "redirects" in (result.error or "")

    def test_malformed_url_is_dns_failure(self):
        result = _fetcher(DnsTable(), _ScriptedOrigin({})).fetch(
            "notaurl", T1
        )
        assert result.outcome is Outcome.DNS_FAILURE

    def test_fetch_count(self):
        table = self._simple_web()
        origin = _ScriptedOrigin(
            {("A", "http://a.com/x"): HttpResponse(url="http://a.com/x", status=404)}
        )
        fetcher = _fetcher(table, origin)
        fetcher.fetch("http://a.com/x", T1)
        fetcher.fetch("http://a.com/x", T1)
        assert fetcher.fetch_count == 2


class TestFetchResult:
    def test_describe_includes_chain(self):
        result = FetchResult(
            url="u",
            outcome=Outcome.HTTP_200,
            chain=(
                HttpResponse(url="u", status=301, location="v"),
                HttpResponse(url="v", status=200),
            ),
        )
        assert "301" in result.describe() and "200" in result.describe()
