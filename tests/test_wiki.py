"""Tests for repro.wiki — wikitext, templates, articles, encyclopedia."""

import pytest

from repro.clock import SimTime
from repro.errors import ArticleNotFound, RevisionError, WikiError
from repro.wiki.article import Article
from repro.wiki.encyclopedia import Encyclopedia, PERMADEAD_CATEGORY
from repro.wiki.templates import (
    IABOT_USERNAME,
    build_archive_url,
    cite_web,
    dead_link,
    month_year,
    parse_archive_url,
    patched_cite,
    webarchive,
)
from repro.wiki.wikitext import extract_link_refs, make_template, parse_templates

T2010 = SimTime.from_ymd(2010, 1, 1)
T2012 = SimTime.from_ymd(2012, 5, 10)
T2016 = SimTime.from_ymd(2016, 8, 1)
T2020 = SimTime.from_ymd(2020, 2, 2)

URL = "http://site.example.com/news/story.html"


class TestTemplateParsing:
    def test_simple_template(self):
        templates = parse_templates("before {{cite web |url=http://x.com |title=T}} after")
        assert len(templates) == 1
        assert templates[0].normalized_name == "cite web"
        assert templates[0].get("url") == "http://x.com"
        assert templates[0].get("title") == "T"

    def test_positional_params(self):
        (t,) = parse_templates("{{foo|a|b|k=v}}")
        assert t.get("1") == "a"
        assert t.get("2") == "b"
        assert t.get("k") == "v"

    def test_nested_template_stays_in_value(self):
        (t,) = parse_templates("{{outer |x={{inner|1}} |y=2}}")
        assert t.normalized_name == "outer"
        assert "{{inner|1}}" in t.get("x")
        assert t.get("y") == "2"

    def test_multiple_top_level(self):
        templates = parse_templates("{{a|1}}{{b|2}}")
        assert [t.name for t in templates] == ["a", "b"]

    def test_unbalanced_braces_rejected(self):
        with pytest.raises(WikiError):
            parse_templates("{{cite web |url=x")

    def test_render_roundtrip(self):
        original = "{{cite web |url=http://x.com |title=Story}}"
        (t,) = parse_templates(original)
        assert t.render() == original

    def test_has(self):
        (t,) = parse_templates("{{x |url=a}}")
        assert t.has("url")
        assert not t.has("title")

    def test_spans_recorded(self):
        text = "ab {{x|1}} cd"
        (t,) = parse_templates(text)
        assert text[t.start: t.end] == "{{x|1}}"


class TestLinkRefExtraction:
    def test_cite_ref(self):
        text = "* " + cite_web(URL, "A story").render()
        (ref,) = extract_link_refs(text)
        assert ref.url == URL
        assert ref.cite is not None
        assert not ref.is_marked_dead

    def test_cite_with_dead_link(self):
        text = cite_web(URL, "T").render() + dead_link(T2016, IABOT_USERNAME).render()
        (ref,) = extract_link_refs(text)
        assert ref.is_marked_dead
        assert ref.is_permanently_dead
        assert ref.marked_by == IABOT_USERNAME

    def test_patched_cite_not_permadead(self):
        archive = build_archive_url(URL, T2012)
        text = patched_cite(cite_web(URL, "T"), archive, T2016).render()
        (ref,) = extract_link_refs(text)
        assert ref.archive_url == archive
        assert not ref.is_permanently_dead

    def test_bare_bracket_link(self):
        (ref,) = extract_link_refs(f"see [{URL} the story] here")
        assert ref.url == URL
        assert ref.title == "the story"
        assert ref.cite is None

    def test_bare_link_without_caption(self):
        (ref,) = extract_link_refs(f"see [{URL}]")
        assert ref.url == URL
        assert ref.title == ""

    def test_bare_link_with_dead_annotation(self):
        text = f"[{URL} x]" + dead_link(T2016, IABOT_USERNAME).render()
        (ref,) = extract_link_refs(text)
        assert ref.is_permanently_dead

    def test_bare_link_with_webarchive_patch(self):
        archive = build_archive_url(URL, T2012)
        text = f"[{URL} x]" + webarchive(archive, T2016).render()
        (ref,) = extract_link_refs(text)
        assert ref.archive_url == archive
        assert not ref.is_permanently_dead

    def test_human_marking_has_no_bot(self):
        text = cite_web(URL, "T").render() + dead_link(T2016).render()
        (ref,) = extract_link_refs(text)
        assert ref.is_permanently_dead
        assert ref.marked_by == ""

    def test_multiple_refs_in_order(self):
        text = (
            "* " + cite_web("http://a.com/1", "A").render() + "\n"
            "* [http://b.com/2 B]\n"
            "* " + cite_web("http://c.com/3", "C").render() + "\n"
        )
        refs = extract_link_refs(text)
        assert [r.url for r in refs] == [
            "http://a.com/1",
            "http://b.com/2",
            "http://c.com/3",
        ]

    def test_archive_url_inside_cite_not_a_separate_ref(self):
        archive = build_archive_url(URL, T2012)
        text = patched_cite(cite_web(URL, "T"), archive, T2016).render()
        refs = extract_link_refs(text)
        assert len(refs) == 1

    def test_span_covers_annotation(self):
        text = "xx " + cite_web(URL, "T").render() + dead_link(T2016).render() + " yy"
        (ref,) = extract_link_refs(text)
        start, end = ref.span
        assert text[start:end].startswith("{{cite web")
        assert text[start:end].endswith("}}")
        assert "dead link" in text[start:end]


class TestArchiveUrls:
    def test_roundtrip(self):
        archive = build_archive_url(URL, T2012)
        parsed = parse_archive_url(archive)
        assert parsed is not None
        stamp, original = parsed
        assert original == URL
        assert stamp.same_day(T2012)

    def test_non_archive_url(self):
        assert parse_archive_url(URL) is None

    def test_bad_stamp(self):
        assert parse_archive_url("http://web.archive.org/web/xyz/http://a.com") is None

    def test_month_year(self):
        assert month_year(T2012) == "May 2012"


class TestArticleHistory:
    def test_revisions_append(self):
        article = Article(title="T")
        article.edit(T2010, "User", "first")
        article.edit(T2012, "User", "second")
        assert len(article.revisions) == 2
        assert article.wikitext == "second"
        assert article.latest.revision_id == 2

    def test_out_of_order_edit_rejected(self):
        article = Article(title="T")
        article.edit(T2012, "User", "x")
        with pytest.raises(RevisionError):
            article.edit(T2010, "User", "y")

    def test_empty_article_has_no_latest(self):
        with pytest.raises(RevisionError):
            _ = Article(title="T").latest

    def test_first_revision_with_url(self):
        article = Article(title="T")
        article.edit(T2010, "A", "no links yet")
        article.edit(T2012, "B", "* " + cite_web(URL, "S").render())
        found = article.first_revision_with_url(URL)
        assert found is not None and found.timestamp == T2012

    def test_url_in_prose_does_not_count(self):
        article = Article(title="T")
        article.edit(T2010, "A", f"mentioned {URL} in passing")
        assert article.first_revision_with_url(URL) is None

    def test_first_revision_marking_dead(self):
        article = Article(title="T")
        article.edit(T2010, "A", "* " + cite_web(URL, "S").render())
        marked_text = (
            "* " + cite_web(URL, "S").render()
            + dead_link(T2016, IABOT_USERNAME).render()
        )
        article.edit(T2016, IABOT_USERNAME, marked_text)
        marking = article.first_revision_marking_dead(URL)
        assert marking is not None
        assert marking.user == IABOT_USERNAME
        assert marking.timestamp == T2016


class TestEncyclopedia:
    def test_create_and_lookup(self):
        enc = Encyclopedia()
        enc.create_article("Alpha", T2010, "U", "text")
        assert enc.article("Alpha").wikitext == "text"
        assert len(enc) == 1

    def test_duplicate_title_rejected(self):
        enc = Encyclopedia()
        enc.create_article("Alpha", T2010, "U", "x")
        with pytest.raises(WikiError):
            enc.create_article("Alpha", T2012, "U", "y")

    def test_missing_article(self):
        with pytest.raises(ArticleNotFound):
            Encyclopedia().article("Nope")

    def test_titles_alphabetical(self):
        enc = Encyclopedia()
        enc.create_article("Zeta", T2010, "U", "x")
        enc.create_article("Alpha", T2010, "U", "x")
        assert enc.titles() == ("Alpha", "Zeta")

    def test_link_posted_events(self):
        enc = Encyclopedia()
        enc.create_article("A", T2010, "U", "* " + cite_web(URL, "S").render())
        assert len(enc.events) == 1
        (event,) = enc.events.events()
        assert event.url == URL and event.posted_at == T2010

    def test_no_duplicate_event_for_existing_url(self):
        enc = Encyclopedia()
        body = "* " + cite_web(URL, "S").render()
        enc.create_article("A", T2010, "U", body)
        enc.edit_article("A", T2012, "U", body + "\nmore prose")
        assert len(enc.events) == 1

    def test_category_membership_follows_markings(self):
        enc = Encyclopedia()
        body = "* " + cite_web(URL, "S").render()
        enc.create_article("A", T2010, "U", body)
        assert enc.articles_in_category(PERMADEAD_CATEGORY) == ()
        marked = body + dead_link(T2016, IABOT_USERNAME).render()
        enc.edit_article("A", T2016, IABOT_USERNAME, marked)
        assert enc.articles_in_category(PERMADEAD_CATEGORY) == ("A",)

    def test_category_leaves_after_patch(self):
        enc = Encyclopedia()
        body = (
            "* " + cite_web(URL, "S").render()
            + dead_link(T2016, IABOT_USERNAME).render()
        )
        enc.create_article("A", T2016, "U", body)
        assert enc.articles_in_category(PERMADEAD_CATEGORY) == ("A",)
        archive = build_archive_url(URL, T2012)
        patched = "* " + patched_cite(cite_web(URL, "S"), archive, T2020).render()
        enc.edit_article("A", T2020, IABOT_USERNAME, patched)
        assert enc.articles_in_category(PERMADEAD_CATEGORY) == ()

    def test_human_marking_also_files_category(self):
        enc = Encyclopedia()
        body = "* " + cite_web(URL, "S").render() + dead_link(T2016).render()
        enc.create_article("A", T2016, "U", body)
        assert enc.articles_in_category(PERMADEAD_CATEGORY) == ("A",)

    def test_unknown_category_rejected(self):
        with pytest.raises(WikiError):
            Encyclopedia().articles_in_category("Nonexistent category")


class TestTemplateBuilders:
    def test_dead_link_with_bot_has_fix_attempted(self):
        t = dead_link(T2016, IABOT_USERNAME)
        assert t.get("fix-attempted") == "yes"
        assert t.get("bot") == IABOT_USERNAME

    def test_dead_link_without_bot(self):
        t = dead_link(T2016)
        assert not t.has("bot")

    def test_patched_cite_replaces_existing_archive_params(self):
        cite = cite_web(URL, "T")
        first = patched_cite(cite, "http://web.archive.org/web/1/x", T2016)
        second = patched_cite(first, "http://web.archive.org/web/2/y", T2020)
        assert second.get("archive-url") == "http://web.archive.org/web/2/y"
        rendered = second.render()
        assert rendered.count("archive-url") == 1

    def test_make_template_hyphenates(self):
        t = make_template("x", fix_attempted="yes")
        assert t.get("fix-attempted") == "yes"
