"""Tests for repro.live — incremental studies and generation swaps.

The contracts pinned here:

- probe-time semantics: ``probe_time(url, T) = max(epoch(T),
  last_touch(url, T))`` is a pure function of the event history, so
  the incremental engine's answer is independent of the cursor
  schedule;
- **golden differentials**: at three cursor schedules × worker counts
  {1, 4}, every incrementally built report is byte-identical to a
  from-scratch :func:`~repro.live.reference_study` of an identically
  driven fresh world at the same sim instant — same
  :class:`~repro.analysis.study.StudyReport`, same content-hash index
  ``version``, same wire answers;
- the event log's URL index agrees with a full scan
  (``verify_index``), and the wiki feed's boundary semantics are
  pinned: integer cursors partition the log exactly at any page size,
  ``link_posted_events_since`` is inclusive at the boundary instant
  and preserves emission order for equal timestamps;
- generation lifecycle: publisher sequence numbers are strictly
  monotonic, retention retires old generations, stale builds are
  refused, and freshness grades through the latency SLO machinery;
- **zero-downtime swaps**: under a swap schedule serial and thread
  serving agree byte-for-byte, a 1×1 cluster reproduces the
  single-node run exactly, and — clean or under replica chaos — no
  response ever mixes generations: every 200 body re-derives from the
  exact index version the response reports, and shed responses carry
  a scheduled version too.
"""

from __future__ import annotations

import pytest

from repro.clock import SimTime
from repro.dataset.worldgen import WorldConfig, generate_world
from repro.errors import LiveError
from repro.exec import StudyExecutor
from repro.faults import FaultSpec
from repro.live import (
    GenerationPublisher,
    IncrementalStudy,
    ReprobePolicy,
    WorldDriver,
    last_touch_map,
    probe_time_map,
    reference_study,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import MS_PER_DAY, SloSpec, evaluate, events_from_generations
from repro.service import (
    ClusterConfig,
    ClusterService,
    LinkStatusIndex,
    LinkStatusService,
    ServerConfig,
    ServiceFaultPlan,
    WorkloadConfig,
    generate_workload,
)
from repro.service.server import answer
from repro.wiki.api import WikiApi
from repro.wiki.events import (
    EventLog,
    LinkMarkedDeadEvent,
    LinkPostedEvent,
    LinkRemovedEvent,
)

# -- the shared driven world -----------------------------------------------------

WORLD_CFG = WorldConfig(n_links=260, seed=11, target_sample=60)
K = 40
SEED = 7
POLICY = ReprobePolicy(every_days=30.0)


def fresh_world():
    return generate_world(WORLD_CFG)


def drive_to(world, driver: WorldDriver, lo: float, hi: float) -> None:
    """Apply the canonical forward script on (lo, hi] day offsets.

    The script exercises every event kind and both store mutations:
    a bot sweep (markings), an editorial removal, an archive capture,
    a late link addition, and a second sweep past the 30-day re-probe
    epoch. Targets are discovered from the world itself so identically
    seeded worlds replay identically.
    """
    base = world.study_time.days

    def within(offset: float) -> bool:
        return lo < offset <= hi

    if within(2.0):
        driver.sweep(SimTime(base + 2.0))
    if within(5.0):
        title, url = driver.permadead_refs()[3]
        assert driver.remove_link(title, url, SimTime(base + 5.0))
    if within(6.0):
        driver.capture(driver.permadead_refs()[1][1], SimTime(base + 6.0))
    if within(7.0):
        title = world.encyclopedia.titles()[0]
        driver.add_link(title, "http://late-addition.test/x", SimTime(base + 7.0))
    if within(33.0):
        driver.sweep(SimTime(base + 33.0))
    if within(36.0):
        title, url = driver.permadead_refs()[0]
        assert driver.remove_link(title, url, SimTime(base + 36.0))


#: From-scratch reference reports, keyed by day offset (worker count
#: is irrelevant to the report — pinned elsewhere — so one suffices).
_REFERENCE_CACHE: dict[float, object] = {}


def reference_report(offset: float):
    if offset not in _REFERENCE_CACHE:
        world = fresh_world()
        driver = WorldDriver(world)
        drive_to(world, driver, 0.0, offset)
        at = SimTime(world.study_time.days + offset)
        study = reference_study(
            world, at, sample_size=K, seed=SEED, policy=POLICY
        )
        _REFERENCE_CACHE[offset] = study.run(StudyExecutor(workers=1))
    return _REFERENCE_CACHE[offset]


# -- probe-time semantics --------------------------------------------------------


def test_reprobe_policy_epochs():
    baseline = SimTime(8000.0)
    policy = ReprobePolicy(every_days=30.0)
    assert policy.epoch(baseline, baseline) == baseline
    assert policy.epoch(baseline, SimTime(8029.9)) == baseline
    assert policy.epoch(baseline, SimTime(8030.0)) == SimTime(8030.0)
    assert policy.epoch(baseline, SimTime(8075.0)) == SimTime(8060.0)
    with pytest.raises(LiveError):
        policy.epoch(baseline, SimTime(7999.0))
    with pytest.raises(LiveError):
        ReprobePolicy(every_days=0.0)


def test_last_touch_map_latest_wins_and_bounds():
    events = [
        LinkPostedEvent("http://a.test/", "A", SimTime(10.0)),
        LinkMarkedDeadEvent("http://a.test/", "A", SimTime(12.0), "Bot"),
        # Equal timestamps: the later-emitted event wins.
        LinkPostedEvent("http://b.test/", "A", SimTime(12.0)),
        LinkRemovedEvent("http://b.test/", "B", SimTime(12.0)),
        LinkPostedEvent("http://c.test/", "C", SimTime(99.0)),
    ]
    touched = last_touch_map(events, SimTime(50.0))
    assert touched["http://a.test/"] == SimTime(12.0)
    assert touched["http://b.test/"] == SimTime(12.0)
    assert "http://c.test/" not in touched  # beyond the horizon


def test_probe_time_map_is_max_of_epoch_and_touch():
    baseline = SimTime(8000.0)
    events = [LinkPostedEvent("http://a.test/", "A", SimTime(8040.0))]
    times = probe_time_map(
        events,
        ["http://a.test/", "http://quiet.test/"],
        baseline,
        SimTime(8065.0),
        ReprobePolicy(every_days=30.0),
    )
    # Epoch at 8060 postdates the touch at 8040 — epoch wins.
    assert times["http://a.test/"] == SimTime(8060.0)
    assert times["http://quiet.test/"] == SimTime(8060.0)
    times = probe_time_map(
        events, ["http://a.test/"], baseline, SimTime(8055.0),
        ReprobePolicy(every_days=30.0),
    )
    # Touch at 8040 postdates the 8030 epoch — touch wins.
    assert times["http://a.test/"] == SimTime(8040.0)


# -- event log index + feed boundary semantics -----------------------------------


def test_event_log_index_agrees_with_scan():
    log = EventLog()
    urls = [f"http://site{i % 3}.test/" for i in range(10)]
    for i, url in enumerate(urls):
        log.append(LinkPostedEvent(url, f"Article {i % 4}", SimTime(float(i))))
    log.append(LinkRemovedEvent(urls[0], "Article 0", SimTime(20.0)))
    log.append(
        LinkMarkedDeadEvent(urls[1], "Article 1", SimTime(21.0), "Bot")
    )
    log.verify_index()
    for url in set(urls):
        assert log.events_for(url) == tuple(
            e for e in log.events() if e.url == url
        )
    assert log.events_for("http://never-seen.test/") == ()


def test_event_log_cursor_pages_partition_exactly():
    log = EventLog()
    for i in range(7):
        log.append(LinkPostedEvent(f"http://u{i}.test/", "A", SimTime(float(i))))
    for limit in (1, 2, 3, None):
        cursor, drained = 0, []
        while cursor < len(log):
            batch, cursor = log.events_since(cursor, limit)
            drained.extend(batch)
        assert tuple(drained) == log.events()
    with pytest.raises(ValueError):
        log.events_since(len(log) + 1)
    with pytest.raises(ValueError):
        log.events_since(-1)


@pytest.fixture(scope="module")
def live_run():
    """One world driven through the whole script with three builds.

    Shared, *already driven* state: tests must not drive it further.
    Returns (world, publisher, generations, results).
    """
    world = fresh_world()
    driver = WorldDriver(world)
    inc = IncrementalStudy(world, sample_size=K, seed=SEED, policy=POLICY)
    publisher = GenerationPublisher(metrics=MetricsRegistry(), retain=2)
    generations, results = [], []
    previous = -1.0
    for offset in (0.0, 10.0, 40.0):
        drive_to(world, driver, previous, offset)
        previous = offset
        result = inc.build(SimTime(world.study_time.days + offset))
        results.append(result)
        generations.append(publisher.publish(result))
    world.encyclopedia.events.verify_index()
    return world, publisher, generations, results


def test_wiki_feed_cursor_pages_partition_exactly(live_run):
    world, _, _, _ = live_run
    api = WikiApi(world.encyclopedia)
    log = world.encyclopedia.events
    for limit in (1, 7, 100):
        cursor, drained = 0, []
        while True:
            page = api.events_since(cursor, limit=limit)
            drained.extend(page.events)
            cursor = page.next_cursor
            if not page.more:
                break
        assert tuple(drained) == log.events()
        assert cursor == log.cursor


def test_posted_events_since_is_inclusive_and_emission_ordered():
    world = generate_world(WorldConfig(n_links=80, seed=3, target_sample=30))
    encyclopedia = world.encyclopedia
    # One edit introducing two URLs emits two posted events at the
    # same instant, in order of appearance.
    title = encyclopedia.titles()[0]
    since = SimTime(world.study_time.days + 1.0)
    body = encyclopedia.article(title).wikitext
    body += "* [http://equal-a.test/ a]\n* [http://equal-b.test/ b]\n"
    encyclopedia.edit_article(title, since, "Editor", body, comment="two")
    api = WikiApi(encyclopedia)
    got = api.link_posted_events_since(since)
    # Inclusive: both boundary-instant events are delivered, in
    # emission order, with nothing earlier leaking in.
    assert [e.url for e in got] == [
        "http://equal-a.test/", "http://equal-b.test/",
    ]
    assert all(e.posted_at == since for e in got)
    posted = [
        e for e in encyclopedia.events.events()
        if isinstance(e, LinkPostedEvent)
    ]
    assert got == tuple(e for e in posted if not e.posted_at < since)
    # Nudging past the boundary drops both equal-time events.
    assert api.link_posted_events_since(SimTime(since.days + 1e-9)) == ()


# -- golden differentials --------------------------------------------------------

SCHEDULES = {
    "every-checkpoint": (0.0, 10.0, 40.0),
    "coalesced": (0.0, 40.0),
    "late-start": (10.0, 40.0),
}


@pytest.mark.parametrize("workers", [1, 4])
@pytest.mark.parametrize("schedule", sorted(SCHEDULES), ids=str)
def test_incremental_matches_from_scratch(schedule, workers):
    world = fresh_world()
    driver = WorldDriver(world)
    inc = IncrementalStudy(world, sample_size=K, seed=SEED, policy=POLICY)
    previous = -1.0
    for offset in SCHEDULES[schedule]:
        drive_to(world, driver, previous, offset)
        previous = offset
        result = inc.build(
            SimTime(world.study_time.days + offset),
            executor=StudyExecutor(workers=workers),
        )
        reference = reference_report(offset)
        assert result.report == reference
        ours = LinkStatusIndex.build(result.report)
        theirs = LinkStatusIndex.build(reference)
        assert ours.version == theirs.version
        for entry in theirs.entries[:5]:
            assert answer(ours, "url", entry.url) == answer(
                theirs, "url", entry.url
            )
        assert answer(ours, "bucket_counts", "") == answer(
            theirs, "bucket_counts", ""
        )


def test_incremental_actually_delta_builds(live_run):
    _, _, _, results = live_run
    gen0, gen1, gen2 = results
    # Generation 0 measures the whole sample; generation 1 only what
    # the script touched; generation 2 crosses the 30-day epoch, so
    # everything falls due again.
    assert gen0.dirty.size == gen0.sample_size
    assert 0 < gen1.dirty.size < gen1.sample_size
    assert gen1.dirty.removed  # the day-5 removal evicted its outcome
    assert gen2.dirty.size == gen2.sample_size
    # Generation 0 drains the full historical backlog; later ones
    # consume only the script's incremental events.
    assert gen0.events_consumed > 100
    assert 0 < gen1.events_consumed < 10
    assert 0 < gen2.events_consumed < 10
    assert gen0.cursor < gen1.cursor < gen2.cursor


# -- build-order invariants ------------------------------------------------------


def test_live_ordering_invariants():
    world = generate_world(WorldConfig(n_links=80, seed=3, target_sample=30))
    driver = WorldDriver(world)
    base = world.study_time.days
    with pytest.raises(LiveError):
        driver.sweep(world.study_time)  # not strictly forward
    inc = IncrementalStudy(world, sample_size=10, seed=SEED, policy=POLICY)
    inc.build(world.study_time)
    with pytest.raises(LiveError):
        inc.build(world.study_time)  # builds must move forward
    # Drive the world *past* the next build instant: the engine must
    # refuse rather than silently measure a half-seen world.
    title = world.encyclopedia.titles()[0]
    driver.add_link(title, "http://future.test/x", SimTime(base + 5.0))
    with pytest.raises(LiveError):
        inc.build(SimTime(base + 2.0))


# -- generation lifecycle --------------------------------------------------------


def test_publisher_sequences_retires_and_meters(live_run):
    _, publisher, generations, _ = live_run
    g0, g1, g2 = generations
    assert [g.seq for g in generations] == [1, 2, 3]
    assert len({g.version for g in generations}) == 3
    assert publisher.current is g2
    # retain=2: the first generation retired, the last two are live.
    assert publisher.retired == [g0.version]
    assert [g.version for g in publisher.generations] == [
        g1.version, g2.version,
    ]
    assert (g0.lag_days, g1.lag_days, g2.lag_days) == (0.0, 10.0, 30.0)
    counters = publisher.metrics.counters("live.")
    assert counters["live.generations.published"] == 3
    assert counters["live.generations.retired"] == 1
    assert publisher.metrics.gauge("live.generation.seq").value == 3.0


def test_publisher_refuses_stale_and_bad_retention(live_run):
    _, publisher, _, results = live_run
    with pytest.raises(LiveError):
        publisher.publish(results[0])  # built before the current one
    with pytest.raises(LiveError):
        GenerationPublisher(retain=0)


def test_freshness_slo_grades_generation_lag(live_run):
    _, _, generations, _ = live_run
    events = events_from_generations(generations)
    assert [e.latency_ms / MS_PER_DAY for e in events] == [0.0, 10.0, 30.0]
    assert all(e.status == 200 for e in events)
    within_35d = SloSpec(
        name="freshness", kind="latency", objective=1.0,
        threshold_ms=35.0 * MS_PER_DAY,
    )
    within_20d = SloSpec(
        name="freshness", kind="latency", objective=1.0,
        threshold_ms=20.0 * MS_PER_DAY,
    )
    assert evaluate(events, (within_35d,)).met
    assert not evaluate(events, (within_20d,)).met


# -- zero-downtime swaps ---------------------------------------------------------


def swap_workload(index, n=600, rps=2000.0, seed=3):
    return generate_workload(
        [entry.url for entry in index.entries],
        WorkloadConfig(
            n_requests=n, offered_rps=rps, seed=seed,
            aggregate_fraction=0.1, unknown_fraction=0.05,
        ),
    )


def swap_schedule(requests, generations):
    """Install later generations at the workload's 1/3 and 2/3 marks."""
    _, g1, g2 = generations
    horizon = max(r.arrival_ms for r in requests)
    return [(horizon / 3.0, g1.index), (2.0 * horizon / 3.0, g2.index)]


def assert_no_mixed_generation(result, requests, generations):
    """Every response answers from exactly the generation it reports."""
    by_version = {g.version: g.index for g in generations}
    by_id = {r.request_id: r for r in requests}
    for response in result.responses:
        assert response.index_version in by_version
        if response.shed:
            continue
        request = by_id[response.request_id]
        status, body = answer(
            by_version[response.index_version], request.kind, request.target
        )
        assert (status, body) == (response.status, response.body)


def test_single_node_swap_serial_equals_thread(live_run):
    _, _, generations, _ = live_run
    g0, g1, g2 = generations
    requests = swap_workload(g0.index)
    swaps = swap_schedule(requests, generations)
    serial = LinkStatusService(g0.index).serve(
        requests, mode="serial", swaps=list(swaps)
    )
    threaded = LinkStatusService(g0.index).serve(
        requests, mode="thread", swaps=list(swaps)
    )
    assert [r.to_wire() for r in serial.responses] == [
        r.to_wire() for r in threaded.responses
    ]
    # Generation ids march monotonically through the schedule, and
    # both swaps actually took.
    assert serial.index_versions == (g0.version, g1.version, g2.version)
    served = {r.index_version for r in serial.responses}
    assert served == {g0.version, g1.version, g2.version}
    assert serial.metrics.counter("service.swaps").int_value == 2
    assert_no_mixed_generation(serial, requests, generations)


def test_swap_schedule_must_strictly_increase(live_run):
    _, _, generations, _ = live_run
    g0, g1, _ = generations
    requests = swap_workload(g0.index, n=20)
    with pytest.raises(ValueError):
        LinkStatusService(g0.index).serve(
            requests,
            swaps=[(100.0, g1.index), (100.0, g0.index)],
        )


def test_one_by_one_cluster_swap_reproduces_single_node(live_run):
    _, _, generations, _ = live_run
    g0 = generations[0]
    requests = swap_workload(g0.index)
    swaps = swap_schedule(requests, generations)
    single = LinkStatusService(g0.index).serve(
        requests, mode="serial", swaps=list(swaps)
    )
    cluster = ClusterService(
        g0.index, ServerConfig(),
        ClusterConfig(n_shards=1, replicas_per_shard=1),
    ).serve(requests, mode="serial", swaps=list(swaps))
    assert [r.to_wire() for r in single.responses] == [
        r.to_wire() for r in cluster.responses
    ]
    assert single.index_versions == cluster.index_versions


def test_cluster_swap_under_chaos_never_mixes_generations(live_run):
    _, _, generations, _ = live_run
    g0 = generations[0]
    requests = swap_workload(g0.index)
    swaps = swap_schedule(requests, generations)
    plan = ServiceFaultPlan(
        seed=5,
        replica_crash=FaultSpec(rate=0.5),
        crash_horizon_ms=float(max(r.arrival_ms for r in requests)),
        crash_duration_ms=40.0,
        replica_slow=FaultSpec(rate=0.3),
    )

    def run(mode):
        service = ClusterService(
            g0.index, ServerConfig(),
            ClusterConfig(n_shards=2, replicas_per_shard=2),
            faults=plan,
        )
        return service.serve(requests, mode=mode, swaps=list(swaps))

    chaotic = run("serial")
    assert chaotic.fault_events  # the plan actually fired
    assert chaotic.index_versions == tuple(g.version for g in generations)
    assert_no_mixed_generation(chaotic, requests, generations)
    # Chaos degrades latency and shedding only — and deterministically:
    # the run replays byte-for-byte, serial or threaded.
    again = run("serial")
    assert [r.to_wire() for r in chaotic.responses] == [
        r.to_wire() for r in again.responses
    ]
    threaded = run("thread")
    assert [r.to_wire() for r in chaotic.responses] == [
        r.to_wire() for r in threaded.responses
    ]


@pytest.mark.chaos
@pytest.mark.parametrize(
    "topology", [(2, 2), (4, 1), (1, 3)], ids=lambda t: f"{t[0]}x{t[1]}"
)
@pytest.mark.parametrize("policy", ["round_robin", "least_outstanding"])
def test_swap_chaos_grid(live_run, topology, policy):
    """Tier-2 sweep: swaps stay clean across topologies and policies
    under the full replica fault vocabulary (crash + partition + slow).
    """
    _, _, generations, _ = live_run
    g0 = generations[0]
    requests = swap_workload(g0.index, n=1500, rps=3000.0)
    swaps = swap_schedule(requests, generations)
    horizon = max(r.arrival_ms for r in requests)
    n_shards, replicas = topology
    plan = ServiceFaultPlan(
        seed=13,
        replica_crash=FaultSpec(rate=0.4),
        crash_horizon_ms=horizon,
        crash_duration_ms=60.0,
        replica_partition=FaultSpec(rate=0.3),
        partition_horizon_ms=horizon,
        partition_duration_ms=50.0,
        replica_slow=FaultSpec(rate=0.3),
    )

    def run(mode):
        return ClusterService(
            g0.index, ServerConfig(),
            ClusterConfig(
                n_shards=n_shards, replicas_per_shard=replicas,
                policy=policy,
            ),
            faults=plan,
        ).serve(requests, mode=mode, swaps=list(swaps))

    chaotic = run("serial")
    assert chaotic.index_versions == tuple(g.version for g in generations)
    assert_no_mixed_generation(chaotic, requests, generations)
    threaded = run("thread")
    assert [r.to_wire() for r in chaotic.responses] == [
        r.to_wire() for r in threaded.responses
    ]
