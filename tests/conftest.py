"""Shared fixtures.

Two tiers:

- hand-built micro-webs (function-scoped, cheap) for unit tests that
  need precise control over lifecycles;
- one small generated world + its study report (session-scoped, a few
  seconds) for integration tests over the full pipeline.
"""

from __future__ import annotations

import os

import pytest


def pytest_load_initial_conftests(early_config, parser, args):
    """Arm coverage for full tier-1 runs — when pytest-cov is present.

    The container image does not ship pytest-cov, so enforcement is
    gated: importable plugin → append ``--cov`` (the floor lives in
    ``[tool.coverage.report] fail_under``); missing plugin → run
    exactly as before. Narrowed invocations (explicit paths, ``-k``,
    or an existing ``--cov``) are left alone — a subset run can never
    meet a whole-tree floor and should not fail for it. Set
    ``REPRO_NO_COV=1`` to opt out entirely.
    """
    if os.environ.get("REPRO_NO_COV"):
        return
    try:
        import pytest_cov  # noqa: F401
    except ImportError:
        return
    if any(not arg.startswith("-") for arg in args):
        return
    if any(arg.startswith(("--cov", "-k")) for arg in args):
        return
    args.append("--cov=repro")

from repro.clock import SimTime
from repro.dataset.worldgen import WorldConfig, generate_world
from repro.web.behaviors import MissingPagePolicy
from repro.web.page import Page, PageFate
from repro.web.site import Site
from repro.web.world import LiveWeb

#: Subsystems the tier-1 suite must keep exercised. Importing them
#: from the session root guarantees each is inside the ``--cov=repro``
#: measurement (an un-imported package contributes zero lines, which
#: would let a subsystem silently drop out of the fail_under tripwire
#: if a refactor orphaned its tests).
COVERAGE_CONCERNS = (
    "repro.analysis.study",
    "repro.backends",
    "repro.exec",
    "repro.faults",
    "repro.obs",
    "repro.service",
    "repro.service.reconfig",
)


@pytest.fixture(scope="session", autouse=True)
def _coverage_concerns():
    import importlib

    for name in COVERAGE_CONCERNS:
        importlib.import_module(name)


T2005 = SimTime.from_ymd(2005, 1, 1)
T2008 = SimTime.from_ymd(2008, 1, 1)
T2012 = SimTime.from_ymd(2012, 6, 1)
T2016 = SimTime.from_ymd(2016, 6, 1)
T2020 = SimTime.from_ymd(2020, 1, 1)
T2022 = SimTime.from_ymd(2022, 3, 15)


@pytest.fixture
def micro_web() -> LiveWeb:
    """A tiny live web with one site exercising several lifecycles.

    Pages on news.example.com:
      /stays/alive.html          alive since 2008
      /gone/deleted.html         alive 2008, deleted 2012
      /moved/late.html           alive 2008, moved 2012, redirect added 2020
      /moved/prompt.html         alive 2008, moved+redirected 2012
      /new/late-target.html      the late-moved page's new home
      /new/prompt-target.html    the prompt-moved page's new home
    """
    web = LiveWeb()
    site = Site(
        hostname="news.example.com",
        seed="micro",
        created_at=T2005,
        missing_policy=MissingPagePolicy.HARD_404,
    )
    site.add_page(Page(path_query="/stays/alive.html", created_at=T2008))
    site.add_page(
        Page(
            path_query="/gone/deleted.html",
            created_at=T2008,
            fate=PageFate.DELETED,
            died_at=T2012,
        )
    )
    site.add_page(
        Page(
            path_query="/moved/late.html",
            created_at=T2008,
            fate=PageFate.MOVED,
            died_at=T2012,
            moved_to="http://news.example.com/new/late-target.html",
            redirect_added_at=T2020,
        )
    )
    site.add_page(
        Page(
            path_query="/moved/prompt.html",
            created_at=T2008,
            fate=PageFate.MOVED,
            died_at=T2012,
            moved_to="http://news.example.com/new/prompt-target.html",
            redirect_added_at=T2012,
        )
    )
    site.add_page(Page(path_query="/new/late-target.html", created_at=T2012))
    site.add_page(Page(path_query="/new/prompt-target.html", created_at=T2012))
    web.add_site(site)
    return web


@pytest.fixture(scope="session")
def small_world():
    """A small but complete generated universe (shared, read-only)."""
    return generate_world(WorldConfig(n_links=1300, target_sample=1300, seed=42))


@pytest.fixture(scope="session")
def small_report(small_world):
    """The full study report over :func:`small_world` (read-only)."""
    from repro.analysis.study import Study

    return Study.from_world(small_world).run()


@pytest.fixture
def artifact_dir(tmp_path):
    """Where diagnostic artifacts (audit logs, traces, metrics
    snapshots) should be written.

    Defaults to the test's tmp dir. When ``REPRO_TEST_ARTIFACTS`` is
    set (CI sets it on the tier-2 job), artifacts land there instead,
    so a failing run's evidence survives as a workflow artifact."""
    root = os.environ.get("REPRO_TEST_ARTIFACTS")
    if not root:
        return tmp_path
    from pathlib import Path

    path = Path(root)
    path.mkdir(parents=True, exist_ok=True)
    return path
